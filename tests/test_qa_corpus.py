"""The regression corpus: persistence round-trips and the tier-1 replay.

``test_replay_shipped_corpus`` is the promise the corpus makes: every case
ever filed keeps classifying exactly as recorded, in both languages, on
every test run.
"""

import pytest

from repro.eda.toolchain import Toolchain
from repro.qa.corpus import (
    DEFAULT_CORPUS_DIR,
    case_path,
    load_case,
    load_corpus,
    replay_corpus,
    save_case,
)
from repro.qa.oracle import FailureClass, QaCase
from repro.qa.spec import QaSpec


def small_case(name="roundtrip", expected=FailureClass.OK):
    spec = QaSpec(
        name=name, width=4, inputs=("a0",),
        outputs=(("y0", ["not", ["var", "a0"]]),),
    )
    return QaCase(spec=spec, expected_class=expected, note="a note")


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        case = small_case()
        path = save_case(case, tmp_path)
        assert path == case_path(case, tmp_path)
        reloaded = load_case(path)
        assert reloaded.spec.canonical() == case.spec.canonical()
        assert reloaded.expected_class is FailureClass.OK
        assert reloaded.note == "a note"

    def test_case_names_are_sanitized_into_filenames(self, tmp_path):
        case = small_case(name="weird")
        hostile = QaCase(spec=case.spec, name="../evil name")
        path = case_path(hostile, tmp_path)
        assert path.parent == tmp_path
        assert path.name == ".._evil_name.json"

    def test_load_corpus_is_sorted_and_tolerates_missing_dir(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
        save_case(small_case(name="bbb"), tmp_path)
        save_case(small_case(name="aaa"), tmp_path)
        assert [c.case_name for c in load_corpus(tmp_path)] == ["aaa", "bbb"]


class TestReplay:
    def test_replay_shipped_corpus(self):
        """Tier-1 gate: the shipped corpus must replay exactly as recorded."""
        outcomes = replay_corpus(DEFAULT_CORPUS_DIR,
                                 toolchain=Toolchain(cache=True))
        assert len(outcomes) >= 5
        mismatched = [o.render() for o in outcomes if not o.matched]
        assert mismatched == []
        # the hand-picked seed entries cover every failure class
        assert {o.expected for o in outcomes} == set(FailureClass)

    def test_replay_flags_a_stale_expectation(self, tmp_path):
        stale = QaCase(
            spec=small_case().spec,
            expected_class=FailureClass.VERILOG_MISMATCH,  # actually OK
            name="stale",
        )
        save_case(stale, tmp_path)
        outcomes = replay_corpus(tmp_path)
        assert len(outcomes) == 1
        assert not outcomes[0].matched
        assert outcomes[0].actual is FailureClass.OK
        assert "FAIL" in outcomes[0].render()

    def test_missing_expectation_defaults_to_ok(self, tmp_path):
        case = QaCase(spec=small_case().spec, name="implicit")
        save_case(case, tmp_path)
        outcomes = replay_corpus(tmp_path)
        assert outcomes[0].expected is FailureClass.OK
        assert outcomes[0].matched
        assert "PASS" in outcomes[0].render()
