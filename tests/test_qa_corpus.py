"""The regression corpus: persistence round-trips and the tier-1 replay.

``test_replay_shipped_corpus`` is the promise the corpus makes: every case
ever filed keeps classifying exactly as recorded, in both languages, on
every test run.
"""

import time

import pytest

from repro.eda.toolchain import Language, Toolchain
from repro.formal import check_source
from repro.qa.corpus import (
    DEFAULT_CORPUS_DIR,
    case_path,
    load_case,
    load_corpus,
    replay_corpus,
    save_case,
)
from repro.qa.oracle import FailureClass, FormalWitness, QaCase, case_sources
from repro.qa.spec import QaSpec


def small_case(name="roundtrip", expected=FailureClass.OK):
    spec = QaSpec(
        name=name, width=4, inputs=("a0",),
        outputs=(("y0", ["not", ["var", "a0"]]),),
    )
    return QaCase(spec=spec, expected_class=expected, note="a note")


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        case = small_case()
        path = save_case(case, tmp_path)
        assert path == case_path(case, tmp_path)
        reloaded = load_case(path)
        assert reloaded.spec.canonical() == case.spec.canonical()
        assert reloaded.expected_class is FailureClass.OK
        assert reloaded.note == "a note"

    def test_case_names_are_sanitized_into_filenames(self, tmp_path):
        case = small_case(name="weird")
        hostile = QaCase(spec=case.spec, name="../evil name")
        path = case_path(hostile, tmp_path)
        assert path.parent == tmp_path
        assert path.name == ".._evil_name.json"

    def test_load_corpus_is_sorted_and_tolerates_missing_dir(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
        save_case(small_case(name="bbb"), tmp_path)
        save_case(small_case(name="aaa"), tmp_path)
        assert [c.case_name for c in load_corpus(tmp_path)] == ["aaa", "bbb"]


class TestReplay:
    def test_replay_shipped_corpus(self):
        """Tier-1 gate: the shipped corpus must replay exactly as recorded."""
        outcomes = replay_corpus(DEFAULT_CORPUS_DIR,
                                 toolchain=Toolchain(cache=True))
        assert len(outcomes) >= 5
        mismatched = [o.render() for o in outcomes if not o.matched]
        assert mismatched == []
        # the hand-picked seed entries cover every failure class
        assert {o.expected for o in outcomes} == set(FailureClass)

    def test_replay_flags_a_stale_expectation(self, tmp_path):
        stale = QaCase(
            spec=small_case().spec,
            expected_class=FailureClass.VERILOG_MISMATCH,  # actually OK
            name="stale",
        )
        save_case(stale, tmp_path)
        outcomes = replay_corpus(tmp_path)
        assert len(outcomes) == 1
        assert not outcomes[0].matched
        assert outcomes[0].actual is FailureClass.OK
        assert "FAIL" in outcomes[0].render()

    def test_missing_expectation_defaults_to_ok(self, tmp_path):
        case = QaCase(spec=small_case().spec, name="implicit")
        save_case(case, tmp_path)
        outcomes = replay_corpus(tmp_path)
        assert outcomes[0].expected is FailureClass.OK
        assert outcomes[0].matched
        assert "PASS" in outcomes[0].render()


class TestFormalCorpus:
    """The formally-refuted entries and their proof artifacts."""

    def test_shipped_corpus_carries_witnesses(self):
        cases = {c.case_name: c for c in load_corpus(DEFAULT_CORPUS_DIR)}
        refuted = [
            c for name, c in cases.items()
            if name.startswith("corpus_formal_refuted")
        ]
        assert len(refuted) >= 2
        languages = set()
        for case in refuted:
            assert case.witness is not None
            assert case.witness.inputs
            languages.add(case.witness.language)
        # at least one witness per language frontend
        assert languages == set(Language)

    def test_witnesses_replay_as_failures(self):
        toolchain = Toolchain(cache=True)
        outcomes = replay_corpus(DEFAULT_CORPUS_DIR, toolchain=toolchain)
        with_witness = [o for o in outcomes if o.witness_ok is not None]
        assert len(with_witness) >= 2
        for outcome in with_witness:
            assert outcome.witness_ok is True
            assert "witness reproduces" in outcome.render()

    def test_tampered_witness_fails_the_replay(self, tmp_path):
        source = next(
            c for c in load_corpus(DEFAULT_CORPUS_DIR)
            if c.case_name == "corpus_formal_refuted_comb"
        )
        # a stale witness: stimulus on which the defect is invisible.
        # xor and or agree whenever the operands share no set bits
        tampered = QaCase(
            spec=source.spec,
            mutations=source.mutations,
            expected_class=source.expected_class,
            witness=FormalWitness(
                language=source.witness.language,
                inputs=({"a0": 0, "a1": 0},),
            ),
        )
        save_case(tampered, tmp_path)
        outcomes = replay_corpus(tmp_path, toolchain=Toolchain(cache=True))
        assert len(outcomes) == 1
        assert outcomes[0].witness_ok is False
        assert not outcomes[0].matched
        assert "STALE" in outcomes[0].render()

    def test_whole_corpus_is_formally_decisive_quickly(self):
        """Acceptance: every corpus case gets a decisive verdict, fast."""
        started = time.monotonic()
        for case in load_corpus(DEFAULT_CORPUS_DIR):
            sources = case_sources(case)
            for language in Language:
                result = check_source(
                    case.spec, sources[language], language
                )
                assert result.decisive, (
                    case.case_name, language, result.verdict, result.detail
                )
        assert time.monotonic() - started < 60
