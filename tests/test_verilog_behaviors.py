"""Deeper Verilog behavioural coverage: casez, selects, system functions."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain


def outputs(source: str) -> list[str]:
    toolchain = Toolchain()
    result = toolchain.simulate(
        [HdlFile("t.v", source, Language.VERILOG)], "tb"
    )
    assert result.ok, result.log
    return result.output_lines


def compile_errors(source: str) -> str:
    toolchain = Toolchain()
    result = toolchain.compile(
        [HdlFile("t.v", source, Language.VERILOG)], "tb"
    )
    assert not result.ok
    return result.log


class TestCaseVariants:
    def test_casez_wildcards(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] d; reg [1:0] y;
                always @(*) begin
                    casez (d)
                        4'b1???: y = 2'd3;
                        4'b01??: y = 2'd2;
                        4'b001?: y = 2'd1;
                        default: y = 2'd0;
                    endcase
                end
                initial begin
                    d = 4'b1010; #1; $display("%0d", y);
                    d = 4'b0110; #1; $display("%0d", y);
                    d = 4'b0010; #1; $display("%0d", y);
                    d = 4'b0001; #1; $display("%0d", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["3", "2", "1", "0"]

    def test_case_multiple_labels(self):
        lines = outputs(
            """
            module tb;
                reg [2:0] d; reg y;
                always @(*) begin
                    case (d)
                        3'd0, 3'd2, 3'd4, 3'd6: y = 1'b1;
                        default: y = 1'b0;
                    endcase
                end
                initial begin
                    d = 3'd4; #1; $display("%b", y);
                    d = 3'd5; #1; $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["1", "0"]

    def test_case_x_subject_takes_default(self):
        lines = outputs(
            """
            module tb;
                reg [1:0] d; reg [1:0] y;
                always @(*) begin
                    case (d)
                        2'b00: y = 2'd1;
                        default: y = 2'd2;
                    endcase
                end
                initial begin
                    // d never driven: stays xx, matches only default
                    #1; $display("%0d", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["2"]


class TestSelects:
    def test_indexed_part_select_read(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] d; wire [3:0] y;
                assign y = d[2 +: 4];
                initial begin
                    d = 8'b10110100; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["1101"]

    def test_minus_colon_select(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] d; wire [3:0] y;
                assign y = d[5 -: 4];
                initial begin
                    d = 8'b10110100; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["1101"]

    def test_bit_select_write(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] d;
                initial begin
                    d = 4'b0000;
                    d[2] = 1'b1;
                    d[0] = 1'b1;
                    $display("%b", d);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["0101"]

    def test_part_select_write(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] d;
                initial begin
                    d = 8'h00;
                    d[7:4] = 4'hA;
                    $display("%h", d);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["a0"]

    def test_concat_lvalue(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] hi, lo;
                initial begin
                    {hi, lo} = 8'hC5;
                    $display("%h %h", hi, lo);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["c 5"]

    def test_out_of_range_read_is_x(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] d; wire y;
                assign y = d[7];
                initial begin
                    d = 4'b1111; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["x"]


class TestSystemFunctions:
    def test_clog2(self):
        lines = outputs(
            """
            module tb;
                initial begin
                    $display("%0d %0d %0d %0d",
                             $clog2(1), $clog2(2), $clog2(7), $clog2(8));
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["0 1 3 3"]

    def test_random_is_deterministic_per_run(self):
        source = """
        module tb;
            reg [31:0] r1, r2;
            initial begin
                r1 = $random;
                r2 = $random;
                $display("%0d", r1 == r2);
                $display("%0d", r1);
                $finish;
            end
        endmodule
        """
        first = outputs(source)
        second = outputs(source)
        assert first[0] == "0"  # consecutive draws differ
        assert first == second  # but runs are reproducible

    def test_signed_unsigned_passthrough(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] d;
                initial begin
                    d = 4'b1010;
                    $display("%0d", $unsigned(d));
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["10"]


class TestParameters:
    def test_localparam_and_expressions(self):
        lines = outputs(
            """
            module tb;
                localparam WIDTH = 4;
                localparam DEPTH = 1 << WIDTH;
                reg [WIDTH-1:0] d;
                initial begin
                    d = DEPTH - 1;
                    $display("%0d", d);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["15"]

    def test_parameter_used_in_range(self):
        lines = outputs(
            """
            module wideand #(parameter W = 2)(
                input [W-1:0] a, input [W-1:0] b, output [W-1:0] y
            );
                assign y = a & b;
            endmodule
            module tb;
                reg [7:0] a, b; wire [7:0] y;
                wideand #(.W(8)) u(.a(a), .b(b), .y(y));
                initial begin
                    a = 8'hF0; b = 8'hAA; #1;
                    $display("%h", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["a0"]


class TestElaborationErrors:
    def test_unknown_module_is_compile_error(self):
        log = compile_errors(
            "module tb; ghost g(); initial $finish; endmodule"
        )
        assert "unknown module" in log

    def test_always_without_sensitivity_or_delay_rejected(self):
        log = compile_errors(
            "module tb; reg a; always a = ~a; endmodule"
        )
        assert "loop forever" in log

    def test_bad_range_direction_rejected(self):
        log = compile_errors(
            "module tb; reg [0:3] d; initial $finish; endmodule"
        )
        assert "descending range" in log
