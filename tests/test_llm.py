"""Tests for the LLM layer: protocol, profiles, mock, synthetic model."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.evalsuite.suite import build_suite
from repro.llm import protocol
from repro.llm.interface import ChatMessage, LLMError, estimate_tokens
from repro.llm.mock import ScriptedLLM
from repro.llm.profiles import (
    CLAUDE_35_SONNET,
    GPT_4O,
    LLAMA3_70B,
    PROFILES,
    count_of,
    profile_for,
)
from repro.llm.synthetic import (
    SyntheticDesignLLM,
    build_defect_plan,
    plan_statistics,
    _cycle_sequence,
)


@pytest.fixture(scope="module")
def suite():
    return build_suite()


class TestProtocol:
    def test_spec_roundtrip(self):
        prompt = f"{protocol.TASK_RTL}\nTarget language: Verilog\n" + (
            protocol.spec_block("make an adder")
        )
        assert protocol.detect_task(prompt) == protocol.TASK_RTL
        assert protocol.parse_spec(prompt) == "make an adder"
        assert protocol.parse_language(prompt) is Language.VERILOG

    def test_vhdl_language_tag(self):
        prompt = "Target language: VHDL\n"
        assert protocol.parse_language(prompt) is Language.VHDL

    def test_missing_parts_return_none(self):
        assert protocol.detect_task("hello") is None
        assert protocol.parse_spec("no fences") is None
        assert protocol.parse_language("nothing") is None

    def test_code_and_log_blocks(self):
        text = protocol.code_block("module m; endmodule")
        assert protocol.parse_code(text) == "module m; endmodule"
        log = protocol.log_block("ERROR: bad")
        assert protocol.parse_log(log) == "ERROR: bad"


class TestInterface:
    def test_chat_message_role_validated(self):
        with pytest.raises(ValueError):
            ChatMessage(role="robot", content="x")

    def test_estimate_tokens(self):
        assert estimate_tokens("abcd" * 10) == 10
        assert estimate_tokens("") == 1


class TestScriptedLLM:
    def test_replays_in_order(self):
        llm = ScriptedLLM(responses=["one", "two"])
        first = llm.complete([ChatMessage("user", "a")])
        second = llm.complete([ChatMessage("user", "b")])
        assert (first.text, second.text) == ("one", "two")
        assert len(llm.calls) == 2

    def test_exhaustion_raises(self):
        llm = ScriptedLLM(responses=[])
        with pytest.raises(LLMError, match="exhausted"):
            llm.complete([ChatMessage("user", "a")])


class TestProfiles:
    def test_lookup(self):
        assert profile_for("gpt-4o") is GPT_4O
        with pytest.raises(KeyError, match="known"):
            profile_for("gpt-5")

    def test_count_of_matches_paper_rounding(self):
        assert count_of(77.0, 156) == 120
        assert count_of(1.28, 156) == 2
        assert count_of(58.87, 156) == 92

    def test_profiles_cover_both_languages(self):
        for profile in PROFILES:
            for language in Language:
                behaviour = profile.for_language(language)
                assert 0 <= behaviour.base_functional_pct <= 100
                assert (
                    behaviour.aivril_functional_pct
                    >= behaviour.base_functional_pct
                )

    def test_capability_ordering_matches_table1(self):
        """Claude > GPT-4o > Llama3 on functional baselines, both languages."""
        for language in Language:
            values = [
                p.for_language(language).base_functional_pct
                for p in (LLAMA3_70B, GPT_4O, CLAUDE_35_SONNET)
            ]
            assert values == sorted(values)


class TestDefectPlan:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("language", list(Language), ids=lambda l: l.value)
    def test_plan_reproduces_table1_counts(self, suite, profile, language):
        behaviour = profile.for_language(language)
        plans = build_defect_plan(profile, language, suite)
        stats = plan_statistics(plans)
        total = len(suite)
        assert stats.base_syntax_pass == count_of(
            behaviour.base_syntax_pct, total
        )
        assert stats.base_functional_pass == count_of(
            behaviour.base_functional_pct, total
        )
        assert stats.final_syntax_pass == count_of(
            behaviour.aivril_syntax_pct, total
        )
        assert stats.final_functional_pass == count_of(
            behaviour.aivril_functional_pct, total
        )

    def test_plan_is_deterministic(self, suite):
        a = build_defect_plan(GPT_4O, Language.VERILOG, suite)
        b = build_defect_plan(GPT_4O, Language.VERILOG, suite)
        assert {k: v.syntax_cycles for k, v in a.items()} == {
            k: v.syntax_cycles for k, v in b.items()
        }

    def test_cycle_sequence_mean(self):
        values = _cycle_sequence(3.95, 200)
        assert abs(sum(values) / len(values) - 3.95) < 0.05
        assert all(1 <= v <= 6 for v in values)

    def test_cycle_sequence_integral_mean(self):
        assert _cycle_sequence(2.0, 10) == [2] * 10

    def test_cycle_sequence_empty(self):
        assert _cycle_sequence(3.0, 0) == []


class TestSyntheticLLM:
    def _prompt(self, task, problem, language):
        return [
            ChatMessage(
                "user",
                f"{task}\nTarget language: "
                f"{protocol.language_tag(language)}\n"
                f"{protocol.spec_block(problem.prompt)}",
            )
        ]

    def test_testbench_is_golden(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        problem = suite.get("gates_and")
        response = llm.complete(
            self._prompt(protocol.TASK_TESTBENCH, problem, Language.VERILOG)
        )
        assert response.text == problem.golden_tb[Language.VERILOG]

    def test_weak_testbench_is_shorter(self, suite):
        llm = SyntheticDesignLLM(
            CLAUDE_35_SONNET, suite, testbench_quality="weak"
        )
        # pick a problem with a large vector set so the cap actually bites
        problem = suite.get("vec_and8")
        response = llm.complete(
            self._prompt(protocol.TASK_TESTBENCH, problem, Language.VERILOG)
        )
        assert len(response.text) < len(problem.golden_tb[Language.VERILOG])

    def test_clean_problem_rtl_is_reference(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = next(
            pid for pid, plan in plans.items()
            if not plan.has_syntax_defect and not plan.has_functional_defect
        )
        problem = suite.get(pid)
        response = llm.complete(
            self._prompt(protocol.TASK_RTL, problem, Language.VERILOG)
        )
        assert response.text == problem.reference[Language.VERILOG]

    def test_syntax_defective_rtl_fails_compile(self, suite):
        llm = SyntheticDesignLLM(LLAMA3_70B, suite)
        plans = llm.plan(Language.VERILOG)
        pid = next(
            pid for pid, plan in plans.items() if plan.has_syntax_defect
        )
        problem = suite.get(pid)
        response = llm.complete(
            self._prompt(protocol.TASK_RTL, problem, Language.VERILOG)
        )
        toolchain = Toolchain()
        result = toolchain.compile(
            [HdlFile("top_module.v", response.text, Language.VERILOG)],
            "top_module",
        )
        assert not result.ok

    def test_repairable_converges_after_assigned_cycles(self, suite):
        llm = SyntheticDesignLLM(LLAMA3_70B, suite)
        plans = llm.plan(Language.VERILOG)
        pid, plan = next(
            (pid, plan) for pid, plan in plans.items()
            if plan.has_syntax_defect and plan.syntax_repairable
        )
        problem = suite.get(pid)
        toolchain = Toolchain()
        llm.complete(self._prompt(protocol.TASK_RTL, problem, Language.VERILOG))
        final = None
        for _ in range(plan.syntax_cycles):
            final = llm.complete(
                self._prompt(
                    protocol.TASK_FIX_SYNTAX, problem, Language.VERILOG
                )
            )
        result = toolchain.compile(
            [HdlFile("top_module.v", final.text, Language.VERILOG)],
            "top_module",
        )
        assert result.ok

    def test_unrepairable_repeats_itself(self, suite):
        llm = SyntheticDesignLLM(LLAMA3_70B, suite)
        plans = llm.plan(Language.VHDL)
        pid = next(
            pid for pid, plan in plans.items()
            if plan.has_syntax_defect and not plan.syntax_repairable
        )
        problem = suite.get(pid)
        first = llm.complete(
            self._prompt(protocol.TASK_RTL, problem, Language.VHDL)
        )
        second = llm.complete(
            self._prompt(protocol.TASK_FIX_SYNTAX, problem, Language.VHDL)
        )
        assert first.text == second.text

    def test_analysis_extracts_error_lines(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        prompt = (
            f"{protocol.TASK_ANALYZE_COMPILE}\nTarget language: Verilog\n"
            + protocol.log_block(
                "INFO: starting\nERROR: [VRFC 10-1412] syntax error [f.v:3]"
            )
        )
        response = llm.complete([ChatMessage("user", prompt)])
        assert "VRFC 10-1412" in response.text

    def test_unknown_spec_raises(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        prompt = (
            f"{protocol.TASK_RTL}\nTarget language: Verilog\n"
            + protocol.spec_block("a design nobody ever specified")
        )
        with pytest.raises(LLMError, match="recognize"):
            llm.complete([ChatMessage("user", prompt)])

    def test_missing_task_header_raises(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        with pytest.raises(LLMError, match="TASK"):
            llm.complete([ChatMessage("user", "please write verilog")])

    def test_latency_comes_from_profile(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        problem = suite.get("gates_and")
        response = llm.complete(
            self._prompt(protocol.TASK_RTL, problem, Language.VERILOG)
        )
        behaviour = CLAUDE_35_SONNET.for_language(Language.VERILOG)
        assert response.latency_seconds == behaviour.rtl_gen_seconds
