"""End-to-end tests of the AIVRIL2 pipeline."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, run_baseline
from repro.eda.toolchain import Language, Toolchain
from repro.evalsuite.suite import build_suite
from repro.evalsuite.validate import run_golden_tb
from repro.llm.profiles import CLAUDE_35_SONNET, LLAMA3_70B
from repro.llm.synthetic import SyntheticDesignLLM


@pytest.fixture(scope="module")
def suite():
    return build_suite()


def pick(plans, predicate):
    return next(pid for pid, plan in plans.items() if predicate(plan))


def make_pipeline(llm, language, **overrides):
    return Aivril2Pipeline(
        llm, Toolchain(), PipelineConfig(language=language, **overrides)
    )


class TestHappyPath:
    def test_clean_problem_converges_without_iterations(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: not p.has_syntax_defect and not p.has_functional_defect,
        )
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        assert result.converged
        assert result.syntax_iterations == 0
        assert result.functional_iterations == 0
        assert result.latency.total > 0

    def test_syntax_defect_repaired_in_assigned_cycles(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: p.has_syntax_defect
            and p.syntax_repairable
            and not p.has_functional_defect,
        )
        plan = plans[pid]
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        assert result.syntax_ok
        assert result.syntax_iterations == plan.syntax_cycles
        assert result.functional_ok

    def test_functional_defect_repaired(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: not p.has_syntax_defect
            and p.has_functional_defect
            and p.functional_repairable,
        )
        plan = plans[pid]
        problem = suite.get(pid)
        result = make_pipeline(llm, Language.VERILOG).run(problem.prompt)
        assert result.converged
        assert result.functional_iterations == plan.functional_cycles
        passed, _ = run_golden_tb(
            problem, Language.VERILOG, result.rtl, Toolchain()
        )
        assert passed

    def test_final_code_passes_golden_testbench(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VHDL)
        pid = pick(
            plans,
            lambda p: p.has_syntax_defect and p.syntax_repairable
            and not p.has_functional_defect,
        )
        problem = suite.get(pid)
        result = make_pipeline(llm, Language.VHDL).run(problem.prompt)
        assert result.converged
        passed, log = run_golden_tb(
            problem, Language.VHDL, result.rtl, Toolchain()
        )
        assert passed, log


class TestStuckModel:
    def test_unrepairable_syntax_stops_early(self, suite):
        llm = SyntheticDesignLLM(LLAMA3_70B, suite)
        plans = llm.plan(Language.VHDL)
        pid = pick(
            plans,
            lambda p: p.has_syntax_defect and not p.syntax_repairable,
        )
        result = make_pipeline(llm, Language.VHDL).run(suite.get(pid).prompt)
        assert not result.syntax_ok
        assert not result.functional_ok
        # the no-progress detector fires after one identical revision
        assert result.syntax_iterations == 1

    def test_unrepairable_functional_stops_early(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: not p.has_syntax_defect
            and p.has_functional_defect
            and not p.functional_repairable,
        )
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        assert result.syntax_ok
        assert not result.functional_ok
        assert result.functional_iterations == 1

    def test_no_progress_detector_can_be_disabled(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: not p.has_syntax_defect
            and p.has_functional_defect
            and not p.functional_repairable,
        )
        pipeline = make_pipeline(
            llm,
            Language.VERILOG,
            stop_on_no_progress=False,
            max_functional_iterations=3,
        )
        result = pipeline.run(suite.get(pid).prompt)
        assert result.functional_iterations == 3  # runs to the cap


class TestConfig:
    def test_iteration_caps_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(max_syntax_iterations=0)

    def test_testbench_last_mode(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: not p.has_syntax_defect and not p.has_functional_defect,
        )
        pipeline = make_pipeline(llm, Language.VERILOG, testbench_first=False)
        result = pipeline.run(suite.get(pid).prompt)
        assert result.converged
        # rtl version must precede the tb version in the history
        tags = [v.tag for v in result.versions]
        assert tags.index("rtl-v1") < tags.index("tb-v1")

    def test_transcript_shows_all_three_agents(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: p.has_functional_defect and p.functional_repairable
            and not p.has_syntax_defect,
        )
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        agents = {s.agent for s in result.transcript.steps}
        assert {"CodeAgent", "ReviewAgent", "VerificationAgent"} <= agents

    def test_latency_buckets_populated(self, suite):
        llm = SyntheticDesignLLM(LLAMA3_70B, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: p.has_syntax_defect and p.syntax_repairable,
        )
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        assert result.latency.generation_llm > 0
        assert result.latency.syntax_llm > 0
        assert result.latency.syntax_tool > 0
        assert result.latency.total == pytest.approx(
            result.latency.generation_llm
            + result.latency.syntax_loop
            + result.latency.functional_loop
        )


class TestBaseline:
    def test_baseline_single_call(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        problem = suite.get("gates_and")
        calls_before = llm.call_count
        result = run_baseline(llm, problem.prompt, Language.VERILOG)
        assert llm.call_count == calls_before + 1
        assert result.rtl
        behaviour = CLAUDE_35_SONNET.for_language(Language.VERILOG)
        assert result.latency_seconds == behaviour.rtl_gen_seconds


class TestTokenAccounting:
    def test_tokens_accumulated_across_agents(self, suite):
        from repro.llm.profiles import CLAUDE_35_SONNET
        from repro.llm.synthetic import SyntheticDesignLLM
        from repro.eda.toolchain import Language

        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        plans = llm.plan(Language.VERILOG)
        pid = pick(
            plans,
            lambda p: p.has_functional_defect and p.functional_repairable
            and not p.has_syntax_defect,
        )
        result = make_pipeline(llm, Language.VERILOG).run(suite.get(pid).prompt)
        assert result.tokens.llm_calls >= 4  # tb, rtl, analyses, fixes
        assert result.tokens.prompt_tokens > 0
        assert result.tokens.completion_tokens > 0
        assert result.tokens.total_tokens == (
            result.tokens.prompt_tokens + result.tokens.completion_tokens
        )
