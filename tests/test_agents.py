"""Tests for the three AIVRIL2 agents, using scripted LLMs where possible."""

import pytest

from repro.agents.base import StepKind, Transcript
from repro.agents.code_agent import CodeAgent, SpecificationIncomplete
from repro.agents.review_agent import ReviewAgent, parse_compile_log
from repro.agents.verification_agent import (
    VerificationAgent,
    parse_sim_failures,
)
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.llm import protocol
from repro.llm.mock import ScriptedLLM

GOOD_RTL = "module top_module(input a, output y); assign y = a; endmodule"
BAD_RTL = "module top_module(input a, output y); assign y = ; endmodule"
WRONG_RTL = "module top_module(input a, output y); assign y = ~a; endmodule"
TB = """
module tb;
    reg a; wire y;
    top_module dut(.a(a), .y(y));
    initial begin
        a = 0; #1;
        if (y !== 1'b0) $display("Test Case 1 Failed: y should be 0");
        a = 1; #1;
        if (y !== 1'b1) $display("Test Case 2 Failed: y should be 1");
        else if (y === 1'b1) $display("All tests passed successfully!");
        $finish;
    end
endmodule
"""


def files(rtl):
    return [
        HdlFile("top_module.v", rtl, Language.VERILOG),
        HdlFile("tb.v", TB, Language.VERILOG),
    ]


class TestCodeAgent:
    def test_testbench_then_rtl_versions(self):
        llm = ScriptedLLM(responses=[TB, GOOD_RTL])
        agent = CodeAgent(llm, Language.VERILOG, Transcript())
        tb = agent.generate_testbench("build a buffer with input a, output y")
        rtl = agent.generate_rtl("build a buffer", tb)
        assert agent.current_testbench == TB
        assert agent.current_rtl == GOOD_RTL
        assert [v.tag for v in agent.versions] == ["tb-v1", "rtl-v1"]

    def test_prompts_follow_protocol(self):
        captured = {}

        def on_call(index, messages):
            captured[index] = messages[-1].content

        llm = ScriptedLLM(responses=[TB, GOOD_RTL], on_call=on_call)
        agent = CodeAgent(llm, Language.VERILOG, Transcript())
        tb = agent.generate_testbench("a buffer with input a and output y")
        agent.generate_rtl("a buffer with input a and output y", tb)
        assert protocol.detect_task(captured[0]) == protocol.TASK_TESTBENCH
        assert protocol.detect_task(captured[1]) == protocol.TASK_RTL
        assert protocol.parse_spec(captured[1]) is not None

    def test_revision_history_and_rollback(self):
        llm = ScriptedLLM(responses=[GOOD_RTL, BAD_RTL])
        agent = CodeAgent(llm, Language.VERILOG, Transcript())
        agent.generate_rtl("spec long enough to be valid here", "")
        agent.revise_rtl("spec long enough to be valid here", "fix it",
                         kind="syntax")
        assert agent.current_rtl == BAD_RTL
        assert agent.rollback_rtl() == GOOD_RTL

    def test_thin_spec_without_dialog_raises(self):
        llm = ScriptedLLM(responses=["What are the ports?"])
        agent = CodeAgent(llm, Language.VERILOG, Transcript())
        with pytest.raises(SpecificationIncomplete):
            agent.ensure_specification("adder")

    def test_thin_spec_with_dialog_merges_answer(self):
        llm = ScriptedLLM(responses=["What are the ports?"])
        agent = CodeAgent(
            llm,
            Language.VERILOG,
            Transcript(),
            clarify=lambda q: "ports: a, b in; y out; y = a + b",
        )
        merged = agent.ensure_specification("adder")
        assert "a + b" in merged

    def test_revision_kind_validated(self):
        llm = ScriptedLLM(responses=[GOOD_RTL])
        agent = CodeAgent(llm, Language.VERILOG, Transcript())
        with pytest.raises(ValueError, match="kind"):
            agent.revise_rtl("spec", "feedback", kind="stylistic")

    def test_transcript_records_react_steps(self):
        llm = ScriptedLLM(responses=[TB])
        transcript = Transcript()
        agent = CodeAgent(llm, Language.VERILOG, transcript)
        agent.generate_testbench("a buffer with input a and output y")
        kinds = [s.kind for s in transcript.steps]
        assert StepKind.THOUGHT in kinds
        assert StepKind.ACTION in kinds
        assert StepKind.OBSERVATION in kinds


class TestReviewAgent:
    def test_clean_compile(self):
        llm = ScriptedLLM(responses=[])
        agent = ReviewAgent(llm, Toolchain(), Language.VERILOG, Transcript())
        outcome = agent.review(files(GOOD_RTL), "tb")
        assert outcome.ok
        assert outcome.tool_seconds > 0
        assert llm.calls == []  # no LLM needed for a clean compile

    def test_errors_become_corrective_prompt(self):
        llm = ScriptedLLM(responses=["analysis text from the reviewer"])
        agent = ReviewAgent(llm, Toolchain(), Language.VERILOG, Transcript())
        outcome = agent.review(files(BAD_RTL), "tb")
        assert not outcome.ok
        assert outcome.errors
        error = outcome.errors[0]
        assert error.line > 0
        assert error.code.startswith("VRFC")
        assert "syntax error" in outcome.corrective_prompt
        assert str(error.line) in outcome.corrective_prompt
        assert "analysis text from the reviewer" in outcome.corrective_prompt

    def test_parse_compile_log_extracts_fields(self):
        log = (
            "INFO: [XVLOG 1-1] Starting\n"
            "ERROR: [VRFC 10-1412] syntax error near ';' [dut.v:3]\n"
            "    > assign y = ;\n"
            "ERROR: [XVLOG 1-99] Analysis failed with 1 error(s), 0 warning(s)"
        )
        errors = parse_compile_log(log)
        assert len(errors) == 1
        assert errors[0].file == "dut.v"
        assert errors[0].line == 3
        assert errors[0].snippet == "assign y = ;"

    def test_summary_line_not_treated_as_error(self):
        log = "ERROR: [XVLOG 1-99] Analysis failed with 2 error(s)"
        assert parse_compile_log(log) == []


class TestVerificationAgent:
    def test_passing_simulation(self):
        llm = ScriptedLLM(responses=[])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        outcome = agent.verify(files(GOOD_RTL), "tb")
        assert outcome.ok
        assert llm.calls == []

    def test_failures_become_corrective_prompt(self):
        llm = ScriptedLLM(responses=["verifier analysis"])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        outcome = agent.verify(files(WRONG_RTL), "tb")
        assert not outcome.ok
        assert outcome.failures
        assert outcome.failures[0].case == 1
        assert "Test Case 1 Failed" in outcome.corrective_prompt
        assert "Keep the testbench unchanged" in outcome.corrective_prompt

    def test_parse_sim_failures(self):
        log = (
            "run all\n"
            "Test Case 3 Failed: q should be 5 at cycle 3, got 4\n"
            "ERROR: Test Case 7 Failed: q should be 0\n"
        )
        failures = parse_sim_failures(log)
        assert [f.case for f in failures] == [3, 7]

    def test_runtime_error_reported(self):
        oscillating = """
        module top_module(input a, output y);
            reg p, q;
            initial begin p = 0; q = 0; end
            always @(q) p = ~q;
            always @(p) q = p;
            assign y = a;
        endmodule
        """
        llm = ScriptedLLM(responses=["analysis"])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        outcome = agent.verify(files(oscillating), "tb")
        assert not outcome.ok
        assert "could not run to completion" in outcome.corrective_prompt


class TestVerificationAgentFormal:
    """Proof-based verification over QA-grammar candidates."""

    def qa_spec(self):
        from repro.qa.spec import QaSpec

        return QaSpec(
            name="agent_formal", width=4, inputs=("a0", "a1"),
            outputs=(("y0", ["xor", ["var", "a0"], ["var", "a1"]]),),
        )

    def clean_source(self):
        from repro.qa.oracle import QaCase, case_sources

        return case_sources(QaCase(spec=self.qa_spec()))[Language.VERILOG]

    def test_proof_skips_the_llm(self):
        from repro.formal import FormalVerdict

        llm = ScriptedLLM(responses=[])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        outcome = agent.verify_formal(self.qa_spec(), self.clean_source())
        assert outcome.ok
        assert outcome.formal.verdict is FormalVerdict.PROVED
        assert llm.calls == []

    def test_refutation_becomes_corrective_prompt(self):
        from repro.formal import FormalVerdict

        llm = ScriptedLLM(responses=["formal analysis"])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        broken = self.clean_source().replace("^", "|")
        outcome = agent.verify_formal(self.qa_spec(), broken)
        assert not outcome.ok
        assert outcome.formal.verdict is FormalVerdict.REFUTED
        assert outcome.failures
        assert outcome.failures[0].case == 1
        assert "inputs" in outcome.failures[0].detail
        assert "input sequence" in outcome.corrective_prompt
        assert "Keep the testbench unchanged" in outcome.corrective_prompt
        prompt = "\n".join(m.content for m in llm.calls[0])
        assert protocol.TASK_ANALYZE_FORMAL in prompt
        assert "formal analysis" in outcome.corrective_prompt

    def test_unsupported_source_falls_back_to_ok(self):
        from repro.formal import FormalVerdict

        llm = ScriptedLLM(responses=[])
        agent = VerificationAgent(
            llm, Toolchain(), Language.VERILOG, Transcript()
        )
        outcome = agent.verify_formal(
            self.qa_spec(), "assign y0 = a0 * a1;"
        )
        # not a proof: caller must still run the sampling testbench
        assert outcome.ok
        assert outcome.formal.verdict is FormalVerdict.UNSUPPORTED
