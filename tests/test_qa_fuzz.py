"""Fuzz campaigns: determinism across worker counts, no unclassified gaps."""

import pytest

from repro.qa import fuzz as fuzz_module
from repro.qa.fuzz import FuzzReport, ProgramResult, run_fuzz
from repro.qa.oracle import FailureClass

COUNT = 8


@pytest.fixture(scope="module")
def serial_report():
    return run_fuzz(0, COUNT)


class TestCampaign:
    def test_seed_zero_is_divergence_free(self, serial_report):
        assert serial_report.ok
        assert serial_report.divergences == []
        assert serial_report.class_counts == {"ok": COUNT}
        assert len(serial_report.results) == COUNT
        assert "divergences: none" in serial_report.render()

    def test_results_arrive_in_program_order(self, serial_report):
        assert [r.index for r in serial_report.results] == list(range(COUNT))
        assert [r.name for r in serial_report.results] == [
            f"qa_s0_p{i}" for i in range(COUNT)
        ]

    def test_parallel_equals_serial_byte_for_byte(self, serial_report):
        parallel = run_fuzz(0, COUNT, workers=4)
        assert [
            (r.index, r.name, r.failure_class, r.verilog_sha, r.vhdl_sha)
            for r in parallel.results
        ] == [
            (r.index, r.name, r.failure_class, r.verilog_sha, r.vhdl_sha)
            for r in serial_report.results
        ]

    def test_different_seeds_generate_different_programs(self, serial_report):
        other = run_fuzz(1, COUNT)
        assert [r.verilog_sha for r in other.results] != [
            r.verilog_sha for r in serial_report.results
        ]

    def test_throughput_accounting(self, serial_report):
        assert serial_report.elapsed > 0
        assert serial_report.throughput > 0
        assert all(r.seconds >= 0 for r in serial_report.results)

    def test_grammar_telemetry_rides_along(self, serial_report):
        from repro.qa.grammar import ALL_OP_KINDS
        from repro.qa.spec import SPEC_SHAPES

        for result in serial_report.results:
            assert result.shape in SPEC_SHAPES
            assert result.ops
            assert set(result.ops) <= set(ALL_OP_KINDS)
        assert sum(serial_report.shape_counts.values()) == COUNT
        assert "shapes:" in serial_report.render()
        # the per-op histogram tallies each program once per op it used
        table = serial_report.op_class_counts
        assert table
        for op, per_class in table.items():
            assert op in ALL_OP_KINDS
            assert sum(per_class.values()) == sum(
                1 for r in serial_report.results if op in r.ops
            )


class TestEngineFailuresAreClassified:
    def test_dead_task_becomes_a_crash_divergence(self, monkeypatch):
        """A program whose task dies is a CRASH-class divergence, never a
        silent gap — the campaign has zero unclassified outcomes."""

        real = fuzz_module._fuzz_program

        def flaky(seed, index, formal=False):
            if index == 1:
                raise RuntimeError("worker exploded")
            return real(seed, index, formal)

        monkeypatch.setattr(fuzz_module, "_fuzz_program", flaky)
        report = run_fuzz(0, 3)
        assert len(report.results) == 3
        by_index = {r.index: r for r in report.results}
        assert by_index[1].failure_class is FailureClass.CRASH
        assert "worker exploded" in by_index[1].error
        assert by_index[0].failure_class is FailureClass.OK
        assert by_index[2].failure_class is FailureClass.OK
        assert not report.ok
        assert [c.spec.name for c in report.divergences] == ["qa_s0_p1"]
        assert report.divergences[0].expected_class is FailureClass.CRASH
        assert "DIVERGENCES" in report.render()


class TestReportShape:
    def test_class_counts_tally_every_result(self):
        report = FuzzReport(seed=0, count=2, workers=1)
        report.results = [
            ProgramResult(0, "a", FailureClass.OK, "", "", 0.1),
            ProgramResult(1, "b", FailureClass.CRASH, "", "", 0.1),
        ]
        assert report.class_counts == {"ok": 1, "crash": 1}
        assert report.throughput == 0.0  # no elapsed recorded


class TestFormalCrossCheck:
    def test_formal_campaign_proves_every_program(self):
        report = run_fuzz(0, 4, formal=True)
        assert report.formal
        assert report.ok
        assert report.formal_counts == {"proved": 8}  # 4 programs x 2 langs
        assert report.formal_inconsistencies == []
        assert "formal:" in report.render()

    def test_formal_is_off_by_default(self, serial_report):
        assert not serial_report.formal
        assert serial_report.formal_counts == {}
        assert "formal:" not in serial_report.render()

    def test_inconsistency_fails_the_campaign(self):
        report = FuzzReport(seed=0, count=1, workers=1, formal=True)
        report.results = [
            ProgramResult(
                0, "a", FailureClass.OK, "", "", 0.1,
                formal_verilog="proved", formal_vhdl="proved",
                formal_inconsistencies=("verilog: proved but sim failed",),
            ),
        ]
        assert not report.ok
        assert report.formal_inconsistencies == [
            "#0 a: verilog: proved but sim failed"
        ]
        assert "FORMAL INCONSISTENCY" in report.render()

    def test_unsupported_proof_fails_a_formal_campaign(self):
        # unsupported on a *generated* spec means the encoder/extractor
        # lost closure over the grammar — a formal campaign must fail
        report = FuzzReport(seed=0, count=1, workers=1, formal=True)
        report.results = [
            ProgramResult(
                0, "a", FailureClass.OK, "", "", 0.1,
                formal_verilog="unsupported", formal_vhdl="proved",
            ),
        ]
        assert not report.ok
        sampling_only = FuzzReport(seed=0, count=1, workers=1, formal=False)
        sampling_only.results = list(report.results)
        assert sampling_only.ok  # without --formal the verdicts are inert
