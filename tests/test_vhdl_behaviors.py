"""Deeper VHDL behavioural coverage: std_match, aggregates, edge memory."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain

PRELUDE = (
    "library ieee;\n"
    "use ieee.std_logic_1164.all;\n"
    "use ieee.numeric_std.all;\n"
)


def simulate(source: str):
    toolchain = Toolchain()
    result = toolchain.simulate(
        [HdlFile("t.vhd", PRELUDE + source, Language.VHDL)], "tb"
    )
    assert result.ok, result.log
    return result


def outputs(source: str) -> list[str]:
    return simulate(source).output_lines


def compile_errors(source: str) -> str:
    toolchain = Toolchain()
    result = toolchain.compile(
        [HdlFile("t.vhd", PRELUDE + source, Language.VHDL)], "tb"
    )
    assert not result.ok
    return result.log


class TestExpressions:
    def test_std_match_wildcards(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal d : std_logic_vector(3 downto 0) := "1010";
            begin
                stim: process begin
                    if std_match(d, "1-1-") then
                        report "wide match";
                    end if;
                    if std_match(d, "10--") then
                        report "prefix match";
                    end if;
                    if std_match(d, "11--") then
                        report "must not appear";
                    end if;
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["wide match", "prefix match"]

    def test_concat_builds_wider_vector(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal a : std_logic_vector(3 downto 0) := "1100";
                signal y : std_logic_vector(7 downto 0);
            begin
                y <= a & "0011";
                stim: process begin
                    wait for 1 ns;
                    assert y = "11000011" report "concat" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_aggregate_others_in_comparisons_context(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal v : std_logic_vector(5 downto 0) := (others => '1');
            begin
                stim: process begin
                    assert v = "111111" report "aggregate init" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_integer_signal_arithmetic(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal n : integer := 5;
            begin
                stim: process begin
                    n <= n * 3 + 1;
                    wait for 1 ns;
                    assert n = 16 report "integer math" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_boolean_signals_and_not(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal flag : boolean := false;
            begin
                stim: process begin
                    flag <= not flag;
                    wait for 1 ns;
                    if flag then
                        report "toggled";
                    end if;
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["toggled"]

    def test_mod_and_rem(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal a : unsigned(7 downto 0) := to_unsigned(23, 8);
            begin
                stim: process begin
                    assert (a mod 5) = 3 report "mod" severity error;
                    assert (a rem 4) = 3 report "rem" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]


class TestProcessSemantics:
    def test_falling_edge(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal clk : std_logic := '0';
                signal falls : integer := 0;
            begin
                watcher: process(clk) begin
                    if falling_edge(clk) then
                        falls <= falls + 1;
                    end if;
                end process;
                stim: process begin
                    clk <= '1'; wait for 5 ns;
                    clk <= '0'; wait for 5 ns;
                    clk <= '1'; wait for 5 ns;
                    clk <= '0'; wait for 5 ns;
                    assert falls = 2 report "fall count" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_event_attribute(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal clk : std_logic := '0';
                signal rises : integer := 0;
            begin
                watcher: process(clk) begin
                    if clk'event and clk = '1' then
                        rises <= rises + 1;
                    end if;
                end process;
                stim: process begin
                    clk <= '1'; wait for 5 ns;
                    clk <= '0'; wait for 5 ns;
                    clk <= '1'; wait for 5 ns;
                    assert rises = 2 report "rise count" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_while_loop_with_variable(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal y : integer := 0;
            begin
                stim: process
                    variable n : integer := 0;
                    variable total : integer := 0;
                begin
                    while n < 5 loop
                        n := n + 1;
                        total := total + n;
                    end loop;
                    y <= total;
                    wait for 1 ns;
                    assert y = 15 report "while sum" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_downto_for_loop_order(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
            begin
                stim: process begin
                    for i in 3 downto 1 loop
                        report "step";
                    end loop;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["step", "step", "step", "done"]

    def test_sequential_after_schedules_future_write(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal pulse : std_logic := '0';
            begin
                stim: process begin
                    pulse <= '1' after 20 ns;
                    wait for 10 ns;
                    assert pulse = '0' report "too early" severity error;
                    wait for 15 ns;
                    assert pulse = '1' report "never arrived" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_wait_on_signals(self):
        lines = outputs(
            """
            entity tb is end entity;
            architecture sim of tb is
                signal a : std_logic := '0';
            begin
                setter: process begin
                    wait for 12 ns;
                    a <= '1';
                    wait;
                end process;
                stim: process begin
                    wait on a;
                    report "woke";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["woke"]


class TestDiagnostics:
    def test_undeclared_in_process_is_compile_error(self):
        log = compile_errors(
            """
            entity tb is end entity;
            architecture sim of tb is
            begin
                stim: process begin
                    ghost <= '1';
                    wait;
                end process;
            end architecture;
            """
        )
        assert "'ghost'" in log

    def test_wait_until_constant_is_runtime_error(self):
        # the condition's read set is only known when the wait executes, so
        # this surfaces as a simulation error, not a compile error
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.vhd",
                    PRELUDE
                    + """
                    entity tb is end entity;
                    architecture sim of tb is
                    begin
                        stim: process begin
                            wait until true;
                        end process;
                    end architecture;
                    """,
                    Language.VHDL,
                )
            ],
            "tb",
        )
        assert not result.ok
        assert "never become true" in result.runtime_error

    def test_entity_without_architecture_rejected(self):
        toolchain = Toolchain()
        result = toolchain.compile(
            [
                HdlFile(
                    "t.vhd",
                    PRELUDE + "entity tb is end entity;",
                    Language.VHDL,
                )
            ],
            "tb",
        )
        assert not result.ok
        assert "no architecture" in result.log
