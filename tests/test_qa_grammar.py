"""Properties of the QA expression grammar (``repro.qa.grammar``)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.qa.grammar import (
    BINARY_OPS,
    children,
    count_nodes,
    evaluate,
    pruned,
    random_expr,
    substitute,
    validate_expr,
    variables,
)

NAMES = ["a0", "a1", "y0"]


@st.composite
def exprs(draw):
    """A generated tree plus the width it was generated for."""
    rng = random.Random(draw(st.integers(0, 2**32)))
    width = draw(st.integers(2, 6))
    budget = draw(st.integers(1, 16))
    return random_expr(rng, NAMES, width, budget), width


def env_for(width):
    return {name: i * 3 % (1 << width) for i, name in enumerate(NAMES)}


class TestEvaluate:
    @given(exprs())
    def test_result_is_masked_to_width(self, pair):
        tree, width = pair
        value = evaluate(tree, env_for(width), width)
        assert 0 <= value < (1 << width)

    @given(exprs())
    def test_double_not_is_identity(self, pair):
        tree, width = pair
        env = env_for(width)
        assert evaluate(["not", ["not", tree]], env, width) == evaluate(
            tree, env, width
        )

    @given(exprs())
    def test_substitute_equals_env_update(self, pair):
        tree, width = pair
        env = env_for(width)
        replaced = substitute(tree, "a0", 5)
        assert "a0" not in variables(replaced)
        patched = dict(env, a0=5)
        assert evaluate(replaced, env, width) == evaluate(tree, patched, width)

    def test_operator_semantics_against_ints(self):
        width, a, b = 4, 11, 6
        env = {"a0": a, "a1": b}
        mask = (1 << width) - 1
        expect = {
            "and": a & b, "or": a | b, "xor": a ^ b,
            "add": (a + b) & mask, "sub": (a - b) & mask,
        }
        for op in BINARY_OPS:
            tree = [op, ["var", "a0"], ["var", "a1"]]
            assert evaluate(tree, env, width) == expect[op]
        mux = ["mux", "lt", ["var", "a1"], ["var", "a0"],
               ["const", 1], ["const", 2]]
        assert evaluate(mux, env, width) == 1  # 6 < 11
        assert evaluate(["not", ["const", 0]], env, width) == mask

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            evaluate(["nand", ["const", 1], ["const", 1]], {}, 4)
        with pytest.raises(ValueError):
            children(["nand", ["const", 1], ["const", 1]])


class TestStructure:
    @given(exprs())
    def test_generated_trees_validate_and_respect_budget(self, pair):
        tree, _ = pair
        validate_expr(tree, set(NAMES))
        assert count_nodes(tree) >= 1

    @given(exprs())
    def test_count_nodes_matches_children_recursion(self, pair):
        tree, _ = pair
        assert count_nodes(tree) == 1 + sum(
            count_nodes(child) for child in children(tree)
        )

    @given(st.integers(0, 2**32))
    def test_generation_is_deterministic(self, seed):
        first = random_expr(random.Random(seed), NAMES, 4, 10)
        second = random_expr(random.Random(seed), NAMES, 4, 10)
        assert first == second

    def test_validate_rejects_malformed_nodes(self):
        for bad in (
            [],
            ["var", "ghost"],
            ["const", -1],
            ["const", "x"],
            ["not"],
            ["add", ["const", 1]],
            ["mux", "ne", ["const", 0], ["const", 0],
             ["const", 1], ["const", 2]],
            "not-a-node",
        ):
            with pytest.raises(ValueError):
                validate_expr(bad, set(NAMES))


class TestPruned:
    @given(exprs())
    def test_candidates_shrink_and_stay_wellformed(self, pair):
        tree, _ = pair
        original = count_nodes(tree)
        candidates = list(pruned(tree))
        if tree != ["const", 0]:  # const-0 is the shrink fixpoint
            assert candidates  # anything else at least collapses to const-0
        for candidate in candidates:
            validate_expr(candidate, set(NAMES))
            assert count_nodes(candidate) <= original
            assert candidate != tree

    def test_const_zero_is_a_fixpoint(self):
        assert list(pruned(["const", 0])) == []

    def test_hoists_every_child(self):
        tree = ["add", ["var", "a0"], ["not", ["var", "a1"]]]
        candidates = list(pruned(tree))
        assert ["var", "a0"] in candidates
        assert ["not", ["var", "a1"]] in candidates
        assert ["const", 0] in candidates
        # recursive: the inner not can collapse in place
        assert ["add", ["var", "a0"], ["const", 0]] in candidates
        assert ["add", ["var", "a0"], ["var", "a1"]] in candidates
