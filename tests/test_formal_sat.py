"""The CDCL SAT core: fixtures, propagation, conflicts, determinism.

The solver underwrites every formal verdict, so these tests pin down its
contract directly at the CNF level: known-SAT/UNSAT formulas, unit
propagation chains, conflict-driven learning on classic hard instances,
budget exhaustion, and — because oracle witnesses must be byte-identical
at any ``--workers`` count — bit-for-bit determinism of models and stats.
"""

import itertools
import random

from repro.formal.sat import Solver, solve


def brute_force_sat(num_vars, clauses) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(model, clauses):
    for clause in clauses:
        assert any(model[abs(lit)] == (lit > 0) for lit in clause), clause


class TestFixtures:
    def test_empty_formula_is_sat(self):
        result = solve(3, [])
        assert result.sat
        assert set(result.model) == {1, 2, 3}

    def test_single_unit(self):
        result = solve(1, [(1,)])
        assert result.sat
        assert result.model[1] is True

    def test_contradictory_units(self):
        assert solve(1, [(1,), (-1,)]).unsat

    def test_empty_clause_is_unsat(self):
        assert solve(2, [(1, 2), ()]).unsat

    def test_simple_sat(self):
        clauses = [(1, 2), (-1, 2), (1, -2)]
        result = solve(2, clauses)
        assert result.sat
        check_model(result.model, clauses)

    def test_simple_unsat(self):
        # all four 2-var polarity combinations: no assignment survives
        assert solve(2, [(1, 2), (-1, 2), (1, -2), (-1, -2)]).unsat

    def test_tautology_is_dropped(self):
        result = solve(2, [(1, -1), (2,)])
        assert result.sat
        assert result.model[2] is True

    def test_duplicate_literals_deduplicated(self):
        result = solve(1, [(1, 1, 1)])
        assert result.sat
        assert result.model[1] is True

    def test_xor_chain_sat(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 = x3 — consistent
        clauses = [
            (1, 2), (-1, -2),
            (2, 3), (-2, -3),
            (1, -3), (-1, 3),
        ]
        result = solve(3, clauses)
        assert result.sat
        check_model(result.model, clauses)

    def test_xor_cycle_unsat(self):
        # x1 xor x2, x2 xor x3, x3 xor x1 — odd cycle, unsatisfiable
        clauses = [
            (1, 2), (-1, -2),
            (2, 3), (-2, -3),
            (3, 1), (-3, -1),
        ]
        assert solve(3, clauses).unsat


class TestPropagation:
    def test_unit_chain_propagates_without_decisions(self):
        # 1 → 2 → 3 → 4 by implications from the unit (1,)
        clauses = [(1,), (-1, 2), (-2, 3), (-3, 4)]
        result = solve(4, clauses)
        assert result.sat
        assert all(result.model[v] for v in (1, 2, 3, 4))
        assert result.stats.decisions == 0

    def test_propagation_detects_conflict_at_level_zero(self):
        result = solve(3, [(1,), (-1, 2), (-1, 3), (-2, -3)])
        assert result.unsat
        assert result.stats.decisions == 0

    def test_watched_literals_skip_satisfied_clauses(self):
        clauses = [(1,), (1, 2, 3), (1, -2, -3)]
        result = solve(3, clauses)
        assert result.sat
        check_model(result.model, clauses)


class TestConflicts:
    def test_pigeonhole_3_2_unsat(self):
        clauses = _pigeonhole(3, 2)
        result = solve(3 * 2, clauses)
        assert result.unsat
        assert result.stats.conflicts > 0

    def test_pigeonhole_5_4_unsat_with_learning(self):
        clauses = _pigeonhole(5, 4)
        result = solve(5 * 4, clauses)
        assert result.unsat
        assert result.stats.learned > 0

    def test_conflict_budget_returns_unknown(self):
        clauses = _pigeonhole(6, 5)
        result = solve(6 * 5, clauses, max_conflicts=3)
        assert result.status == "unknown"
        assert result.model is None

    def test_random_formulas_match_brute_force(self):
        rng = random.Random(1234)
        for _ in range(300):
            num_vars = rng.randint(1, 8)
            clauses = [
                tuple(
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 4))
                )
                for _ in range(rng.randint(1, 24))
            ]
            result = solve(num_vars, clauses)
            expected = brute_force_sat(num_vars, clauses)
            assert result.sat == expected, (num_vars, clauses)
            if result.sat:
                check_model(result.model, clauses)


class TestDeterminism:
    def test_same_formula_same_model_and_stats(self):
        rng = random.Random(99)
        for _ in range(40):
            num_vars = rng.randint(4, 12)
            clauses = [
                tuple(
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(3)
                )
                for _ in range(4 * num_vars)
            ]
            first = solve(num_vars, clauses)
            second = solve(num_vars, clauses)
            assert first.status == second.status
            assert first.model == second.model
            assert first.stats == second.stats

    def test_solver_instances_are_independent(self):
        clauses = [(1, 2), (-1, 2)]
        a = Solver(2, clauses).solve()
        b = Solver(2, clauses).solve()
        assert a.model == b.model


def _pigeonhole(pigeons: int, holes: int) -> list[tuple[int, ...]]:
    """PHP(p, h): p pigeons into h holes, UNSAT whenever p > h."""

    def var(p, h):
        return p * holes + h + 1

    clauses = [
        tuple(var(p, h) for h in range(holes)) for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, h), -var(p2, h)))
    return clauses
