"""Tests for the span tracer: core semantics, process-safe trace files,
and the guarantee that tracing never changes results.

The heavyweight checks mirror the repo's execution-engine differential
philosophy:

* a ``workers=4`` traced sweep must produce one well-formed JSONL file —
  every line parses, validates against the record schema, and span
  parentage is identical to a serial run's (modulo pids/timestamps);
* a traced sweep must produce record-for-record the same ``ConfigResult``
  as an untraced one.
"""

import json

import pytest

from repro.eval.runner import ExperimentRunner
from repro.evalsuite.suite import build_suite
from repro.llm.profiles import GPT_4O
from repro.eda.toolchain import Language
from repro.obs import (
    MemorySink,
    NULL_TRACER,
    STATUS_ERROR,
    Tracer,
    configure_tracing,
    get_tracer,
    set_tracer,
    validate_trace,
)
from tests.test_exec_differential import deterministic_fields

PROBLEM_COUNT = 6


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


def make_tracer():
    sink = MemorySink()
    return Tracer(sink), sink


class TestSpanSemantics:
    def test_span_records_name_timing_and_attrs(self):
        tracer, sink = make_tracer()
        with tracer.span("work", kind="test") as span:
            span.set_attr("extra", 1)
            span.set_attrs(more=True)
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["attrs"] == {"kind": "test", "extra": 1, "more": True}
        assert record["status"] == "ok"
        assert record["end"] >= record["start"]
        assert record["wall_seconds"] >= 0.0
        assert record["cpu_seconds"] >= 0.0

    def test_nesting_sets_parent_and_emits_child_first(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.records
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_siblings_share_parent(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = sink.records
        assert a["parent_id"] == b["parent_id"] == outer["span_id"]

    def test_span_ids_unique_and_pid_qualified(self):
        tracer, sink = make_tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [record["span_id"] for record in sink.records]
        assert len(set(ids)) == 5
        assert all("-" in span_id for span_id in ids)

    def test_exception_marks_error_and_propagates(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = sink.records
        assert record["status"] == STATUS_ERROR
        assert "RuntimeError: boom" in record["error"]
        # the stack must be unwound: the next span is a root again
        with tracer.span("after"):
            pass
        assert sink.records[-1]["parent_id"] is None

    def test_explicit_status_survives_exception(self):
        tracer, sink = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("s") as span:
                span.set_status(STATUS_ERROR, "custom reason")
                raise ValueError("ignored")
        assert sink.records[0]["error"] == "custom reason"

    def test_event_ties_to_current_span(self):
        tracer, sink = make_tracer()
        tracer.event("outside", n=0)
        with tracer.span("s"):
            tracer.event("inside", n=1)
        outside, inside, span = sink.records
        assert outside["span_id"] is None
        assert inside["span_id"] == span["span_id"]
        assert inside["attrs"] == {"n": 1}

    def test_meta_and_metric_flush(self):
        tracer, sink = make_tracer()
        tracer.write_meta(purpose="test")
        tracer.metrics.counter("c").inc(3)
        tracer.flush_metrics()
        meta, metric = sink.records
        assert meta["type"] == "meta"
        assert meta["attrs"] == {"purpose": "test"}
        assert metric["type"] == "metric"
        assert metric["name"] == "c" and metric["value"] == 3


class TestJsonlSink:
    def test_close_flushes_and_is_reusable(self, tmp_path):
        from repro.obs import JsonlSink

        path = tmp_path / "sink.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.span("one"):
            pass
        tracer.metrics.counter("c").inc()
        tracer.close()  # flushes metrics, then closes the descriptor
        lines = [json.loads(line) for line in open(path)]
        assert [r["type"] for r in lines] == ["span", "metric"]
        # the sink reopens lazily after close
        with tracer.span("two"):
            pass
        assert len(open(path).readlines()) == 3
        tracer.sink.close()
        tracer.sink.close()  # idempotent

    def test_records_are_single_complete_lines(self, tmp_path):
        from repro.obs import JsonlSink

        sink = JsonlSink(tmp_path / "sink.jsonl")
        sink.write_record({"type": "meta", "nested": {"a": 1}})
        text = open(sink.path).read()
        assert text.endswith("\n")
        assert json.loads(text)["nested"] == {"a": 1}
        sink.close()


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_operations_produce_nothing(self):
        with NULL_TRACER.span("anything", key=1) as span:
            span.set_attr("a", 1)
            span.set_attrs(b=2)
            span.set_status("error", "x")
        NULL_TRACER.event("e", n=1)
        NULL_TRACER.write_meta(v=1)
        NULL_TRACER.flush_metrics()
        NULL_TRACER.close()
        assert NULL_TRACER.current_span() is None

    def test_null_span_exceptions_still_propagate(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("s"):
                raise KeyError("escapes")

    def test_set_tracer_none_restores_null(self):
        tracer, _ = make_tracer()
        set_tracer(tracer)
        assert get_tracer() is tracer
        set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestConfigureTracing:
    def test_none_path_leaves_tracer_unchanged(self):
        before = get_tracer()
        assert configure_tracing(None) is before
        assert get_tracer() is before

    def test_same_path_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = configure_tracing(path)
        second = configure_tracing(path)
        assert first is second
        assert get_tracer() is first

    def test_new_path_installs_new_tracer(self, tmp_path):
        first = configure_tracing(tmp_path / "a.jsonl")
        second = configure_tracing(tmp_path / "b.jsonl")
        assert first is not second
        assert get_tracer() is second


def run_sweep(trace_path=None, **kwargs):
    runner = ExperimentRunner(
        suite=build_suite().head(PROBLEM_COUNT),
        trace_path=str(trace_path) if trace_path else None,
        **kwargs,
    )
    results = runner.run_all(
        profiles=[GPT_4O], languages=(Language.VERILOG,)
    )
    return runner, results


def span_tree_shape(path):
    """Structural fingerprint of a trace: every span as (name, parent name,
    result attrs), sorted — pids, ids, and timestamps abstracted away."""
    records = [json.loads(line) for line in open(path)]
    spans = {
        r["span_id"]: r for r in records if r["type"] == "span"
    }
    shape = []
    for span in spans.values():
        parent = spans.get(span["parent_id"])
        attrs = {
            k: v for k, v in span["attrs"].items()
            # drop modeled-time attrs and the worker count (the one knob
            # that legitimately differs between the two runs)
            if not k.startswith("latency_")
            and k not in ("tool_seconds", "workers")
        }
        shape.append((
            span["name"],
            parent["name"] if parent else None,
            span["status"],
            tuple(sorted(attrs.items())),
        ))
    return sorted(shape)


class TestMultiprocessTraceIntegrity:
    def test_parallel_trace_is_one_wellformed_jsonl(self, tmp_path):
        path = tmp_path / "parallel.jsonl"
        runner, results = run_sweep(trace_path=path, workers=4)
        assert all(result.error_count == 0 for result in results)
        count, errors = validate_trace(path)
        assert errors == []
        assert count > 0
        records = [json.loads(line) for line in open(path)]
        # spans from more than one process merged into the one file
        span_pids = {r["pid"] for r in records if r["type"] == "span"}
        assert len(span_pids) > 1

    def test_parallel_parentage_is_stable(self, tmp_path):
        path = tmp_path / "parallel.jsonl"
        run_sweep(trace_path=path, workers=4)
        records = [json.loads(line) for line in open(path)]
        spans = {r["span_id"]: r for r in records if r["type"] == "span"}
        # every parent reference resolves within the same file
        for span in spans.values():
            assert span["parent_id"] is None or span["parent_id"] in spans
        # every task span hangs off the engine.run span
        engine = [s for s in spans.values() if s["name"] == "engine.run"]
        assert len(engine) == 1
        tasks = [s for s in spans.values() if s["name"] == "task.problem"]
        assert len(tasks) == PROBLEM_COUNT
        assert all(t["parent_id"] == engine[0]["span_id"] for t in tasks)

    def test_parallel_replay_equals_serial_replay(self, tmp_path):
        # cache locality is per-process, so comparing span *structure*
        # requires use_cache=False — with it, the two trees are identical
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_sweep(trace_path=serial, workers=1, use_cache=False)
        run_sweep(trace_path=parallel, workers=4, use_cache=False)
        assert span_tree_shape(serial) == span_tree_shape(parallel)


class TestTracingChangesNothing:
    def test_traced_equals_untraced(self, tmp_path):
        _, untraced = run_sweep()
        _, traced = run_sweep(trace_path=tmp_path / "trace.jsonl")
        for a, b in zip(untraced, traced):
            assert (
                [deterministic_fields(r) for r in a.records]
                == [deterministic_fields(r) for r in b.records]
            )

    def test_global_tracer_restored_after_traced_sweep(self, tmp_path):
        before = get_tracer()
        run_sweep(trace_path=tmp_path / "trace.jsonl")
        assert get_tracer() is before

    def test_untraced_sweep_after_traced_appends_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_sweep(trace_path=path)
        size = path.stat().st_size
        run_sweep()  # no trace_path: must not touch the old file
        assert path.stat().st_size == size
