"""Property tests: formal verdicts must agree with exhaustive simulation.

At small widths the ground truth is computable by brute force — every
input vector for combinational designs, every reachable product state for
sequential ones. The bounded model checker has to land on the same side
every time: equivalence ⇒ never REFUTED, divergence ⇒ REFUTED with a
witness, and every witness has to reproduce the mismatch when replayed —
first through the reference evaluator, and (for rendered HDL) through the
actual event-driven simulator via :func:`repro.qa.replay_witness`.
"""

import itertools
import random

import pytest
from hypothesis import given, strategies as st

from repro.designs.mutations import functional
from repro.eda.toolchain import Language, Toolchain
from repro.formal import (
    FormalVerdict,
    Netlist,
    check_source,
    check_trees,
)
from repro.qa.grammar import evaluate, random_expr
from repro.qa.oracle import CaseMutation, FormalWitness, QaCase, case_sources
from repro.qa.render import node_name
from repro.qa.spec import QaSpec, generate_spec
from repro.qa import replay_witness

SEEDS = st.integers(0, 100_000)

COMB_WIDTH = 3
SEQ_WIDTH = 2
SEQ_DEPTH = 8


@pytest.fixture(scope="module")
def toolchain():
    return Toolchain(cache=True)


def _comb_pair(seed: int):
    """A golden spec and an independently grown candidate over the same IO."""
    rng = random.Random(seed)
    golden_tree = random_expr(rng, ("a0", "a1"), COMB_WIDTH, budget=7)
    candidate_tree = random_expr(rng, ("a0", "a1"), COMB_WIDTH, budget=7)
    spec = QaSpec(
        name=f"equiv_comb_{seed}", width=COMB_WIDTH, inputs=("a0", "a1"),
        outputs=(("y0", golden_tree),),
    )
    return spec, golden_tree, Netlist(outputs={"y0": candidate_tree})


class TestCombinational:
    @given(SEEDS)
    def test_verdict_agrees_with_exhaustive_simulation(self, seed):
        spec, golden_tree, netlist = _comb_pair(seed)
        candidate_tree = netlist.outputs["y0"]
        result = check_trees(spec, netlist)

        differs = any(
            evaluate(golden_tree, {"a0": a0, "a1": a1}, COMB_WIDTH)
            != evaluate(candidate_tree, {"a0": a0, "a1": a1}, COMB_WIDTH)
            for a0, a1 in itertools.product(range(1 << COMB_WIDTH), repeat=2)
        )

        if differs:
            assert result.verdict is FormalVerdict.REFUTED
        else:
            assert result.verdict is FormalVerdict.PROVED

    @given(SEEDS)
    def test_refutation_witness_replays_in_the_evaluator(self, seed):
        spec, golden_tree, netlist = _comb_pair(seed)
        result = check_trees(spec, netlist)
        if result.verdict is not FormalVerdict.REFUTED:
            return
        assert len(result.witness) == 1
        inputs = result.witness[0]
        assert set(inputs) == {"a0", "a1"}
        assert (
            evaluate(golden_tree, inputs, COMB_WIDTH)
            != evaluate(netlist.outputs["y0"], inputs, COMB_WIDTH)
        )
        mismatch = result.mismatches[0]
        assert mismatch.expected == evaluate(golden_tree, inputs, COMB_WIDTH)
        assert mismatch.actual == evaluate(
            netlist.outputs["y0"], inputs, COMB_WIDTH
        )


def _seq_pair(seed: int):
    rng = random.Random(seed)
    golden_tree = random_expr(rng, ("a0", "y0"), SEQ_WIDTH, budget=6)
    candidate_tree = random_expr(rng, ("a0", "y0"), SEQ_WIDTH, budget=6)
    spec = QaSpec(
        name=f"equiv_seq_{seed}", width=SEQ_WIDTH, inputs=("a0",),
        outputs=(("y0", golden_tree),), clocked=True,
    )
    netlist = Netlist(outputs={"y0": candidate_tree}, resets={"y0": 0})
    return spec, golden_tree, netlist


def _divergence_depth(golden_tree, candidate_tree) -> int | None:
    """BFS over the product machine: cycles until outputs can differ.

    Registered outputs are observed *after* the clock edge, so a divergence
    at cycle k means the state pair reached after k-1 edges maps some input
    to differing next states. Returns the smallest such k, or None if no
    reachable pair ever diverges (true equivalence).
    """
    mask = (1 << SEQ_WIDTH) - 1
    frontier = {(0, 0)}
    visited = set(frontier)
    for depth in range(1, 1 + (1 << (2 * SEQ_WIDTH))):
        nxt = set()
        for golden_state, candidate_state in frontier:
            for a0 in range(1 << SEQ_WIDTH):
                g = evaluate(
                    golden_tree, {"a0": a0, "y0": golden_state}, SEQ_WIDTH
                ) & mask
                c = evaluate(
                    candidate_tree, {"a0": a0, "y0": candidate_state},
                    SEQ_WIDTH,
                ) & mask
                if g != c:
                    return depth
                nxt.add((g, c))
        frontier = nxt - visited
        if not frontier:
            return None
        visited |= nxt
    return None


class TestSequential:
    @given(SEEDS)
    def test_verdict_agrees_with_product_reachability(self, seed):
        spec, golden_tree, netlist = _seq_pair(seed)
        result = check_trees(spec, netlist, depth=SEQ_DEPTH)
        depth = _divergence_depth(golden_tree, netlist.outputs["y0"])

        if depth is not None and depth <= SEQ_DEPTH:
            assert result.verdict is FormalVerdict.REFUTED
            # BMC walks depths in order, so the witness is minimal
            assert len(result.witness) == depth
        else:
            assert result.verdict is not FormalVerdict.REFUTED

    @given(SEEDS)
    def test_refutation_witness_replays_from_reset(self, seed):
        spec, golden_tree, netlist = _seq_pair(seed)
        result = check_trees(spec, netlist, depth=SEQ_DEPTH)
        if result.verdict is not FormalVerdict.REFUTED:
            return
        mask = (1 << SEQ_WIDTH) - 1
        golden_state = candidate_state = 0
        diverged = False
        for inputs in result.witness:
            golden_state = evaluate(
                golden_tree, {**inputs, "y0": golden_state}, SEQ_WIDTH
            ) & mask
            candidate_state = evaluate(
                netlist.outputs["y0"], {**inputs, "y0": candidate_state},
                SEQ_WIDTH,
            ) & mask
            if golden_state != candidate_state:
                diverged = True
        assert diverged


class TestRenderings:
    """Clean renderings prove; mutated ones refute with simulator-valid
    witnesses — in both languages."""

    @given(st.integers(0, 500), st.integers(0, 40))
    def test_clean_renderings_prove_in_both_languages(self, seed, index):
        spec = generate_spec(seed, index)
        sources = case_sources(QaCase(spec=spec))
        for language in Language:
            result = check_source(spec, sources[language], language)
            assert result.verdict is FormalVerdict.PROVED, (
                seed, index, language, result.detail
            )

    @pytest.mark.parametrize("language", list(Language))
    def test_witness_fails_in_the_event_driven_simulator(
        self, toolchain, language
    ):
        tree = ["xor", ["var", "a0"], ["var", "a1"]]
        spec = QaSpec(
            name=f"equiv_witness_{language.value}", width=4,
            inputs=("a0", "a1"), outputs=(("y0", tree),),
        )
        gate = node_name(tree)
        a0, a1 = node_name(["var", "a0"]), node_name(["var", "a1"])
        if language is Language.VERILOG:
            mutation = functional(
                "xor to or", f"assign {gate} = {a0} ^ {a1};",
                f"assign {gate} = {a0} | {a1};",
            )
        else:
            mutation = functional(
                "xor to or", f"{gate} <= {a0} xor {a1};",
                f"{gate} <= {a0} or {a1};",
            )
        case = QaCase(spec=spec, mutations=(CaseMutation(language, mutation),))
        sources = case_sources(case)
        result = check_source(spec, sources[language], language)
        assert result.verdict is FormalVerdict.REFUTED

        stamped = QaCase(
            spec=spec, mutations=case.mutations,
            witness=FormalWitness(language=language, inputs=result.witness),
        )
        assert replay_witness(stamped, toolchain) is True
