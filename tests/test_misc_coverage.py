"""Coverage for smaller behaviours across the stack."""

import pytest

from repro.agents.base import Transcript
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.evalsuite.suite import build_suite
from repro.llm import protocol
from repro.llm.interface import ChatMessage
from repro.llm.mock import ScriptedLLM
from repro.llm.profiles import CLAUDE_35_SONNET
from repro.llm.synthetic import SyntheticDesignLLM
from repro.sim.values import Logic, logic


@pytest.fixture(scope="module")
def suite():
    return build_suite()


class TestLanguageEnum:
    def test_extensions(self):
        assert Language.VERILOG.file_extension == ".v"
        assert Language.VHDL.file_extension == ".vhd"

    def test_compilers(self):
        assert Language.VERILOG.compiler == "xvlog"
        assert Language.VHDL.compiler == "xvhdl"


class TestLogicHelpers:
    def test_octal_format(self):
        assert Logic.from_int(0o17, 6).format("o") == "17"

    def test_logic_string_helper(self):
        value = logic("10x")
        assert value.width == 3
        assert value.has_x

    def test_logic_width_override(self):
        assert logic("101", 5).width == 5


class TestVerilogLexerExtras:
    def test_escaped_identifier(self):
        from repro.hdl.source import SourceFile
        from repro.verilog.lexer import lex_verilog

        tokens = lex_verilog(SourceFile("t.v", r"\bus$signal other"))
        assert tokens[0].text == "bus$signal"

    def test_fatal_ends_simulation(self):
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.v",
                    'module tb; initial begin $fatal; #1 $display("no"); end'
                    " endmodule",
                    Language.VERILOG,
                )
            ],
            "tb",
        )
        assert result.finished_cleanly
        assert "no" not in result.output_lines

    def test_write_and_strobe_display(self):
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.v",
                    'module tb; initial begin $write("w"); $strobe("s");'
                    " $finish; end endmodule",
                    Language.VERILOG,
                )
            ],
            "tb",
        )
        assert result.output_lines == ["w", "s"]


class TestAgentsBase:
    def test_take_latency_resets(self):
        llm = ScriptedLLM(responses=["x"], latency_seconds=2.5)
        from repro.agents.base import Agent

        agent = Agent("T", llm, Transcript())
        agent.ask_llm("hello")
        assert agent.take_latency() == 2.5
        assert agent.take_latency() == 0.0

    def test_system_prompt_forwarded(self):
        seen = {}

        def on_call(index, messages):
            seen["roles"] = [m.role for m in messages]

        llm = ScriptedLLM(responses=["x"], on_call=on_call)
        from repro.agents.base import Agent

        Agent("T", llm, Transcript()).ask_llm("hi", system="be terse")
        assert seen["roles"] == ["system", "user"]


class TestSyntheticClarify:
    def test_clarify_task_answered(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        prompt = (
            f"{protocol.TASK_CLARIFY}\nTarget language: Verilog\n"
            + protocol.spec_block("adder")
        )
        response = llm.complete([ChatMessage("user", prompt)])
        assert "interface" in response.text or "behaviour" in response.text

    def test_analyze_sim_task(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        prompt = (
            f"{protocol.TASK_ANALYZE_SIM}\nTarget language: Verilog\n"
            + protocol.log_block(
                "run all\nTest Case 4 Failed: q should be 1\nINFO: done"
            )
        )
        response = llm.complete([ChatMessage("user", prompt)])
        assert "Test Case 4 Failed" in response.text

    def test_analyze_empty_log_notes_it(self, suite):
        llm = SyntheticDesignLLM(CLAUDE_35_SONNET, suite)
        prompt = (
            f"{protocol.TASK_ANALYZE_COMPILE}\nTarget language: Verilog\n"
            + protocol.log_block("INFO: everything fine")
        )
        response = llm.complete([ChatMessage("user", prompt)])
        assert "re-check" in response.text


class TestVhdlParserExtras:
    def test_component_declaration_skipped(self):
        from repro.vhdl.parser import parse_vhdl

        design, collector = parse_vhdl(
            "entity m is port (a : in bit); end;\n"
            "architecture rtl of m is\n"
            "    component sub\n"
            "        port (x : in bit);\n"
            "    end component;\n"
            "begin\n"
            "end architecture;"
        )
        assert not collector.has_errors

    def test_component_style_instantiation_binds_entity(self):
        toolchain = Toolchain()
        source = (
            "library ieee;\nuse ieee.std_logic_1164.all;\n"
            "entity inv is port (a : in std_logic; y : out std_logic); end;\n"
            "architecture rtl of inv is begin y <= not a; end architecture;\n"
            "entity tb is end;\n"
            "architecture sim of tb is\n"
            "    signal a : std_logic := '0';\n"
            "    signal y : std_logic;\n"
            "begin\n"
            "    u0: inv port map (a => a, y => y);\n"
            "    stim: process begin\n"
            "        wait for 1 ns;\n"
            "        assert y = '1' report \"inv\" severity error;\n"
            "        report \"done\";\n"
            "        wait;\n"
            "    end process;\n"
            "end architecture;"
        )
        result = toolchain.simulate(
            [HdlFile("t.vhd", source, Language.VHDL)], "tb"
        )
        assert result.ok, result.log
        assert result.output_lines == ["done"]

    def test_selected_assign_pipe_choices(self):
        toolchain = Toolchain()
        source = (
            "library ieee;\nuse ieee.std_logic_1164.all;\n"
            "entity tb is end;\n"
            "architecture sim of tb is\n"
            "    signal s : std_logic_vector(1 downto 0) := \"01\";\n"
            "    signal y : std_logic;\n"
            "begin\n"
            "    with s select y <= '1' when \"00\" | \"01\", '0' when others;\n"
            "    stim: process begin\n"
            "        wait for 1 ns;\n"
            "        assert y = '1' report \"pipe choice\" severity error;\n"
            "        report \"done\";\n"
            "        wait;\n"
            "    end process;\n"
            "end architecture;"
        )
        result = toolchain.simulate(
            [HdlFile("t.vhd", source, Language.VHDL)], "tb"
        )
        assert result.ok, result.log
        assert result.output_lines == ["done"]
