"""Full-suite integrity sweep: all 156 problems, both languages.

Checks the three contracts every experiment relies on (reference passes its
golden testbench; syntax mutations break the compile; functional mutations
compile but fail the testbench). Takes ~1 minute; set
``REPRO_SKIP_FULL_VALIDATION=1`` to skip during quick development loops.
"""

import os

import pytest

from repro.evalsuite.suite import build_suite
from repro.evalsuite.validate import validate_suite

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_FULL_VALIDATION") == "1",
    reason="full suite validation disabled via REPRO_SKIP_FULL_VALIDATION",
)


def test_entire_suite_validates_in_both_languages():
    suite = build_suite()
    failures = validate_suite(suite.problems)
    details = "\n\n".join(
        f"{r.pid} [{r.language.value}]:\n" + "\n".join(r.issues)
        for r in failures
    )
    assert not failures, details
