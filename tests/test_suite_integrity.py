"""Full-suite integrity sweep: all 156 problems, both languages.

Checks the three contracts every experiment relies on (reference passes its
golden testbench; syntax mutations break the compile; functional mutations
compile but fail the testbench). Takes ~1 minute; set
``REPRO_SKIP_FULL_VALIDATION=1`` to skip during quick development loops.

A second, always-on check covers the QA generator the same way: within a
bounded seed range it must emit every grammar op kind and every spec shape,
so a regression that silently stops generating (say) ``sra`` or memory
shapes fails the suite instead of quietly shrinking fuzz coverage.
"""

import os

import pytest

from repro.evalsuite.suite import build_suite
from repro.evalsuite.validate import validate_suite
from repro.qa.grammar import ALL_OP_KINDS
from repro.qa.spec import SPEC_SHAPES, generate_spec, spec_op_kinds, spec_shape

full_validation = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_FULL_VALIDATION") == "1",
    reason="full suite validation disabled via REPRO_SKIP_FULL_VALIDATION",
)

# seed 0 saturates all op kinds and shapes by index 21; the margin keeps the
# check stable under future generator-weight tuning without hiding a real
# coverage collapse.
SATURATION_SEED = 0
SATURATION_PROGRAMS = 64


@full_validation
def test_entire_suite_validates_in_both_languages():
    suite = build_suite()
    failures = validate_suite(suite.problems)
    details = "\n\n".join(
        f"{r.pid} [{r.language.value}]:\n" + "\n".join(r.issues)
        for r in failures
    )
    assert not failures, details


def test_generator_saturates_ops_and_shapes():
    """A bounded campaign exercises the whole grammar and every shape."""
    seen_ops: set[str] = set()
    seen_shapes: set[str] = set()
    for index in range(SATURATION_PROGRAMS):
        spec = generate_spec(SATURATION_SEED, index)
        seen_ops |= spec_op_kinds(spec)
        seen_shapes.add(spec_shape(spec))
    missing_ops = set(ALL_OP_KINDS) - seen_ops
    missing_shapes = set(SPEC_SHAPES) - seen_shapes
    assert not missing_ops, (
        f"{SATURATION_PROGRAMS} programs at seed {SATURATION_SEED} never "
        f"emitted op kind(s): {sorted(missing_ops)}"
    )
    assert not missing_shapes, (
        f"{SATURATION_PROGRAMS} programs at seed {SATURATION_SEED} never "
        f"emitted spec shape(s): {sorted(missing_shapes)}"
    )
    # and nothing escapes the closed vocabulary in the other direction
    assert seen_ops <= set(ALL_OP_KINDS)
    assert seen_shapes <= set(SPEC_SHAPES)
