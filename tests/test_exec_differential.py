"""Differential test: parallel execution changes nothing but the wall-clock.

A reduced but representative slice of the paper's protocol (20 problems ×
both languages × two model profiles) runs through ``workers=1`` and
``workers=4``. The merged ``ConfigResult.records`` must be identical
field-by-field — pids, pass booleans, iteration counts, modeled latencies —
and every aggregate percentage must match *exactly* (``==``, not approx):
the parallel engine merges by problem order and every task is a pure
function of the deterministic defect plan.

``wall_seconds`` is the one deliberate exception: it reports true elapsed
time, which no scheduler can (or should) reproduce.
"""

import pytest

from repro.eda.toolchain import Language
from repro.eval.runner import ConfigResult, ExperimentRunner
from repro.evalsuite.suite import build_suite
from repro.llm.profiles import CLAUDE_35_SONNET, GPT_4O

PROBLEM_COUNT = 20
PROFILES_UNDER_TEST = [GPT_4O, CLAUDE_35_SONNET]
LANGUAGES = (Language.VERILOG, Language.VHDL)


def deterministic_fields(record):
    """Everything in a ProblemRecord except the true wall-clock."""
    latency = record.aivril_latency
    return (
        record.pid,
        record.baseline_syntax_ok,
        record.baseline_functional_ok,
        record.baseline_latency,
        record.aivril_syntax_ok,
        record.aivril_functional_ok,
        record.syntax_iterations,
        record.functional_iterations,
        (
            latency.generation_llm,
            latency.syntax_llm,
            latency.syntax_tool,
            latency.functional_llm,
            latency.functional_tool,
        ),
        record.error,
    )


def run_sweep(**kwargs) -> list[ConfigResult]:
    runner = ExperimentRunner(
        suite=build_suite().head(PROBLEM_COUNT), **kwargs
    )
    return runner.run_all(
        profiles=PROFILES_UNDER_TEST, languages=LANGUAGES
    )


@pytest.fixture(scope="module")
def serial_results():
    return run_sweep(workers=1)


@pytest.fixture(scope="module")
def parallel_results():
    return run_sweep(workers=4)


class TestParallelEqualsSerial:
    def test_sweep_shape(self, serial_results, parallel_results):
        assert len(serial_results) == len(PROFILES_UNDER_TEST) * len(LANGUAGES)
        assert len(parallel_results) == len(serial_results)
        for result in parallel_results:
            assert result.total == PROBLEM_COUNT
            assert result.error_count == 0

    def test_config_identity(self, serial_results, parallel_results):
        for serial, parallel in zip(serial_results, parallel_results):
            assert serial.model == parallel.model
            assert serial.model_display == parallel.model_display
            assert serial.language is parallel.language

    def test_records_identical_field_by_field(
        self, serial_results, parallel_results
    ):
        for serial, parallel in zip(serial_results, parallel_results):
            serial_fields = [deterministic_fields(r) for r in serial.records]
            parallel_fields = [
                deterministic_fields(r) for r in parallel.records
            ]
            assert serial_fields == parallel_fields, (
                f"{serial.model}/{serial.language.value}: parallel records "
                f"diverged from serial"
            )

    def test_pids_in_suite_order(self, parallel_results):
        expected = [p.pid for p in build_suite().head(PROBLEM_COUNT)]
        for result in parallel_results:
            assert [r.pid for r in result.records] == expected

    def test_percentages_match_exactly(
        self, serial_results, parallel_results
    ):
        for serial, parallel in zip(serial_results, parallel_results):
            assert serial.baseline_syntax_pct == parallel.baseline_syntax_pct
            assert (
                serial.baseline_functional_pct
                == parallel.baseline_functional_pct
            )
            assert serial.aivril_syntax_pct == parallel.aivril_syntax_pct
            assert (
                serial.aivril_functional_pct
                == parallel.aivril_functional_pct
            )
            assert (
                serial.delta_functional_pct == parallel.delta_functional_pct
            )
            assert (
                serial.mean_syntax_iterations
                == parallel.mean_syntax_iterations
            )
            assert (
                serial.mean_functional_iterations
                == parallel.mean_functional_iterations
            )

    def test_latency_averages_match_exactly(
        self, serial_results, parallel_results
    ):
        for serial, parallel in zip(serial_results, parallel_results):
            assert (
                serial.baseline_latency_avg == parallel.baseline_latency_avg
            )
            serial_avg = serial.aivril_latency_avg
            parallel_avg = parallel.aivril_latency_avg
            assert serial_avg.generation_llm == parallel_avg.generation_llm
            assert serial_avg.syntax_loop == parallel_avg.syntax_loop
            assert serial_avg.functional_loop == parallel_avg.functional_loop


class TestCacheNeutrality:
    """The toolchain cache must change wall-clock only, never records."""

    def test_uncached_serial_equals_cached_serial(self, serial_results):
        uncached = run_sweep(workers=1, use_cache=False)
        for cached_result, uncached_result in zip(serial_results, uncached):
            assert (
                [deterministic_fields(r) for r in cached_result.records]
                == [deterministic_fields(r) for r in uncached_result.records]
            )


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_other_worker_counts(self, workers, serial_results):
        results = ExperimentRunner(
            suite=build_suite().head(8), workers=workers
        ).run_all(profiles=[GPT_4O], languages=LANGUAGES)
        reference = ExperimentRunner(
            suite=build_suite().head(8)
        ).run_all(profiles=[GPT_4O], languages=LANGUAGES)
        for got, want in zip(results, reference):
            assert (
                [deterministic_fields(r) for r in got.records]
                == [deterministic_fields(r) for r in want.records]
            )
