"""Cache-correctness tests: memoized toolchain results equal cold results.

The corpus is generated from real suite problems with the suite's own
mutation catalogs (``repro.designs.mutations``), so it covers clean
sources, syntax-broken sources, and functionally-wrong-but-compiling
sources in both languages.
"""

import pytest
from hypothesis import given, strategies as st

from repro.designs.mutations import MutationError, apply_mutation
from repro.eda.toolchain import (
    CacheStats,
    HdlFile,
    Language,
    Toolchain,
    ToolchainCache,
)
from repro.evalsuite.suite import build_suite

CORPUS_PROBLEMS = 6


def compile_fields(result):
    return (
        result.ok,
        result.log,
        [str(d) for d in result.diagnostics],
        result.error_count,
        result.tool_seconds,
    )


def sim_fields(result):
    return (
        result.ok,
        result.log,
        result.output_lines,
        result.end_time,
        result.finished_cleanly,
        result.runtime_error,
        result.tool_seconds,
        None if result.compile_result is None
        else compile_fields(result.compile_result),
    )


def mutated_corpus(language):
    """(files, top) pairs: clean references plus every catalogued defect."""
    suite = build_suite().head(CORPUS_PROBLEMS)
    ext = language.file_extension
    for problem in suite:
        reference = problem.reference[language]
        testbench = problem.golden_tb[language]
        sources = [reference]
        for mutation in (
            problem.syntax_mutations[language]
            + problem.functional_mutations[language]
        ):
            try:
                sources.append(apply_mutation(reference, mutation))
            except MutationError:  # pragma: no cover - catalog is validated
                continue
        for source in sources:
            files = [
                HdlFile(f"top_module{ext}", source, language),
                HdlFile(f"tb{ext}", testbench, language),
            ]
            yield files, "tb"


class TestCachedEqualsUncached:
    @pytest.mark.parametrize("language", list(Language))
    def test_compile_corpus(self, language):
        plain = Toolchain()
        cached = Toolchain(cache=True)
        for files, top in mutated_corpus(language):
            cold = plain.compile(files, top)
            first = cached.compile(files, top)  # populates
            warm = cached.compile(files, top)  # serves from cache
            assert compile_fields(first) == compile_fields(cold)
            assert compile_fields(warm) == compile_fields(cold)
        assert cached.cache_stats.hits > 0

    @pytest.mark.parametrize("language", list(Language))
    def test_simulate_corpus(self, language):
        plain = Toolchain()
        cached = Toolchain(cache=True)
        for files, top in mutated_corpus(language):
            cold = plain.simulate(files, top)
            first = cached.simulate(files, top)
            warm = cached.simulate(files, top)
            assert sim_fields(first) == sim_fields(cold)
            assert sim_fields(warm) == sim_fields(cold)
        assert cached.cache_stats.hits > 0

    def test_cached_result_is_isolated_from_caller_mutation(self):
        toolchain = Toolchain(cache=True)
        files = [HdlFile(
            "top_module.v",
            "module top_module(input a, output y); assign y = a; endmodule",
            Language.VERILOG,
        )]
        first = toolchain.compile(files, "top_module")
        first.diagnostics.append("poison")
        first.ok = False
        second = toolchain.compile(files, "top_module")
        assert second.ok
        assert second.diagnostics == []


AND_GATE = (
    "module top_module(input a, input b, output y);"
    " assign y = a & b; endmodule"
)
OR_GATE = (
    "module top_module(input a, input b, output y);"
    " assign y = a | b; endmodule"
)
TB = """
module tb;
    reg a, b; wire y;
    top_module dut(.a(a), .b(b), .y(y));
    initial begin
        a = 1; b = 0; #1;
        if (y === 1'b0) $display("All tests passed successfully!");
        else $display("Test Case 1 Failed");
        $finish;
    end
endmodule
"""


class TestNoCollisions:
    def test_same_log_different_sources_do_not_collide(self):
        """AND and OR compile to byte-identical (clean) logs; a cache keyed
        on rendered output would collapse them. Keys come from source
        content, so simulation still tells them apart warm."""
        toolchain = Toolchain(cache=True)
        and_files = [HdlFile("top_module.v", AND_GATE, Language.VERILOG)]
        or_files = [HdlFile("top_module.v", OR_GATE, Language.VERILOG)]
        assert (
            toolchain.compile(and_files, "top_module").log
            == toolchain.compile(or_files, "top_module").log
        )
        sim_and = toolchain.simulate(
            and_files + [HdlFile("tb.v", TB, Language.VERILOG)], "tb"
        )
        sim_or = toolchain.simulate(
            or_files + [HdlFile("tb.v", TB, Language.VERILOG)], "tb"
        )
        # warm replay must preserve the distinction
        sim_and_warm = toolchain.simulate(
            and_files + [HdlFile("tb.v", TB, Language.VERILOG)], "tb"
        )
        sim_or_warm = toolchain.simulate(
            or_files + [HdlFile("tb.v", TB, Language.VERILOG)], "tb"
        )
        assert any("All tests passed" in l for l in sim_and_warm.output_lines)
        assert any("Failed" in l for l in sim_or_warm.output_lines)
        assert sim_fields(sim_and_warm) == sim_fields(sim_and)
        assert sim_fields(sim_or_warm) == sim_fields(sim_or)

    def test_key_distinguishes_every_input_component(self):
        files = [HdlFile("a.v", "module a; endmodule", Language.VERILOG)]
        base = ToolchainCache.key("compile", files, "a")
        assert ToolchainCache.key("simulate", files, "a") != base
        assert ToolchainCache.key("compile", files, "b") != base
        renamed = [HdlFile("b.v", "module a; endmodule", Language.VERILOG)]
        assert ToolchainCache.key("compile", renamed, "a") != base
        retyped = [HdlFile("a.v", "module a; endmodule", Language.VHDL)]
        assert ToolchainCache.key("compile", retyped, "a") != base
        assert ToolchainCache.key("compile", files, "a", extra=(1,)) != base
        # boundary shifts between fields must not alias
        shifted = [HdlFile("a.vm", "odule a; endmodule", Language.VERILOG)]
        assert ToolchainCache.key("compile", shifted, "a") != base


_KEY_TEXT = st.text(
    alphabet="module tb;endcafe\n ()01", min_size=0, max_size=40
)


@st.composite
def _key_inputs(draw):
    """One full cache-key input: kind, files (name/text/language), top."""
    kind = draw(st.sampled_from(["compile", "simulate"]))
    top = draw(st.sampled_from(["top_module", "tb", "t", ""]))
    count = draw(st.integers(1, 3))
    files = []
    for index in range(count):
        name = draw(st.sampled_from([f"f{index}.v", f"f{index}.vhd", "m.v"]))
        language = draw(st.sampled_from(list(Language)))
        files.append(HdlFile(name, draw(_KEY_TEXT), language))
    return kind, tuple(files), top


class TestKeyInjectivity:
    """Property: the cache key is injective over everything it must encode.

    Two inputs get the same key if and only if they are identical in kind,
    top, and the exact sequence of (name, text, language) files — permuting
    file order, switching a language, or renaming the top all produce
    distinct keys even when every byte of source text is the same.
    """

    @staticmethod
    def _descriptor(kind, files, top):
        return (
            kind,
            tuple((f.name, f.text, f.language) for f in files),
            top,
        )

    @given(_key_inputs(), _key_inputs())
    def test_equal_keys_iff_equal_inputs(self, one, other):
        key_one = ToolchainCache.key(one[0], list(one[1]), one[2])
        key_other = ToolchainCache.key(other[0], list(other[1]), other[2])
        same = self._descriptor(*one) == self._descriptor(*other)
        assert (key_one == key_other) == same

    @given(_key_inputs())
    def test_structured_variants_never_collide(self, base):
        kind, files, top = base
        keys = {self._descriptor(kind, files, top):
                ToolchainCache.key(kind, list(files), top)}

        def probe(v_kind, v_files, v_top):
            descriptor = self._descriptor(v_kind, v_files, v_top)
            key = ToolchainCache.key(v_kind, list(v_files), v_top)
            if descriptor in keys:
                assert keys[descriptor] == key
            else:
                assert key not in keys.values()
                keys[descriptor] = key

        probe("simulate" if kind == "compile" else "compile", files, top)
        probe(kind, files, top + "_x")
        probe(kind, tuple(reversed(files)), top)
        for index, hdl in enumerate(files):
            flipped = (
                Language.VHDL
                if hdl.language is Language.VERILOG
                else Language.VERILOG
            )
            variant = (
                files[:index]
                + (HdlFile(hdl.name, hdl.text, flipped),)
                + files[index + 1:]
            )
            probe(kind, variant, top)
            renamed = (
                files[:index]
                + (HdlFile(hdl.name + "_r", hdl.text, hdl.language),)
                + files[index + 1:]
            )
            probe(kind, renamed, top)


class TestLruBound:
    def test_eviction_at_capacity(self):
        cache = ToolchainCache(maxsize=2)
        toolchain = Toolchain(cache=cache)
        sources = {
            name: f"module {name}(input a, output y);"
                  f" assign y = a; endmodule"
            for name in ("m0", "m1", "m2")
        }

        def compile_one(name):
            return toolchain.compile(
                [HdlFile(f"{name}.v", sources[name], Language.VERILOG)], name
            )

        for name in ("m0", "m1", "m2"):
            compile_one(name)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # m0 was evicted: compiling it again is a miss, m2 is still warm
        misses_before = cache.stats.misses
        hits_before = cache.stats.hits
        compile_one("m0")
        assert cache.stats.misses == misses_before + 1
        compile_one("m2")
        assert cache.stats.hits == hits_before + 1

    def test_lru_recency_order(self):
        cache = ToolchainCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least-recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            ToolchainCache(maxsize=0)


class TestStatsAndToggles:
    def test_stats_delta_and_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert stats.lookups == 4
        delta = stats.delta(CacheStats(hits=1, misses=1))
        assert (delta.hits, delta.misses) == (2, 0)
        assert CacheStats().hit_rate == 0.0

    def test_cache_disabled_by_default(self):
        toolchain = Toolchain()
        assert toolchain.cache is None
        assert toolchain.cache_stats.lookups == 0

    def test_cache_false_means_disabled(self):
        assert Toolchain(cache=False).cache is None

    def test_clear(self):
        cache = ToolchainCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
