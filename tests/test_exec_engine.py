"""Unit and fault-injection tests for the ``repro.exec`` engine.

Task functions live at module top level so the parallel path can pickle
them by reference into worker processes.
"""

import os
import time

import pytest

from repro.exec import (
    ENGINE_FINISH,
    ENGINE_START,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    TASK_DONE,
    TASK_ERROR,
    TASK_RETRY,
    ExecutionEngine,
    ProgressEvent,
    SweepMetrics,
    Task,
    format_progress_line,
)

_INIT_STATE = {"ready": False}


def _double(x):
    return x * 2


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _raise_value_error(x):
    raise ValueError(f"injected failure for {x}")


def _hang_forever(_):
    time.sleep(300)


def _exit_hard(_):
    os._exit(13)


def _crash_once_then_succeed(marker_path):
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("attempt 1")
        os._exit(11)
    return "recovered"


def _needs_init(x):
    if not _INIT_STATE["ready"]:
        raise RuntimeError("initializer did not run")
    return x


def _set_ready():
    _INIT_STATE["ready"] = True


def _broken_initializer():
    raise RuntimeError("cannot initialize")


def make_tasks(fn, values):
    return [Task(index=i, key=f"t{i}", fn=fn, args=(v,))
            for i, v in enumerate(values)]


class TestSerialPath:
    def test_results_in_order(self):
        engine = ExecutionEngine(workers=1)
        outcomes = engine.run(make_tasks(_double, range(6)))
        assert [o.value for o in outcomes] == [0, 2, 4, 6, 8, 10]
        assert all(o.status == STATUS_OK for o in outcomes)

    def test_exception_degrades_to_error_outcome(self):
        engine = ExecutionEngine(workers=1)
        tasks = [
            Task(0, "good", _double, (1,)),
            Task(1, "bad", _raise_value_error, (7,)),
            Task(2, "alsogood", _double, (2,)),
        ]
        outcomes = engine.run(tasks)
        assert [o.status for o in outcomes] == [
            STATUS_OK, STATUS_ERROR, STATUS_OK
        ]
        assert "injected failure for 7" in outcomes[1].error

    def test_initializer_runs_in_process(self):
        _INIT_STATE["ready"] = False
        engine = ExecutionEngine(workers=1, initializer=_set_ready)
        outcomes = engine.run(make_tasks(_needs_init, [5]))
        assert outcomes[0].value == 5

    def test_empty_task_list(self):
        assert ExecutionEngine(workers=1).run([]) == []
        assert ExecutionEngine(workers=3).run([]) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExecutionEngine(workers=0)
        with pytest.raises(ValueError):
            ExecutionEngine(retries=-1)
        with pytest.raises(ValueError):
            ExecutionEngine(timeout=0)
        with pytest.raises(ValueError):
            ExecutionEngine().run([Task(0, "a", _double, (1,)),
                                   Task(0, "b", _double, (2,))])


class TestParallelPath:
    def test_merge_order_is_task_order_not_completion_order(self):
        # earlier tasks sleep longer, so completion order is reversed
        delays = [0.4, 0.3, 0.2, 0.1, 0.0]
        tasks = [
            Task(index=i, key=f"t{i}", fn=_sleep_then_return, args=(d, i))
            for i, d in enumerate(delays)
        ]
        outcomes = ExecutionEngine(workers=4).run(tasks)
        assert [o.value for o in outcomes] == [0, 1, 2, 3, 4]

    def test_initializer_runs_in_every_worker(self):
        _INIT_STATE["ready"] = False  # parent state must not leak in
        engine = ExecutionEngine(workers=2, initializer=_set_ready)
        outcomes = engine.run(make_tasks(_needs_init, range(4)))
        assert [o.value for o in outcomes] == [0, 1, 2, 3]

    def test_exception_in_worker_keeps_sweep_alive(self):
        tasks = make_tasks(_double, range(5))
        tasks[2] = Task(index=2, key="t2", fn=_raise_value_error, args=(2,))
        outcomes = ExecutionEngine(workers=3).run(tasks)
        assert [o.status for o in outcomes] == [
            STATUS_OK, STATUS_OK, STATUS_ERROR, STATUS_OK, STATUS_OK
        ]
        assert outcomes[2].error


class TestFaultInjection:
    def test_hung_task_times_out_and_survives(self):
        events = []
        engine = ExecutionEngine(
            workers=2, timeout=0.5, retries=1, progress=events.append
        )
        tasks = [
            Task(0, "hung", _hang_forever, (None,)),
            Task(1, "quick", _double, (21,)),
        ]
        started = time.perf_counter()
        outcomes = engine.run(tasks)
        elapsed = time.perf_counter() - started
        assert elapsed < 30, "a hung worker must never stall the sweep"
        assert outcomes[0].status == STATUS_TIMEOUT
        assert outcomes[0].attempts == 2  # original + one retry
        assert outcomes[1].status == STATUS_OK
        warnings = [e for e in events if e.level == "warning"]
        assert any(e.kind == TASK_RETRY for e in warnings)
        assert any(e.kind == TASK_ERROR and e.key == "hung"
                   for e in warnings)

    def test_crashed_worker_yields_error_outcome_not_lost_task(self):
        events = []
        engine = ExecutionEngine(workers=2, retries=1,
                                 progress=events.append)
        tasks = [
            Task(0, "boom", _exit_hard, (None,)),
            Task(1, "ok1", _double, (1,)),
            Task(2, "ok2", _double, (2,)),
        ]
        outcomes = engine.run(tasks)
        assert len(outcomes) == 3, "every task gets exactly one outcome"
        assert outcomes[0].status == STATUS_CRASHED
        assert "exit code" in outcomes[0].error
        assert [o.value for o in outcomes[1:]] == [2, 4]
        assert any(e.kind == TASK_RETRY and e.level == "warning"
                   for e in events)

    def test_crash_retry_can_recover(self, tmp_path):
        marker = str(tmp_path / "attempted")
        engine = ExecutionEngine(workers=2, retries=2)
        outcomes = engine.run(
            [Task(0, "flaky", _crash_once_then_succeed, (marker,))]
        )
        assert outcomes[0].status == STATUS_OK
        assert outcomes[0].value == "recovered"
        assert outcomes[0].attempts == 2

    def test_zero_retries_fails_fast(self):
        engine = ExecutionEngine(workers=2, retries=0, timeout=0.5)
        outcomes = engine.run([
            Task(0, "hung", _hang_forever, (None,)),
            Task(1, "fine", _double, (3,)),
        ])
        assert outcomes[0].status == STATUS_TIMEOUT
        assert outcomes[0].attempts == 1
        assert outcomes[1].value == 6

    def test_broken_initializer_degrades_to_error_outcomes(self):
        engine = ExecutionEngine(
            workers=2, retries=0, initializer=_broken_initializer
        )
        outcomes = engine.run(make_tasks(_double, range(3)))
        assert len(outcomes) == 3
        assert all(not o.ok for o in outcomes)


class TestProgressStream:
    def test_event_sequence_and_counts(self):
        events = []
        engine = ExecutionEngine(workers=1, progress=events.append)
        engine.run(make_tasks(_double, range(3)))
        kinds = [e.kind for e in events]
        assert kinds[0] == ENGINE_START
        assert kinds[-1] == ENGINE_FINISH
        done = [e for e in events if e.kind == TASK_DONE]
        assert [e.done for e in done] == [1, 2, 3]
        assert all(e.total == 3 for e in done)

    def test_metrics_aggregation(self):
        events = []
        metrics = SweepMetrics(total=2)
        engine = ExecutionEngine(workers=1, progress=events.append)
        engine.run([
            Task(0, "good", _double, (1,)),
            Task(1, "bad", _raise_value_error, (0,)),
        ])
        for event in events:
            metrics.observe_event(event)
        assert metrics.done == 2
        assert metrics.ok == 1
        assert metrics.errors == 1
        assert "1 error(s)" in metrics.summary()

    def test_format_progress_line(self):
        metrics = SweepMetrics(total=4, done=2, cache_hits=3, cache_misses=1)
        event = ProgressEvent(
            kind=TASK_DONE, done=2, total=4, key="gpt-4o/verilog/counter8",
            attempts=2, seconds=0.25,
        )
        line = format_progress_line(event, metrics)
        assert "[2/4]" in line
        assert "gpt-4o/verilog/counter8" in line
        assert "attempt 2" in line
        assert "cache 75%" in line
