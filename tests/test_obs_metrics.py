"""Tests for the metrics registry: counters, gauges, histogram math."""

import pytest

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_record(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.to_record() == {
            "kind": "counter", "name": "c", "value": 2
        }


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5
        assert gauge.to_record()["kind"] == "gauge"


class TestHistogram:
    def test_bucket_assignment_upper_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0):
            h.observe(value)
        # <=1: 0.5, 1.0 | <=2: 1.5, 2.0 | <=4: 3.0, 4.0 | overflow: 9.0
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.total == pytest.approx(21.0)
        assert h.min == 0.5
        assert h.max == 9.0

    def test_mean(self):
        h = Histogram("h", buckets=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_empty_histogram_is_degenerate_zero(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        record = h.to_record()
        assert record["count"] == 0
        assert record["min"] == 0.0 and record["max"] == 0.0

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(0.0, 10.0))
        for _ in range(10):
            h.observe(5.0)
        # all mass in the (0, 10] bucket: median interpolates to its middle
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert 0.0 < h.quantile(0.1) < h.quantile(0.9) <= 10.0

    def test_quantile_overflow_bucket_bounded_by_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert 1.0 <= h.quantile(0.99) <= 50.0

    def test_quantile_clamps_q(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        assert h.quantile(-1.0) <= h.quantile(2.0)

    def test_counts_invariant(self):
        h = Histogram("h", buckets=DEFAULT_SECONDS_BUCKETS)
        assert len(h.counts) == len(DEFAULT_SECONDS_BUCKETS) + 1

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_record_is_mergeable_shape(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        record = h.to_record()
        assert record["buckets"] == [1.0, 2.0]
        assert record["counts"] == [0, 1, 0]
        assert record["sum"] == 1.5


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 2

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_get_without_create(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        registry.counter("c")
        assert registry.get("c").value == 0

    def test_records_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.gauge("aa")
        registry.histogram("mm", buckets=DEFAULT_COUNT_BUCKETS)
        names = [record["name"] for record in registry.to_records()]
        assert names == ["aa", "mm", "zz"]


class TestNullRegistry:
    def test_every_lookup_is_the_null_metric(self):
        assert NULL_REGISTRY.counter("a") is NULL_METRIC
        assert NULL_REGISTRY.gauge("b") is NULL_METRIC
        assert NULL_REGISTRY.histogram("c") is NULL_METRIC
        assert NULL_REGISTRY.get("a") is None
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.to_records() == []

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc()
        NULL_METRIC.inc(10)
        NULL_METRIC.set(5.0)
        NULL_METRIC.observe(1.0)
        assert NULL_METRIC.value == 0
        assert NULL_METRIC.count == 0
        assert NULL_METRIC.quantile(0.5) == 0.0


class TestThreadSafety:
    """Concurrent updates must never lose writes or tear records."""

    THREADS = 8
    OPS = 2_000

    def _hammer(self, work):
        import threading

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_exact(self):
        counter = Counter("c")
        self._hammer(lambda t: [counter.inc() for _ in range(self.OPS)])
        assert counter.value == self.THREADS * self.OPS

    def test_float_counter_increments_are_exact(self):
        counter = Counter("c")
        self._hammer(
            lambda t: [counter.inc(0.5) for _ in range(self.OPS)]
        )
        assert counter.value == pytest.approx(self.THREADS * self.OPS / 2)

    def test_gauge_keeps_one_written_value(self):
        gauge = Gauge("g")
        self._hammer(lambda t: [gauge.set(t) for _ in range(self.OPS)])
        assert gauge.value in range(self.THREADS)

    def test_histogram_observations_are_exact_and_consistent(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        self._hammer(
            lambda t: [
                histogram.observe(t % 5) for _ in range(self.OPS)
            ]
        )
        total = self.THREADS * self.OPS
        assert histogram.count == total
        assert sum(histogram.counts) == total
        expected_sum = sum(
            (t % 5) * self.OPS for t in range(self.THREADS)
        )
        assert histogram.total == pytest.approx(expected_sum)
        assert histogram.min == 0.0
        assert histogram.max == 4.0

    def test_to_record_is_internally_consistent_under_writes(self):
        import threading

        histogram = Histogram("h", buckets=(1.0, 2.0))
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                histogram.observe((value % 3) * 1.0)
                value += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                record = histogram.to_record()
                assert sum(record["counts"]) == record["count"]
        finally:
            stop.set()
            thread.join()
