"""Tests for the suite's HDL skeleton emitters (and that they compile)."""

import pytest

from repro.designs.model import DesignSpec, PortSpec
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.evalsuite.hdl_helpers import (
    v_clocked_always,
    v_module,
    vh_clocked_process,
    vh_entity,
    vh_type,
)


def comb_spec():
    return DesignSpec(
        name="t",
        ports=(PortSpec("a", 4, "in"), PortSpec("y", 4, "out")),
    )


def seq_spec():
    return DesignSpec(
        name="t",
        ports=(PortSpec("d", 4, "in"), PortSpec("q", 4, "out")),
        clocked=True,
    )


def compiles(text: str, language: Language) -> bool:
    toolchain = Toolchain()
    ext = language.file_extension
    return toolchain.compile(
        [HdlFile(f"m{ext}", text, language)], "top_module"
    ).ok


class TestVerilogSkeletons:
    def test_comb_module_compiles(self):
        text = v_module(comb_spec(), "    assign y = ~a;")
        assert "module top_module" in text
        assert compiles(text, Language.VERILOG)

    def test_clocked_module_with_reset(self):
        body = v_clocked_always("q <= d;", reset_body="q <= 4'd0;")
        text = v_module(seq_spec(), body, reg_outputs={"q"})
        assert "input clk" in text
        assert "input rst" in text
        assert "if (rst)" in text
        assert compiles(text, Language.VERILOG)

    def test_reg_outputs_marked(self):
        text = v_module(seq_spec(), "", reg_outputs={"q"})
        assert "output reg [3:0] q" in text

    def test_clocked_always_without_reset(self):
        body = v_clocked_always("q <= d;", has_reset=False)
        assert "if (rst)" not in body


class TestVhdlSkeletons:
    def test_entity_compiles(self):
        text = vh_entity(comb_spec(), "", "    y <= not a;")
        assert "entity top_module is" in text
        assert compiles(text, Language.VHDL)

    def test_clocked_process_with_reset(self):
        body = vh_clocked_process(
            "q <= d;", reset_body="q <= (others => '0');"
        )
        text = vh_entity(seq_spec(), "", body)
        assert "rising_edge(clk)" in text
        assert "if rst = '1'" in text
        assert compiles(text, Language.VHDL)

    def test_declarations_block(self):
        text = vh_entity(
            comb_spec(),
            "    signal t : std_logic_vector(3 downto 0);",
            "    t <= a;\n    y <= t;",
        )
        assert "signal t" in text
        assert compiles(text, Language.VHDL)

    def test_vh_type_scalar_and_vector(self):
        assert vh_type(1) == "std_logic"
        assert vh_type(8) == "std_logic_vector(7 downto 0)"
