"""Reducer acceptance: big failing cases shrink to minimal reproducers."""

import pytest

from repro.designs.mutations import functional
from repro.eda.toolchain import Language, Toolchain
from repro.qa.oracle import CaseMutation, FailureClass, QaCase, run_oracle
from repro.qa.reduce import reduce_case
from repro.qa.render import node_name
from repro.qa.spec import MIN_WIDTH, QaSpec

# the defect lives on this subtree, buried inside a larger design
DEEP_ADD = ["add", ["var", "a0"], ["var", "a1"]]
A0, A1 = node_name(["var", "a0"]), node_name(["var", "a1"])
ADD = node_name(DEEP_ADD)


def big_failing_case():
    """Clocked, 5 ports, wide, with the defect deep inside output y0."""
    spec = QaSpec(
        name="qa_big", width=6, inputs=("a0", "a1", "a2"), clocked=True,
        outputs=(
            ("y0", ["mux", "lt", ["var", "a2"], ["const", 3],
                    ["not", DEEP_ADD],
                    ["xor", ["var", "a0"], ["var", "a2"]]]),
            ("y1", ["sub", ["and", ["var", "a1"], ["var", "a2"]],
                    ["const", 1]]),
        ),
    )
    mutation = CaseMutation(Language.VERILOG, functional(
        "deep add becomes sub",
        f"assign {ADD} = {A0} + {A1};",
        f"assign {ADD} = {A0} - {A1};",
    ))
    return QaCase(spec=spec, mutations=(mutation,))


class TestReduction:
    def test_shrinks_to_minimal_reproducer(self):
        case = big_failing_case()
        result = reduce_case(case, max_checks=200)

        assert result.failure_class is FailureClass.VERILOG_MISMATCH
        reduced = result.reduced
        # acceptance floor: at most 3 ports and 5 expression nodes
        assert reduced.spec.port_count <= 3
        assert reduced.spec.node_count <= 5
        assert reduced.spec.width == MIN_WIDTH
        assert not reduced.spec.clocked
        assert reduced.expected_class is FailureClass.VERILOG_MISMATCH
        assert result.accepted_steps > 0
        assert result.oracle_runs <= 200
        # the reproducer still demonstrates the identical failure class
        verdict = run_oracle(reduced, Toolchain(cache=True))
        assert verdict.failure_class is FailureClass.VERILOG_MISMATCH
        # the injected defect survived every accepted shrink
        assert reduced.mutations == case.mutations
        # and the summary reports the before/after sizes
        assert "ports 5->" in result.summary
        assert "verilog-mismatch" in result.summary

    def test_ok_case_is_rejected(self):
        spec = QaSpec(
            name="qa_fine", width=4, inputs=("a0", "a1"),
            outputs=(("y0", DEEP_ADD),),
        )
        with pytest.raises(ValueError, match="nothing to reduce"):
            reduce_case(QaCase(spec=spec))

    def test_respects_the_oracle_budget(self):
        result = reduce_case(big_failing_case(), max_checks=5)
        assert result.oracle_runs <= 5
        # partial progress is still a valid case of the same class
        assert result.failure_class is FailureClass.VERILOG_MISMATCH
