"""Reducer acceptance: big failing cases shrink to minimal reproducers."""

import random

import pytest

from repro.designs.mutations import functional
from repro.eda.toolchain import Language, Toolchain
from repro.qa.grammar import (
    complexity,
    count_nodes,
    pruned,
    random_expr,
    validate_expr,
)
from repro.qa.oracle import CaseMutation, FailureClass, QaCase, run_oracle
from repro.qa.reduce import reduce_case
from repro.qa.render import node_name
from repro.qa.spec import MIN_WIDTH, QaSpec

# the defect lives on this subtree, buried inside a larger design
DEEP_ADD = ["add", ["var", "a0"], ["var", "a1"]]
A0, A1 = node_name(["var", "a0"]), node_name(["var", "a1"])
ADD = node_name(DEEP_ADD)


def big_failing_case():
    """Clocked, 5 ports, wide, with the defect deep inside output y0."""
    spec = QaSpec(
        name="qa_big", width=6, inputs=("a0", "a1", "a2"), clocked=True,
        outputs=(
            ("y0", ["mux", "lt", ["var", "a2"], ["const", 3],
                    ["not", DEEP_ADD],
                    ["xor", ["var", "a0"], ["var", "a2"]]]),
            ("y1", ["sub", ["and", ["var", "a1"], ["var", "a2"]],
                    ["const", 1]]),
        ),
    )
    mutation = CaseMutation(Language.VERILOG, functional(
        "deep add becomes sub",
        f"assign {ADD} = {A0} + {A1};",
        f"assign {ADD} = {A0} - {A1};",
    ))
    return QaCase(spec=spec, mutations=(mutation,))


class TestReduction:
    def test_shrinks_to_minimal_reproducer(self):
        case = big_failing_case()
        result = reduce_case(case, max_checks=200)

        assert result.failure_class is FailureClass.VERILOG_MISMATCH
        reduced = result.reduced
        # acceptance floor: at most 3 ports and 5 expression nodes
        assert reduced.spec.port_count <= 3
        assert reduced.spec.node_count <= 5
        assert reduced.spec.width == MIN_WIDTH
        assert not reduced.spec.clocked
        assert reduced.expected_class is FailureClass.VERILOG_MISMATCH
        assert result.accepted_steps > 0
        assert result.oracle_runs <= 200
        # the reproducer still demonstrates the identical failure class
        verdict = run_oracle(reduced, Toolchain(cache=True))
        assert verdict.failure_class is FailureClass.VERILOG_MISMATCH
        # the injected defect survived every accepted shrink
        assert reduced.mutations == case.mutations
        # and the summary reports the before/after sizes
        assert "ports 5->" in result.summary
        assert "verilog-mismatch" in result.summary

    def test_ok_case_is_rejected(self):
        spec = QaSpec(
            name="qa_fine", width=4, inputs=("a0", "a1"),
            outputs=(("y0", DEEP_ADD),),
        )
        with pytest.raises(ValueError, match="nothing to reduce"):
            reduce_case(QaCase(spec=spec))

    def test_respects_the_oracle_budget(self):
        result = reduce_case(big_failing_case(), max_checks=5)
        assert result.oracle_runs <= 5
        # partial progress is still a valid case of the same class
        assert result.failure_class is FailureClass.VERILOG_MISMATCH


class TestWidenedOpShrinking:
    """Every widened op has a shrink step, and shrinking terminates."""

    NAMES = ["a0", "a1"]
    LEAF_A = ["var", "a0"]
    LEAF_B = ["var", "a1"]

    def test_each_new_op_rewrites_toward_the_legacy_core(self):
        cases = [
            (["sra", self.LEAF_A, self.LEAF_B],
             ["shr", self.LEAF_A, self.LEAF_B]),
            (["shl", self.LEAF_A, self.LEAF_B],
             ["or", self.LEAF_A, self.LEAF_B]),
            (["shr", self.LEAF_A, self.LEAF_B],
             ["and", self.LEAF_A, self.LEAF_B]),
            (["cat", self.LEAF_A, self.LEAF_B],
             ["xor", self.LEAF_A, self.LEAF_B]),
            (["redand", self.LEAF_A], ["not", self.LEAF_A]),
            (["redor", self.LEAF_A], ["not", self.LEAF_A]),
            (["redxor", self.LEAF_A], ["not", self.LEAF_A]),
            (["slice", self.LEAF_A, 2, 1], ["not", self.LEAF_A]),
            (["mux", "slt", self.LEAF_A, self.LEAF_B,
              ["const", 1], ["const", 0]],
             ["mux", "lt", self.LEAF_A, self.LEAF_B,
              ["const", 1], ["const", 0]]),
        ]
        for tree, expected in cases:
            assert expected in list(pruned(tree)), tree

    @staticmethod
    def _measure(tree):
        # lexicographic shrink measure: node count, then op complexity,
        # then how many nodes are not yet the ["const", 0] fixpoint —
        # leaf collapses keep the first two components but lower the third
        def live(node):
            return int(node != ["const", 0]) + sum(
                live(node[slot])
                for slot in range(len(node))
                if isinstance(node[slot], list)
            )

        return count_nodes(tree), complexity(tree), live(tree)

    def test_every_candidate_strictly_shrinks_the_measure(self):
        rng = random.Random(23)
        for _ in range(200):
            tree = random_expr(rng, self.NAMES, 6, 10)
            before = self._measure(tree)
            for candidate in pruned(tree):
                validate_expr(candidate, set(self.NAMES))
                assert self._measure(candidate) < before, (tree, candidate)

    def test_greedy_shrink_chains_terminate(self):
        # follow the first pruned candidate until the fixpoint; the
        # strictly-decreasing measure bounds the chain length
        rng = random.Random(7)
        for _ in range(50):
            tree = random_expr(rng, self.NAMES, 6, 12)
            nodes = count_nodes(tree)
            bound = nodes * (complexity(tree) + 1) * (nodes + 1) + 1
            steps = 0
            while True:
                candidates = list(pruned(tree))
                if not candidates:
                    break
                tree = candidates[0]
                steps += 1
                assert steps <= bound, "shrink chain failed to terminate"
            assert tree == ["const", 0]

    def test_reduces_a_case_built_from_widened_ops(self):
        # the defect subtree is wrapped in new ops; reduction must dig it
        # out by rewriting them away while the failure class is preserved
        spec = QaSpec(
            name="qa_widened", width=6, inputs=("a0", "a1", "a2"),
            outputs=(
                ("y0", ["cat", ["not", DEEP_ADD],
                        ["sra", ["var", "a2"], ["const", 1]]]),
                ("y1", ["redxor", ["shl", ["var", "a2"], ["var", "a0"]]]),
            ),
        )
        mutation = CaseMutation(Language.VERILOG, functional(
            "deep add becomes sub",
            f"assign {ADD} = {A0} + {A1};",
            f"assign {ADD} = {A0} - {A1};",
        ))
        result = reduce_case(
            QaCase(spec=spec, mutations=(mutation,)), max_checks=200
        )
        assert result.failure_class is FailureClass.VERILOG_MISMATCH
        reduced = result.reduced.spec
        assert reduced.node_count <= 5
        assert reduced.width == MIN_WIDTH
        verdict = run_oracle(result.reduced, Toolchain(cache=True))
        assert verdict.failure_class is FailureClass.VERILOG_MISMATCH
