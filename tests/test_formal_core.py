"""The formal stack below the verdicts: CNF folding, dual-rail encoding,
netlist extraction, the proof ladder, and the contract checks.

The encoder's four-state semantics are checked *differentially against the
simulation kernel's* :class:`repro.sim.values.Logic` — the one contract
that keeps formal verdicts and simulated verdicts comparable at all.
"""

import itertools
import random

import pytest

from repro.eda.toolchain import Language
from repro.formal import (
    FALSE,
    TRUE,
    Cnf,
    ExtractionError,
    FormalVerdict,
    Netlist,
    Rail,
    check_program,
    check_reset_contract,
    check_source,
    check_trees,
    check_x_freedom,
    const_rail,
    encode_expr,
    extract_netlist,
    free_rail,
    rail_from_model,
    unknown_rail,
)
from repro.formal.sat import solve
from repro.qa.grammar import evaluate, random_expr
from repro.qa.oracle import QaCase, case_sources
from repro.qa.spec import QaSpec, generate_spec
from repro.sim.values import Logic


def rail_bits(rail, model=None):
    """Decode a rail (possibly via a SAT model) into an MSB-first bit string."""

    def lit(literal):
        if literal == TRUE:
            return True
        if literal == FALSE:
            return False
        return model[abs(literal)] == (literal > 0)

    chars = []
    for index in reversed(range(rail.width)):
        if not lit(rail.knowns[index]):
            chars.append("x")
        else:
            chars.append("1" if lit(rail.values[index]) else "0")
    return "".join(chars)


def logic_of(value: int | None, width: int) -> Logic:
    if value is None:
        return Logic.unknown(width)
    return Logic.from_int(value, width)


class TestCnfFolding:
    def test_constants_fold_through_and(self):
        cnf = Cnf()
        a = cnf.new_var()
        assert cnf.g_and(TRUE, a) == a
        assert cnf.g_and(FALSE, a) == FALSE
        assert cnf.g_and(a, a) == a
        assert cnf.g_and(a, -a) == FALSE

    def test_constants_fold_through_xor(self):
        cnf = Cnf()
        a = cnf.new_var()
        assert cnf.g_xor(FALSE, a) == a
        assert cnf.g_xor(TRUE, a) == -a
        assert cnf.g_xor(a, a) == FALSE
        assert cnf.g_xor(a, -a) == TRUE

    def test_gates_are_hash_consed(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        assert cnf.g_and(a, b) == cnf.g_and(b, a)
        assert cnf.g_xor(a, b) == cnf.g_xor(b, a)
        # polarity-normalized: xor(-a,-b) is the same gate as xor(a,b)
        assert cnf.g_xor(-a, -b) == cnf.g_xor(a, b)
        assert cnf.g_xor(-a, b) == -cnf.g_xor(a, b)

    def test_mux_folds_on_constant_select(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        assert cnf.g_mux(TRUE, a, b) == a
        assert cnf.g_mux(FALSE, a, b) == b
        assert cnf.g_mux(cnf.new_var(), a, a) == a

    def test_gate_semantics_via_sat(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        gate = cnf.g_and(a, b)
        # force a=1, b=1 → gate must be 1 in every model
        result = solve(cnf.num_vars, cnf.clauses + [(a,), (b,)])
        assert result.sat
        assert result.model[abs(gate)] == (gate > 0)
        result = solve(cnf.num_vars, cnf.clauses + [(a,), (-b,), (gate,)])
        assert result.unsat


class TestEncoderVsKernel:
    """Dual-rail encoding must match Logic's four-state semantics exactly."""

    WIDTH = 4

    def _check_op(self, op, kernel_fn, lhs, rhs):
        cnf = Cnf()
        env = {
            "a": _rail_for(cnf, lhs, self.WIDTH),
            "b": _rail_for(cnf, rhs, self.WIDTH),
        }
        rail = encode_expr(cnf, [op, ["var", "a"], ["var", "b"]],
                           env, self.WIDTH)
        assert rail.is_constant(), (op, lhs, rhs)
        expected = kernel_fn(
            logic_of(lhs, self.WIDTH), logic_of(rhs, self.WIDTH)
        )
        assert rail_bits(rail) == expected.to_bit_string(), (op, lhs, rhs)

    def test_all_binary_ops_match_kernel_with_x(self):
        rng = random.Random(5)
        kernel = {
            "and": Logic.__and__,
            "or": Logic.__or__,
            "xor": Logic.__xor__,
            "add": Logic.add,
            "sub": Logic.sub,
        }
        operands = [None, 0, 1, 5, 10, 15]
        for op, fn in kernel.items():
            for _ in range(60):
                self._check_op(op, fn, rng.choice(operands),
                               rng.choice(operands))

    def test_controlling_values_mask_x(self):
        # 0 and X = 0;  1 or X = 1 — bit-level masking the kernel performs
        cnf = Cnf()
        env = {
            "a": const_rail(0, 4),
            "b": unknown_rail(4),
        }
        rail = encode_expr(cnf, ["and", ["var", "a"], ["var", "b"]], env, 4)
        assert rail_bits(rail) == "0000"
        env = {"a": const_rail(15, 4), "b": unknown_rail(4)}
        rail = encode_expr(cnf, ["or", ["var", "a"], ["var", "b"]], env, 4)
        assert rail_bits(rail) == "1111"

    def test_eq_with_known_differing_bit_is_definite(self):
        # "10xx" vs "01xx": high bits differ and are known → eq is 0
        cnf = Cnf()
        a = Rail(values=(FALSE, FALSE, FALSE, TRUE),
                 knowns=(FALSE, FALSE, TRUE, TRUE))
        b = Rail(values=(FALSE, FALSE, TRUE, FALSE),
                 knowns=(FALSE, FALSE, TRUE, TRUE))
        tree = ["mux", "eq", ["var", "a"], ["var", "b"],
                ["const", 1], ["const", 0]]
        rail = encode_expr(cnf, tree, {"a": a, "b": b}, 4)
        assert rail_bits(rail) == "0000"

    def test_unknown_mux_condition_poisons_result(self):
        # kernel approximates an X ternary condition as all-X
        cnf = Cnf()
        env = {"a": unknown_rail(4), "b": const_rail(3, 4)}
        tree = ["mux", "eq", ["var", "a"], ["var", "b"],
                ["const", 5], ["const", 5]]
        rail = encode_expr(cnf, tree, env, 4)
        assert rail_bits(rail) == "xxxx"

    def test_random_trees_fold_to_evaluate(self):
        rng = random.Random(17)
        for _ in range(150):
            tree = random_expr(rng, ("a", "b"), 4, budget=8)
            inputs = {"a": rng.randrange(16), "b": rng.randrange(16)}
            cnf = Cnf()
            env = {
                name: const_rail(value, 4)
                for name, value in inputs.items()
            }
            rail = encode_expr(cnf, tree, env, 4)
            assert rail.is_constant()
            value, known = rail.constant_bits()
            assert known == 15
            assert value == evaluate(tree, inputs, 4)

    def test_free_rail_round_trips_through_model(self):
        cnf = Cnf()
        rail = free_rail(cnf, 4)
        # pin the rail to 0b1010 and read it back from the model
        clauses = list(cnf.clauses)
        for index, literal in enumerate(rail.values):
            clauses.append((literal,) if (10 >> index) & 1 else (-literal,))
        result = solve(cnf.num_vars, clauses)
        assert result.sat
        assert rail_from_model(rail, result.model) == 10


def _rail_for(cnf, value, width):
    return unknown_rail(width) if value is None else const_rail(value, width)


def _four_state(width):
    """Every four-state vector of ``width`` as ``(Logic, Rail)`` pairs."""
    for bits in range(1 << width):
        for xmask in range(1 << width):
            if bits & xmask:
                continue  # Logic normalizes bits under X to 0
            values = tuple(
                TRUE if (bits >> index) & 1 else FALSE
                for index in range(width)
            )
            knowns = tuple(
                FALSE if (xmask >> index) & 1 else TRUE
                for index in range(width)
            )
            yield Logic(width, bits, xmask), Rail(values, knowns)


class TestWidenedOpsExhaustive:
    """Exhaustive four-state sweep of every widened op at a small width.

    27 vectors of width 3 (three states per bit) make 729 operand pairs —
    small enough to enumerate completely, wide enough to cover sign bits,
    shift overshoot, and both cat fields. The kernel composition on the
    right-hand side is exactly what the compiled simulators execute for
    the rendered HDL, so agreement here pins the encoder to the semantics
    the differential oracle observes, X-poisoning included.
    """

    WIDTH = 3

    def _encode(self, tree, env_rails):
        cnf = Cnf()
        rail = encode_expr(cnf, tree, env_rails, self.WIDTH)
        assert rail.is_constant(), tree
        return rail_bits(rail)

    def test_shifts_match_kernel_on_all_four_state_pairs(self):
        pairs = list(_four_state(self.WIDTH))
        for kind, kernel in (
            ("shl", Logic.shl), ("shr", Logic.shr), ("sra", Logic.ashr),
        ):
            tree = [kind, ["var", "a"], ["var", "b"]]
            for (la, ra), (lb, rb) in itertools.product(pairs, pairs):
                got = self._encode(tree, {"a": ra, "b": rb})
                assert got == kernel(la, lb).to_bit_string(), (kind, la, lb)

    def test_cat_matches_kernel_on_all_four_state_pairs(self):
        high, low = self.WIDTH - self.WIDTH // 2, self.WIDTH // 2
        tree = ["cat", ["var", "a"], ["var", "b"]]
        pairs = list(_four_state(self.WIDTH))
        for (la, ra), (lb, rb) in itertools.product(pairs, pairs):
            expected = la.slice(high - 1, 0).concat(lb.slice(low - 1, 0))
            got = self._encode(tree, {"a": ra, "b": rb})
            assert got == expected.to_bit_string(), (la, lb)

    def test_slice_matches_kernel_on_all_bounds(self):
        for la, ra in _four_state(self.WIDTH):
            for lsb in range(self.WIDTH + 2):
                for msb in range(lsb, self.WIDTH + 2):
                    got = self._encode(
                        ["slice", ["var", "a"], msb, lsb], {"a": ra}
                    )
                    if lsb >= self.WIDTH:  # clamped to a zero read
                        expected = Logic.from_int(0, self.WIDTH)
                    else:
                        expected = la.slice(
                            min(msb, self.WIDTH - 1), lsb
                        ).resize(self.WIDTH)
                    assert got == expected.to_bit_string(), (la, msb, lsb)

    def test_reductions_match_kernel_on_all_vectors(self):
        for kind, kernel in (
            ("redand", Logic.reduce_and),
            ("redor", Logic.reduce_or),
            ("redxor", Logic.reduce_xor),
        ):
            tree = [kind, ["var", "a"]]
            for la, ra in _four_state(self.WIDTH):
                expected = kernel(la).resize(self.WIDTH)
                got = self._encode(tree, {"a": ra})
                assert got == expected.to_bit_string(), (kind, la)

    def test_slt_matches_kernel_on_all_four_state_pairs(self):
        tree = ["mux", "slt", ["var", "a"], ["var", "b"],
                ["const", 1], ["const", 0]]
        pairs = list(_four_state(self.WIDTH))
        for (la, ra), (lb, rb) in itertools.product(pairs, pairs):
            cond = la.lt_signed(lb)
            if cond.has_x:  # X condition poisons the whole select
                expected = Logic.unknown(self.WIDTH)
            else:
                expected = Logic.from_int(cond.to_int(), self.WIDTH)
            got = self._encode(tree, {"a": ra, "b": rb})
            assert got == expected.to_bit_string(), (la, lb)


class TestExtraction:
    def test_round_trip_matches_reference_semantics(self):
        rng = random.Random(0)
        for seed in (0, 3, 11, 25):
            spec = generate_spec(seed, 0)
            sources = case_sources(QaCase(spec=spec))
            model = spec.model()
            names = [name for name, _ in spec.outputs]
            for language in Language:
                netlist = extract_netlist(spec, sources[language], language)
                assert set(netlist.outputs) == set(names)
                for _ in range(10):
                    inputs = {
                        name: rng.randrange(1 << spec.width)
                        for name in spec.inputs
                    }
                    if spec.clocked:
                        state = tuple(
                            rng.randrange(1 << spec.width) for _ in names
                        )
                        env = dict(inputs)
                        env.update(zip(names, state))
                        _, golden = model.step(state, inputs)
                    else:
                        env = dict(inputs)
                        golden = model.fn(dict(inputs))
                    for name in names:
                        got = evaluate(netlist.outputs[name], env, spec.width)
                        assert got == golden[name] & ((1 << spec.width) - 1)

    def test_dropped_semicolons_still_extract(self):
        spec = generate_spec(4, 0)
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        netlist = extract_netlist(
            spec, source.replace(";", ""), Language.VERILOG
        )
        assert set(netlist.outputs) == {name for name, _ in spec.outputs}

    def test_unknown_lines_are_ignored(self):
        spec = _comb_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        noisy = source.replace(
            "endmodule", "    garbage line here\nendmodule"
        )
        assert extract_netlist(spec, noisy, Language.VERILOG).outputs

    def test_duplicate_driver_is_an_error(self):
        spec = _comb_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        doubled = source.replace(
            "endmodule", "    assign y0 = a0;\nendmodule"
        )
        with pytest.raises(ExtractionError, match="multiple drivers"):
            extract_netlist(spec, doubled, Language.VERILOG)

    def test_missing_output_driver_is_an_error(self):
        spec = _comb_spec()
        source = "\n".join(
            line
            for line in case_sources(QaCase(spec=spec))[
                Language.VERILOG
            ].splitlines()
            if not line.strip().startswith("assign y0")
        )
        with pytest.raises(ExtractionError, match="no driver"):
            extract_netlist(spec, source, Language.VERILOG)

    def test_combinational_cycle_is_an_error(self):
        spec = _comb_spec()
        source = (
            "assign n_loop = n_loop2;\n"
            "assign n_loop2 = n_loop;\n"
            "assign y0 = n_loop;\n"
        )
        with pytest.raises(ExtractionError, match="cycle"):
            extract_netlist(spec, source, Language.VERILOG)

    def test_missing_reset_is_omitted_not_fatal(self):
        spec = _seq_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        stripped = "\n".join(
            line
            for line in source.splitlines()
            if "<= 4'd0;" not in line
        )
        netlist = extract_netlist(spec, stripped, Language.VERILOG)
        assert "y0" not in netlist.resets
        assert "y0" in netlist.outputs

    def test_vhdl_register_names_map_back_to_ports(self):
        spec = _seq_spec()
        source = case_sources(QaCase(spec=spec))[Language.VHDL]
        netlist = extract_netlist(spec, source, Language.VHDL)
        assert netlist.resets == {"y0": 0}
        assert netlist.outputs["y0"] == [
            "add", ["var", "y0"], ["var", "a0"]
        ]


class TestProofLadder:
    def test_structural_proof_for_clean_rendering(self):
        spec = _comb_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        result = check_source(spec, source, Language.VERILOG)
        assert result.verdict is FormalVerdict.PROVED
        assert result.method == "structural"
        assert result.decisive

    def test_sat_proof_for_rewritten_equivalent(self):
        # double negation: structurally different, semantically identical
        spec = _comb_spec()
        netlist = Netlist(outputs={
            "y0": ["not", ["not", ["add", ["var", "a0"], ["var", "a1"]]]]
        })
        result = check_trees(spec, netlist)
        assert result.verdict is FormalVerdict.PROVED
        assert result.method == "sat"

    def test_comb_refutation_carries_replaying_witness(self):
        spec = _comb_spec()
        netlist = Netlist(outputs={
            "y0": ["sub", ["var", "a0"], ["var", "a1"]]
        })
        result = check_trees(spec, netlist)
        assert result.verdict is FormalVerdict.REFUTED
        assert len(result.witness) == 1
        assert result.mismatches
        inputs = result.witness[0]
        width = spec.width
        expected = (inputs["a0"] + inputs["a1"]) & (1 << width) - 1
        actual = (inputs["a0"] - inputs["a1"]) & (1 << width) - 1
        assert result.mismatches[0].expected == expected
        assert result.mismatches[0].actual == actual

    def test_induction_proves_sequential_equivalence(self):
        spec = _seq_spec()
        netlist = Netlist(
            outputs={
                "y0": ["not", ["not", ["add", ["var", "y0"],
                                       ["var", "a0"]]]]
            },
            resets={"y0": 0},
        )
        result = check_trees(spec, netlist)
        assert result.verdict is FormalVerdict.PROVED
        assert result.method == "induction"

    def test_bmc_finds_reachable_divergence(self):
        spec = _seq_spec()
        netlist = Netlist(
            outputs={"y0": ["and", ["var", "y0"], ["var", "a0"]]},
            resets={"y0": 0},
        )
        result = check_trees(spec, netlist)
        assert result.verdict is FormalVerdict.REFUTED
        assert result.method == "bmc"
        assert result.witness
        assert result.depth == len(result.witness)

    def test_unreachable_divergence_is_bounded(self):
        # golden: y0 sticks at 0. candidate agrees on state 0 but would
        # perpetuate state 1 — which is unreachable from reset, so BMC
        # finds nothing and induction cannot close the gap.
        spec = QaSpec(
            name="formal_bounded", width=4, inputs=("a0",),
            outputs=(("y0", ["const", 0]),), clocked=True,
        )
        netlist = Netlist(
            outputs={
                "y0": ["mux", "eq", ["var", "y0"], ["const", 1],
                       ["const", 1], ["const", 0]]
            },
            resets={"y0": 0},
        )
        result = check_trees(spec, netlist, depth=6)
        assert result.verdict is FormalVerdict.BOUNDED
        assert result.depth == 6
        assert not result.decisive

    def test_differing_reset_is_a_reachable_refutation(self):
        spec = _seq_spec()
        netlist = Netlist(
            outputs={"y0": ["add", ["var", "y0"], ["var", "a0"]]},
            resets={"y0": 3},
        )
        result = check_trees(spec, netlist)
        assert result.verdict is FormalVerdict.REFUTED

    def test_unparseable_source_is_unsupported(self):
        spec = _comb_spec()
        result = check_source(
            spec, "assign y0 = a0 * a1;", Language.VERILOG
        )
        assert result.verdict is FormalVerdict.UNSUPPORTED
        assert "unsupported" in result.detail

    def test_check_source_never_raises(self, monkeypatch):
        import repro.formal.bmc as bmc

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic meltdown")

        monkeypatch.setattr(bmc, "check_trees", boom)
        spec = _comb_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        result = check_source(spec, source, Language.VERILOG)
        assert result.verdict is FormalVerdict.ERROR
        assert "meltdown" in result.detail

    def test_check_program_proves_clean_fuzz_programs(self):
        payload = check_program(0, 0)
        assert payload["verilog"] == FormalVerdict.PROVED.value
        assert payload["vhdl"] == FormalVerdict.PROVED.value

    def test_verdicts_are_deterministic(self):
        spec = _comb_spec()
        netlist = Netlist(outputs={
            "y0": ["sub", ["var", "a0"], ["var", "a1"]]
        })
        first = check_trees(spec, netlist)
        second = check_trees(spec, netlist)
        assert first.witness == second.witness
        assert first.stats == second.stats


class TestContracts:
    def test_clean_sequential_design_passes_both_contracts(self):
        spec = _seq_spec()
        source = case_sources(QaCase(spec=spec))[Language.VERILOG]
        netlist = extract_netlist(spec, source, Language.VERILOG)
        assert check_reset_contract(spec, netlist).verdict \
            is FormalVerdict.PROVED
        assert check_x_freedom(spec, netlist, depth=4).verdict \
            is FormalVerdict.PROVED

    def test_combinational_design_has_no_reset_obligations(self):
        spec = _comb_spec()
        netlist = Netlist(outputs=dict(spec.outputs))
        assert check_reset_contract(spec, netlist).verdict \
            is FormalVerdict.PROVED
        assert check_x_freedom(spec, netlist).verdict \
            is FormalVerdict.PROVED

    def test_missing_reset_refutes_reset_contract(self):
        spec = _seq_spec()
        netlist = Netlist(
            outputs={"y0": ["add", ["var", "y0"], ["var", "a0"]]}
        )
        result = check_reset_contract(spec, netlist)
        assert result.verdict is FormalVerdict.REFUTED
        assert "no reset" in result.detail

    def test_nonzero_reset_refutes_reset_contract(self):
        spec = _seq_spec()
        netlist = Netlist(
            outputs={"y0": ["add", ["var", "y0"], ["var", "a0"]]},
            resets={"y0": 7},
        )
        result = check_reset_contract(spec, netlist)
        assert result.verdict is FormalVerdict.REFUTED
        assert "resets to 7" in result.detail

    def test_unreset_register_refutes_x_freedom(self):
        # the un-reset accumulator keeps folding its X state back in
        spec = _seq_spec()
        netlist = Netlist(
            outputs={"y0": ["add", ["var", "y0"], ["var", "a0"]]}
        )
        result = check_x_freedom(spec, netlist, depth=3)
        assert result.verdict is FormalVerdict.REFUTED

    def test_overwriting_update_masks_missing_reset(self):
        # y0' = a0 ignores the X state entirely: X-free from cycle 1 even
        # though the register never resets — the two contracts are distinct
        spec = _seq_spec()
        netlist = Netlist(outputs={"y0": ["var", "a0"]})
        assert check_reset_contract(spec, netlist).verdict \
            is FormalVerdict.REFUTED
        assert check_x_freedom(spec, netlist, depth=4).verdict \
            is FormalVerdict.PROVED


def _comb_spec() -> QaSpec:
    return QaSpec(
        name="formal_comb", width=4, inputs=("a0", "a1"),
        outputs=(("y0", ["add", ["var", "a0"], ["var", "a1"]]),),
    )


def _seq_spec() -> QaSpec:
    return QaSpec(
        name="formal_seq", width=4, inputs=("a0",),
        outputs=(("y0", ["add", ["var", "y0"], ["var", "a0"]]),),
        clocked=True,
    )
