"""Tests for the evaluation harness: pass@k, runner, tables, figures."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.eda.toolchain import Language
from repro.eval.figures import render_figure3
from repro.eval.literature import LITERATURE, headline_improvement
from repro.eval.passk import mean_pass_at_k, pass_at_k
from repro.eval.runner import ConfigResult, ExperimentRunner, ProblemRecord
from repro.eval.tables import render_table1, render_table2
from repro.evalsuite.suite import build_suite
from repro.llm.profiles import CLAUDE_35_SONNET, GPT_4O


class TestPassAtK:
    def test_k1_is_fraction(self):
        assert pass_at_k(1, 1, 1) == 1.0
        assert pass_at_k(1, 0, 1) == 0.0

    def test_all_correct(self):
        assert pass_at_k(10, 10, 5) == 1.0

    def test_none_correct(self):
        assert pass_at_k(10, 0, 5) == 0.0

    def test_known_value(self):
        # n=10, c=3, k=1 -> 0.3
        assert pass_at_k(10, 3, 1) == pytest.approx(0.3)

    def test_matches_combinatorial_definition(self):
        n, c, k = 12, 4, 3
        expected = 1.0 - (
            math.comb(n - c, k) / math.comb(n, k)
        )
        assert pass_at_k(n, c, k) == pytest.approx(expected)

    @given(
        st.integers(1, 30),
        st.integers(0, 30),
        st.integers(1, 30),
    )
    def test_estimator_in_unit_interval(self, n, c, k):
        c = min(c, n)
        k = min(k, n)
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 20), st.integers(0, 20))
    def test_monotone_in_k(self, n, c):
        c = min(c, n)
        values = [pass_at_k(n, c, k) for k in range(1, n + 1)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 6)

    def test_mean(self):
        assert mean_pass_at_k([(1, 1), (1, 0)], 1) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            mean_pass_at_k([], 1)


def _fake_result():
    result = ConfigResult(
        model="m", model_display="M", language=Language.VERILOG
    )
    for index in range(10):
        record = ProblemRecord(pid=f"p{index}")
        record.baseline_syntax_ok = index >= 2
        record.baseline_functional_ok = index >= 5
        record.aivril_syntax_ok = True
        record.aivril_functional_ok = index >= 3
        record.baseline_latency = 4.0
        record.syntax_iterations = 2 if index < 2 else 0
        record.functional_iterations = 3 if 3 <= index < 5 else 0
        result.records.append(record)
    return result


class TestConfigResult:
    def test_percentages(self):
        result = _fake_result()
        assert result.baseline_syntax_pct == 80.0
        assert result.baseline_functional_pct == 50.0
        assert result.aivril_syntax_pct == 100.0
        assert result.aivril_functional_pct == 70.0

    def test_delta_functional(self):
        result = _fake_result()
        assert result.delta_functional_pct == pytest.approx(40.0)

    def test_delta_none_for_zero_baseline(self):
        result = _fake_result()
        for record in result.records:
            record.baseline_functional_ok = False
        assert result.delta_functional_pct is None

    def test_cycle_means_only_count_converging_runs(self):
        result = _fake_result()
        # records 0-1 entered the syntax loop and ended syntax-clean
        assert result.mean_syntax_iterations == 2.0
        # records 3-4 entered the functional loop and converged
        assert result.mean_functional_iterations == 3.0


class TestConfigResultDegenerate:
    """Empty or error-laden record lists must never divide by zero, and
    error records must be reported separately — not counted as failures."""

    def _empty(self):
        return ConfigResult(
            model="m", model_display="M", language=Language.VERILOG
        )

    def test_empty_records_all_properties_safe(self):
        result = self._empty()
        assert result.total == 0
        assert result.baseline_syntax_pct == 0.0
        assert result.baseline_functional_pct == 0.0
        assert result.aivril_syntax_pct == 0.0
        assert result.aivril_functional_pct == 0.0
        assert result.delta_functional_pct is None
        assert result.baseline_latency_avg == 0.0
        assert result.aivril_latency_avg.total == 0.0
        assert result.mean_syntax_iterations == 0.0
        assert result.mean_functional_iterations == 0.0

    def test_all_error_records_all_properties_safe(self):
        result = self._empty()
        for index in range(3):
            result.records.append(
                ProblemRecord(pid=f"p{index}", error="crashed: boom")
            )
        assert result.total == 3
        assert result.error_count == 3
        assert result.evaluated == []
        assert result.baseline_functional_pct == 0.0
        assert result.aivril_functional_pct == 0.0
        assert result.delta_functional_pct is None
        assert result.baseline_latency_avg == 0.0
        assert result.aivril_latency_avg.total == 0.0

    def test_error_records_excluded_not_failed(self):
        result = self._empty()
        passing = ProblemRecord(pid="good")
        passing.baseline_functional_ok = True
        passing.aivril_functional_ok = True
        passing.baseline_latency = 6.0
        result.records.append(passing)
        failing = ProblemRecord(pid="wrong")
        failing.baseline_latency = 2.0
        result.records.append(failing)
        result.records.append(ProblemRecord(pid="dead", error="timeout"))
        # over the 2 evaluated records, not over all 3
        assert result.baseline_functional_pct == 50.0
        assert result.aivril_functional_pct == 50.0
        assert result.baseline_latency_avg == 4.0
        assert result.error_count == 1
        assert [r.pid for r in result.error_records] == ["dead"]
        assert [r.pid for r in result.evaluated] == ["good", "wrong"]

    def test_errored_iterations_never_counted_in_cycle_means(self):
        result = self._empty()
        converged = ProblemRecord(pid="ok")
        converged.aivril_syntax_ok = True
        converged.syntax_iterations = 3
        result.records.append(converged)
        # an error record with leftover iteration counts must not leak in
        poisoned = ProblemRecord(pid="dead", error="crashed")
        poisoned.syntax_iterations = 99
        poisoned.aivril_syntax_ok = True
        result.records.append(poisoned)
        assert result.mean_syntax_iterations == 3.0


class TestRunnerSubset:
    @pytest.fixture(scope="class")
    def subset_result(self):
        suite = build_suite()
        subset = suite.head(12)
        runner = ExperimentRunner(suite=subset)
        return runner.run_config(GPT_4O, Language.VERILOG), subset

    def test_all_problems_recorded(self, subset_result):
        result, subset = subset_result
        assert result.total == len(subset)
        assert [r.pid for r in result.records] == [p.pid for p in subset]

    def test_aivril_never_worse_than_baseline(self, subset_result):
        result, _ = subset_result
        assert result.aivril_syntax_pct >= result.baseline_syntax_pct
        assert result.aivril_functional_pct >= result.baseline_functional_pct

    def test_latency_accounted(self, subset_result):
        result, _ = subset_result
        assert result.baseline_latency_avg > 0
        assert result.aivril_latency_avg.total > result.baseline_latency_avg


class TestRenderers:
    def test_table1_contains_models_and_averages(self):
        text = render_table1([_fake_result()])
        assert "AIVRIL2 (M)" in text
        assert "Average dF" in text

    def test_table2_merges_measured_rows(self):
        result = _fake_result()
        result.model = "gpt-4o"
        result.model_display = "GPT-4o"
        text = render_table2([result])
        assert "ChipNemo-13B" in text
        assert "AIVRIL2 (GPT-4o)" in text
        assert "vs ChipNemo-13B" in text

    def test_figure3_reports_components(self):
        text = render_figure3([_fake_result()])
        assert "baseline" in text
        assert "AIVRIL2" in text
        assert "Worst-case" in text


class TestLiterature:
    def test_rows_match_paper(self):
        values = {e.technology: e.pass1_functional_pct for e in LITERATURE}
        assert values["ChipNemo-13B"] == 22.4
        assert values["RTLFixer"] == 36.8
        assert values["AIVRIL"] == 67.3

    def test_headline_improvement(self):
        assert headline_improvement(77.0) == pytest.approx(3.4375, abs=1e-3)
