"""Tests for the live-telemetry layer: metrics spool + aggregator.

Covers the fork-safe spool writer, spool validation, the cross-process
merge semantics (counters add, gauges latest-win, histograms add
element-wise), the ISSUE's merge edge cases (overflow buckets, disjoint
name sets, mid-observation snapshots), and the end-to-end equivalence
guarantee: a workers=4 sweep's aggregated spool equals the live
``SweepMetrics`` and the trace summarizer exactly.
"""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    aggregate_records,
    aggregate_spool,
    configure_spool,
    get_spool,
    read_spool,
    set_spool,
    snapshot_now,
    validate_spool,
    validate_spool_record,
)
from repro.obs.live import SNAPSHOT_TYPE, MetricsSpool, merge_metric_records


def make_registry(counter=0, gauge=None, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("hits").inc(counter)
    if gauge is not None:
        registry.gauge("depth").set(gauge)
    for value in observations:
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(value)
    return registry


def snapshot_record(registry, *, pid, seq=0, time=1000.0):
    """A spool record built by hand, for deterministic merge tests."""
    return {
        "type": SNAPSHOT_TYPE,
        "version": 1,
        "pid": pid,
        "seq": seq,
        "time": time,
        "metrics": registry.to_records(),
    }


class TestMetricsSpool:
    def test_writes_one_valid_json_line_per_snapshot(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        spool = MetricsSpool(path)
        registry = make_registry(counter=3, gauge=7, observations=[0.5])
        assert spool.snapshot(registry) is True
        assert spool.snapshot(registry) is True
        records = read_spool(path)
        assert len(records) == 2
        assert [r["seq"] for r in records] == [0, 1]
        for record in records:
            assert record["type"] == SNAPSHOT_TYPE
            assert validate_spool_record(record) == []
        names = {m["name"] for m in records[0]["metrics"]}
        assert names == {"hits", "depth", "lat"}

    def test_min_interval_throttles_but_force_bypasses(self, tmp_path):
        spool = MetricsSpool(tmp_path / "s.jsonl", min_interval=3600.0)
        registry = make_registry(counter=1)
        assert spool.snapshot(registry) is True
        assert spool.snapshot(registry) is False
        assert spool.snapshot(registry, force=True) is True
        assert len(read_spool(spool.path)) == 2

    def test_fork_resets_writer_identity(self, tmp_path, monkeypatch):
        spool = MetricsSpool(tmp_path / "s.jsonl", min_interval=3600.0)
        registry = make_registry(counter=1)
        assert spool.snapshot(registry) is True
        # simulate a fork: a new pid must restart seq and drop the throttle
        monkeypatch.setattr("repro.obs.live.os.getpid", lambda: 1 << 30)
        assert spool.snapshot(registry) is True
        records = read_spool(spool.path)
        assert [r["seq"] for r in records] == [0, 0]
        assert records[0]["pid"] != records[1]["pid"]


class TestCurrentSpool:
    def test_configure_is_idempotent_per_path(self, tmp_path):
        previous = get_spool()
        try:
            first = configure_spool(tmp_path / "s.jsonl")
            again = configure_spool(tmp_path / "s.jsonl")
            assert again is first
            # None leaves the current spool untouched (pass-through arg)
            assert configure_spool(None) is first
            other = configure_spool(tmp_path / "other.jsonl")
            assert other is not first
        finally:
            set_spool(previous)

    def test_snapshot_now_is_noop_without_spool(self):
        previous = set_spool(None)
        try:
            assert snapshot_now(force=True) is False
        finally:
            set_spool(previous)


class TestValidateSpool:
    def test_valid_file(self, tmp_path):
        spool = MetricsSpool(tmp_path / "s.jsonl")
        spool.snapshot(make_registry(counter=2, observations=[0.1, 5.0]))
        count, errors = validate_spool(spool.path)
        assert count == 1
        assert errors == []

    def test_rejects_bad_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "wrong"}) + "\n"
            + "not json\n"
            + json.dumps({
                "type": SNAPSHOT_TYPE, "version": 1, "pid": 1, "seq": 0,
                "time": 1.0, "metrics": [{"kind": "counter"}],
            }) + "\n"
            + json.dumps({"type": SNAPSHOT_TYPE}),  # truncated: no newline
        )
        count, errors = validate_spool(path)
        assert count == 3  # the unparseable line does not count
        text = "\n".join(errors)
        assert "type must be" in text
        assert "invalid JSON" in text
        assert "metrics[0]" in text
        assert "truncated" in text

    def test_empty_spool_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        count, errors = validate_spool(path)
        assert count == 0
        assert any("no records" in e for e in errors)


class TestAggregation:
    def test_counters_add_across_pids(self):
        records = [
            snapshot_record(make_registry(counter=3), pid=1),
            snapshot_record(make_registry(counter=4), pid=2),
        ]
        snapshot = aggregate_records(records)
        assert snapshot.counter("hits") == 7
        assert snapshot.pids == [1, 2]
        assert snapshot.snapshot_count == 2

    def test_later_snapshot_of_same_pid_supersedes(self):
        records = [
            snapshot_record(make_registry(counter=3), pid=1, seq=0),
            snapshot_record(make_registry(counter=10), pid=1, seq=1),
            snapshot_record(make_registry(counter=5), pid=2, seq=0),
        ]
        snapshot = aggregate_records(records)
        # cumulative semantics: pid 1 contributes 10, not 13
        assert snapshot.counter("hits") == 15

    def test_gauge_latest_write_wins_across_pids(self):
        records = [
            snapshot_record(make_registry(gauge=111), pid=1, time=2000.0),
            snapshot_record(make_registry(gauge=222), pid=2, time=1000.0),
        ]
        snapshot = aggregate_records(records)
        assert snapshot.metrics["depth"]["value"] == 111
        assert "_gauge_time" not in snapshot.metrics["depth"]

    def test_histograms_add_elementwise(self):
        records = [
            snapshot_record(make_registry(observations=[0.5, 1.5]), pid=1),
            snapshot_record(make_registry(observations=[0.25]), pid=2),
        ]
        merged = aggregate_records(records).metrics["lat"]
        assert merged["counts"] == [2, 1, 0]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(2.25)
        assert merged["min"] == 0.25
        assert merged["max"] == 1.5

    def test_overflow_bucket_accumulates(self):
        # values beyond the last bound land in the implicit overflow
        # bucket; the merged overflow count must be the exact sum
        records = [
            snapshot_record(make_registry(observations=[9.0, 8.0]), pid=1),
            snapshot_record(make_registry(observations=[7.0]), pid=2),
        ]
        merged = aggregate_records(records).metrics["lat"]
        assert merged["counts"] == [0, 0, 3]
        assert merged["max"] == 9.0

    def test_disjoint_metric_name_sets_union(self):
        left = MetricsRegistry()
        left.counter("only.left").inc(2)
        right = MetricsRegistry()
        right.counter("only.right").inc(5)
        right.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = aggregate_records([
            snapshot_record(left, pid=1),
            snapshot_record(right, pid=2),
        ])
        assert snapshot.counter("only.left") == 2
        assert snapshot.counter("only.right") == 5
        assert list(snapshot.metrics) == sorted(snapshot.metrics)

    def test_empty_histogram_side_does_not_poison_min_max(self):
        # to_record writes min/max as 0.0 placeholders when count == 0;
        # merging such a side must not drag min/max toward zero
        empty = MetricsRegistry()
        empty.histogram("lat", buckets=(1.0, 2.0))
        records = [
            snapshot_record(empty, pid=1),
            snapshot_record(make_registry(observations=[1.7]), pid=2),
        ]
        merged = aggregate_records(records).metrics["lat"]
        assert merged["count"] == 1
        assert merged["min"] == 1.7
        assert merged["max"] == 1.7

    def test_mid_observation_snapshot_merges_consistently(self):
        # a snapshot taken while another thread hammers the histogram must
        # still be internally consistent (locked to_record) and mergeable
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        stop = threading.Event()

        def hammer():
            value = 0
            while not stop.is_set():
                histogram.observe((value % 30) / 10.0)
                value += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            mid_records = [registry.to_records() for _ in range(50)]
        finally:
            stop.set()
            thread.join()
        records = [
            snapshot_record(make_registry(observations=[0.5]), pid=1)
        ]
        for seq, metrics in enumerate(mid_records):
            record = snapshot_record(registry, pid=2, seq=seq)
            record["metrics"] = metrics
            records.append(record)
        for metrics in mid_records:
            (histo,) = metrics
            assert sum(histo["counts"]) == histo["count"]
        merged = aggregate_records(records).metrics["lat"]
        # latest pid-2 snapshot + the single pid-1 observation
        assert merged["count"] == mid_records[-1][0]["count"] + 1
        assert sum(merged["counts"]) == merged["count"]

    def test_kind_mismatch_raises(self):
        counter = {"kind": "counter", "name": "m", "value": 1}
        gauge = {"kind": "gauge", "name": "m", "value": 1}
        with pytest.raises(ValueError, match="in one process"):
            merge_metric_records(dict(counter), gauge, time_key=0.0)

    def test_bucket_mismatch_raises(self):
        def histo(buckets):
            return {
                "kind": "histogram", "name": "h", "buckets": buckets,
                "counts": [0] * (len(buckets) + 1), "sum": 0.0,
                "count": 0, "min": 0.0, "max": 0.0,
            }
        with pytest.raises(ValueError, match="buckets"):
            merge_metric_records(
                histo([1.0, 2.0]), histo([1.0, 3.0]), time_key=0.0
            )

    def test_empty_spool_aggregates_to_empty_snapshot(self):
        snapshot = aggregate_records([])
        assert snapshot.metrics == {}
        assert snapshot.pids == []
        assert snapshot.counter("anything") == 0


class TestSweepEquivalence:
    """The ISSUE's acceptance criterion: spool == live SweepMetrics."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_aggregated_spool_equals_sweep_metrics(self, tmp_path, workers):
        from repro.eval.runner import ExperimentRunner
        from repro.evalsuite.suite import build_suite
        from repro.obs import summarize_trace

        trace = tmp_path / "sweep.trace.jsonl"
        spool = tmp_path / "sweep.spool.jsonl"
        runner = ExperimentRunner(
            suite=build_suite().head(2),
            workers=workers,
            trace_path=str(trace),
            spool_path=str(spool),
        )
        runner.run_all()
        live = runner.metrics
        merged = aggregate_spool(spool)
        summary = summarize_trace(trace)

        assert merged.counter("cache.hit") == live.cache_hits
        assert merged.counter("cache.miss") == live.cache_misses
        assert merged.counter("pipeline.runs") == live.ok
        # and the trace summarizer reconstructs the same numbers
        assert summary.cache_hits == live.cache_hits
        assert summary.cache_misses == live.cache_misses
        assert summary.tasks_ok == live.ok
        count, errors = validate_spool(spool)
        assert errors == []
        assert count >= 1

    def test_fuzz_campaign_spools_class_counters(self, tmp_path):
        from repro.obs import NullSink, Tracer, get_tracer, set_tracer
        from repro.qa.fuzz import run_fuzz

        spool = tmp_path / "fuzz.spool.jsonl"
        previous_tracer = get_tracer()
        previous_spool = set_spool(None)
        try:
            set_tracer(Tracer(NullSink()))
            configure_spool(spool)
            report = run_fuzz(3, 4, workers=1)
        finally:
            set_tracer(previous_tracer)
            set_spool(previous_spool)
        merged = aggregate_spool(spool)
        assert merged.counter("qa.fuzz.programs") == len(report.results)
        assert merged.counter("qa.fuzz.divergences") == len(
            report.divergences
        )
