"""Engine equivalence: all four simulation tiers must agree.

The closure compiler (``repro.sim.compile``), the levelized cone tier
(``repro.sim.compile.level``), and the vectorized batch tier
(``repro.sim.batch``) must be observationally identical to the generator
interpreters they accelerate. These tests drive the same sources through
all tiers — the batch default (plus its ``REPRO_SIM_NO_NUMPY=1`` list
fallback), the levelized event kernel (``REPRO_SIM_NO_BATCH=1``), the
closure-only tier (``REPRO_SIM_NO_LEVEL=1``), and the pure interpreter
(``REPRO_SIM_INTERP=1``) — and require identical results:

* a Hypothesis property over ``repro.qa.spec.generate_spec`` programs,
  comparing the full simulation observables in both languages;
* a directed forced-X stimulus that drives X onto a cone input
  mid-simulation, exercising the two-state→four-state fallback and the
  recovery back to the fast path;
* a replay of the seed corpus under the interpreter and closure tiers
  (the recorded verdicts were produced with the full compiled stack);
* a small fuzz campaign judged by all three engines, comparing every
  verdict and source hash.

The compared observables are the printed output, the rendered log (which
embeds the reported end time), the end time, the clean-finish flag, and
any runtime error — kernel statistics intentionally differ across tiers
(cone calls replace waiter wakeups) and are not part of the contract.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.tbgen import make_testbench
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.qa.corpus import DEFAULT_CORPUS_DIR, replay_corpus
from repro.qa.fuzz import run_fuzz
from repro.qa.oracle import QaCase, case_sources
from repro.qa.spec import generate_spec

_TIER_FLAGS = (
    "REPRO_SIM_INTERP",
    "REPRO_SIM_NO_LEVEL",
    "REPRO_SIM_NO_BATCH",
    "REPRO_SIM_NO_NUMPY",
)


@contextmanager
def _tier(**flags):
    """Pin the simulation tier for the duration of the block."""
    previous = {flag: os.environ.pop(flag, None) for flag in _TIER_FLAGS}
    os.environ.update(flags)
    try:
        yield
    finally:
        for flag, value in previous.items():
            if value is None:
                os.environ.pop(flag, None)
            else:
                os.environ[flag] = value


def interpreter_tier():
    """Force the pure-interpreter tier for the duration of the block."""
    return _tier(REPRO_SIM_INTERP="1", REPRO_SIM_NO_BATCH="1")


def closure_tier():
    """Force the closure tier (levelized cones disabled)."""
    return _tier(REPRO_SIM_NO_LEVEL="1", REPRO_SIM_NO_BATCH="1")


def levelized_tier():
    """Force the levelized event kernel with the batch recognizer off."""
    return _tier(REPRO_SIM_NO_BATCH="1")


def batch_tier():
    """The default stack: batch recognizer on, numpy lanes when present."""
    return _tier()


def batch_list_tier():
    """The batch tier forced onto its pure-Python masked-int fallback."""
    return _tier(REPRO_SIM_NO_NUMPY="1")


def _observables(result):
    return (
        result.ok,
        tuple(result.output_lines),
        result.log,
        result.end_time,
        result.finished_cleanly,
        result.runtime_error,
    )


def _simulate_all_tiers(files, top):
    """One SimResult per tier, keyed by tier name."""
    results = {}
    for name, tier in (
        ("levelized", levelized_tier),
        ("closure", closure_tier),
        ("interp", interpreter_tier),
        ("batch", batch_tier),
        ("batch_list", batch_list_tier),
    ):
        with tier():
            results[name] = Toolchain().simulate(files, top)
    return results


def _assert_tiers_agree(files, top, context):
    results = _simulate_all_tiers(files, top)
    reference = _observables(results["levelized"])
    for name in ("closure", "interp", "batch", "batch_list"):
        assert _observables(results[name]) == reference, (
            f"{context}: levelized vs {name} divergence"
        )
    return results["levelized"]


def _spec_files(spec, language):
    sources = case_sources(QaCase(spec=spec))
    testbench = make_testbench(
        spec.design_spec(), spec.model(), language, spec.name
    )
    ext = language.file_extension
    return [
        HdlFile(f"top_module{ext}", sources[language], language),
        HdlFile(f"tb{ext}", testbench, language),
    ]


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    index=st.integers(min_value=0, max_value=7),
)
@settings(deadline=None)
def test_generated_specs_identical_across_tiers(seed, index):
    """Any generated program simulates identically on every tier."""
    spec = generate_spec(seed, index)
    for language in Language:
        files = _spec_files(spec, language)
        _assert_tiers_agree(
            files, "tb",
            f"{language.value} spec {spec.name} (seed={seed}, index={index})",
        )


X_FALLBACK_V = """
module xmod(input [7:0] a, input [7:0] b, output [7:0] y);
    wire [7:0] t = a ^ b;
    assign y = t + a;
endmodule
module tb;
    reg [7:0] a, b; wire [7:0] y;
    xmod dut(.a(a), .b(b), .y(y));
    initial begin
        a = 8'd3; b = 8'd5;
        #1 $display("known y=%b", y);
        a = 8'bxxxx0011;
        #1 $display("x-phase y=%b", y);
        a = 8'd7;
        #1 $display("recovered y=%b", y);
        $finish;
    end
endmodule
"""

X_FALLBACK_VHD = """
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity xmod is
    port (a : in unsigned(7 downto 0); b : in unsigned(7 downto 0);
          y : out unsigned(7 downto 0));
end entity;
architecture rtl of xmod is
    signal t : unsigned(7 downto 0);
begin
    t <= a xor b;
    y <= t + a;
end architecture;
entity tb is end entity;
architecture sim of tb is
    signal a : unsigned(7 downto 0) := x"03";
    signal b : unsigned(7 downto 0) := x"05";
    signal y : unsigned(7 downto 0);
begin
    dut: entity work.xmod port map (a => a, b => b, y => y);
    stim: process begin
        wait for 1 ns;
        assert y = x"09" report "bad known-phase y" severity error;
        a <= "XXXX0011";
        wait for 1 ns;
        assert not (y = x"09") report "x-phase y unexpectedly known"
            severity error;
        a <= x"07";
        wait for 1 ns;
        assert y = x"09" report "bad recovered y" severity error;
        report "All tests passed successfully!";
        wait;
    end process;
end architecture;
"""


def test_forced_x_fallback_identical_across_tiers():
    """X on a cone input mid-run demotes to four-state on every tier alike.

    The stimulus drives a known value (two-state fast path), then X bits
    (aggregated xmask test fails, the cone falls back to its Logic-based
    closure bodies for that evaluation), then a known value again (the
    fast path resumes). All three tiers must print the same x-propagated
    bits and the same recovery.
    """
    files = [HdlFile("x.v", X_FALLBACK_V, Language.VERILOG)]
    result = _assert_tiers_agree(files, "tb", "verilog forced-X")
    assert any("x-phase" in line and "x" in line.split("=")[-1]
               for line in result.output_lines), result.output_lines
    assert "recovered y=00001001" in "\n".join(result.output_lines)

    files = [HdlFile("x.vhd", X_FALLBACK_VHD, Language.VHDL)]
    result = _assert_tiers_agree(files, "tb", "vhdl forced-X")
    assert result.ok, result.log
    assert any("All tests passed" in line for line in result.output_lines)


def test_corpus_verdicts_hold_under_every_tier():
    """The seed corpus replays clean on the interpreter and closure tiers.

    The recorded failure classes were produced by the full compiled stack;
    the demoted tiers must classify every case the same way, including the
    defect-injected entries that exercise crash and mismatch paths.
    """
    for tier in (
        interpreter_tier,
        closure_tier,
        levelized_tier,
        batch_tier,
        batch_list_tier,
    ):
        with tier():
            outcomes = replay_corpus(DEFAULT_CORPUS_DIR)
        assert outcomes, "seed corpus is empty"
        mismatched = [o for o in outcomes if not o.matched]
        assert not mismatched, f"{tier.__name__}:\n" + "\n".join(
            f"{o.name}: expected {o.expected.value}, got {o.actual.value}"
            for o in mismatched
        )


def test_fuzz_verdicts_identical_across_tiers():
    """A fuzz campaign produces identical verdicts on every tier."""
    with levelized_tier():
        report_levelized = run_fuzz(seed=20260806, count=6)
    with closure_tier():
        report_closure = run_fuzz(seed=20260806, count=6)
    with interpreter_tier():
        report_interp = run_fuzz(seed=20260806, count=6)
    with batch_tier():
        report_batch = run_fuzz(seed=20260806, count=6)

    def digest(report):
        return [
            (r.index, r.name, r.failure_class, r.verilog_sha, r.vhdl_sha)
            for r in report.results
        ]

    assert digest(report_levelized) == digest(report_closure)
    assert digest(report_levelized) == digest(report_interp)
    assert digest(report_levelized) == digest(report_batch)
    assert report_levelized.class_counts == report_interp.class_counts
    assert report_levelized.class_counts == report_closure.class_counts
    assert report_levelized.class_counts == report_batch.class_counts
