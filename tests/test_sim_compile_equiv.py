"""Engine equivalence: compiled closures vs the pure interpreter.

The closure compiler (``repro.sim.compile``) must be observationally
identical to the generator interpreters it accelerates. These tests drive
the same sources through both tiers — the compiled default and the
``REPRO_SIM_INTERP=1`` escape hatch — and require identical results:

* a Hypothesis property over ``repro.qa.spec.generate_spec`` programs,
  comparing the full simulation observables in both languages;
* a replay of the seed corpus under the interpreter tier (the recorded
  verdicts were produced with the compiled tier);
* a small fuzz campaign judged by both engines, comparing every verdict
  and source hash.

The comparisons include the rendered log, which embeds the kernel's
statistics block — so process activations, signal updates, and delta
cycles must match too, not just the printed output.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.tbgen import make_testbench
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.qa.corpus import DEFAULT_CORPUS_DIR, replay_corpus
from repro.qa.fuzz import run_fuzz
from repro.qa.oracle import QaCase, case_sources
from repro.qa.spec import generate_spec


@contextmanager
def interpreter_tier():
    """Force the pure-interpreter tier for the duration of the block."""
    previous = os.environ.get("REPRO_SIM_INTERP")
    os.environ["REPRO_SIM_INTERP"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_INTERP", None)
        else:
            os.environ["REPRO_SIM_INTERP"] = previous


def _observables(result):
    return (
        result.ok,
        tuple(result.output_lines),
        result.log,
        result.end_time,
        result.finished_cleanly,
        result.runtime_error,
    )


def _simulate_both_tiers(files, top):
    compiled = Toolchain().simulate(files, top)
    with interpreter_tier():
        interpreted = Toolchain().simulate(files, top)
    return compiled, interpreted


def _spec_files(spec, language):
    sources = case_sources(QaCase(spec=spec))
    testbench = make_testbench(
        spec.design_spec(), spec.model(), language, spec.name
    )
    ext = language.file_extension
    return [
        HdlFile(f"top_module{ext}", sources[language], language),
        HdlFile(f"tb{ext}", testbench, language),
    ]


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    index=st.integers(min_value=0, max_value=7),
)
@settings(deadline=None)
def test_generated_specs_identical_across_tiers(seed, index):
    """Any generated program simulates identically on both tiers."""
    spec = generate_spec(seed, index)
    for language in Language:
        files = _spec_files(spec, language)
        compiled, interpreted = _simulate_both_tiers(files, "tb")
        assert _observables(compiled) == _observables(interpreted), (
            f"{language.value} divergence for spec {spec.name} "
            f"(seed={seed}, index={index})"
        )


def test_corpus_verdicts_hold_under_interpreter():
    """The seed corpus replays clean with the compiler disabled.

    The recorded failure classes were produced by the compiled tier; the
    interpreter must classify every case the same way, including the
    defect-injected entries that exercise crash and mismatch paths.
    """
    with interpreter_tier():
        outcomes = replay_corpus(DEFAULT_CORPUS_DIR)
    assert outcomes, "seed corpus is empty"
    mismatched = [o for o in outcomes if not o.matched]
    assert not mismatched, "\n".join(
        f"{o.name}: expected {o.expected.value}, got {o.actual.value}"
        for o in mismatched
    )


def test_fuzz_verdicts_identical_across_tiers():
    """A fuzz campaign produces identical verdicts on both tiers."""
    report_compiled = run_fuzz(seed=20260806, count=6)
    with interpreter_tier():
        report_interp = run_fuzz(seed=20260806, count=6)

    def digest(report):
        return [
            (r.index, r.name, r.failure_class, r.verilog_sha, r.vhdl_sha)
            for r in report.results
        ]

    assert digest(report_compiled) == digest(report_interp)
    assert report_compiled.class_counts == report_interp.class_counts
