"""Behavioural tests: Verilog constructs through elaboration + simulation."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain


def simulate(source: str, top: str = "tb"):
    toolchain = Toolchain()
    result = toolchain.simulate(
        [HdlFile("t.v", source, Language.VERILOG)], top
    )
    assert result.compile_result.ok, result.log
    assert result.ok, result.log
    return result


def outputs(source: str) -> list[str]:
    return simulate(source).output_lines


class TestCombinational:
    def test_continuous_assign_tracks_inputs(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] a, b; wire [3:0] y;
                assign y = a & b;
                initial begin
                    a = 4'b1100; b = 4'b1010; #1;
                    $display("y=%b", y);
                    a = 4'b1111; #1;
                    $display("y=%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["y=1000", "y=1010"]

    def test_context_width_preserves_carry(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] a, b; wire [3:0] sum; wire cout;
                assign {cout, sum} = a + b;
                initial begin
                    a = 4'd12; b = 4'd10; #1;
                    $display("c=%b s=%d", cout, sum);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["c=1 s=6"]

    def test_ternary_and_comparison(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] a, b; wire [7:0] y;
                assign y = (a < b) ? a : b;
                initial begin
                    a = 8'd9; b = 8'd4; #1;
                    $display("%0d", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["4"]

    def test_reduction_and_concat(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] a; wire p; wire [7:0] two;
                assign p = ^a;
                assign two = {a, 4'b0001};
                initial begin
                    a = 4'b1011; #1;
                    $display("p=%b two=%b", p, two);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["p=1 two=10110001"]

    def test_dynamic_bit_select(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] d; reg [2:0] i; wire y;
                assign y = d[i];
                initial begin
                    d = 8'b01000000; i = 3'd6; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["1"]

    def test_always_star_settles_at_time_zero(self):
        lines = outputs(
            """
            module tb;
                reg [1:0] s; reg [3:0] y;
                always @(*) begin
                    case (s)
                        2'd0: y = 4'd1;
                        2'd1: y = 4'd2;
                        default: y = 4'd9;
                    endcase
                end
                initial begin
                    s = 2'd1; #1;
                    $display("%0d", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["2"]


class TestSequential:
    def test_nonblocking_swap(self):
        lines = outputs(
            """
            module tb;
                reg clk; reg [3:0] a, b;
                always @(posedge clk) begin
                    a <= b;
                    b <= a;
                end
                initial begin
                    clk = 0; a = 4'd1; b = 4'd2;
                    #5 clk = 1; #5 clk = 0;
                    $display("a=%0d b=%0d", a, b);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["a=2 b=1"]

    def test_blocking_in_initial_is_sequential(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] x;
                initial begin
                    x = 4'd1;
                    x = x + 4'd1;
                    x = x * 4'd3;
                    $display("%0d", x);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["6"]

    def test_for_loop(self):
        lines = outputs(
            """
            module tb;
                integer i; reg [7:0] total;
                initial begin
                    total = 0;
                    for (i = 1; i <= 4; i = i + 1)
                        total = total + i[7:0];
                    $display("%0d", total);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["10"]

    def test_repeat_and_while(self):
        lines = outputs(
            """
            module tb;
                reg [3:0] n;
                initial begin
                    n = 0;
                    repeat (3) n = n + 4'd1;
                    while (n < 4'd5) n = n + 4'd1;
                    $display("%0d", n);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["5"]

    def test_event_control_waits_for_edge(self):
        lines = outputs(
            """
            module tb;
                reg clk; reg [3:0] seen;
                initial begin
                    clk = 0;
                    forever #5 clk = ~clk;
                end
                initial begin
                    seen = 4'd0;
                    @(posedge clk) seen = seen + 4'd1;
                    @(posedge clk) seen = seen + 4'd1;
                    $display("t=%0d n=%0d", $time, seen);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["t=15 n=2"]

    def test_x_before_reset_then_known(self):
        lines = outputs(
            """
            module tb;
                reg clk, rst; wire [1:0] q;
                reg [1:0] q_r;
                assign q = q_r;
                always @(posedge clk)
                    if (rst) q_r <= 2'd0;
                    else q_r <= q_r + 2'd1;
                initial begin
                    clk = 0; rst = 0;
                    $display("before=%b", q);
                    rst = 1;
                    #5 clk = 1; #5 clk = 0;
                    rst = 0;
                    #5 clk = 1; #5 clk = 0;
                    $display("after=%b", q);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["before=xx", "after=01"]


class TestHierarchy:
    def test_instantiation_and_parameters(self):
        lines = outputs(
            """
            module inc #(parameter STEP = 1)(input [3:0] a, output [3:0] y);
                assign y = a + STEP;
            endmodule
            module tb;
                reg [3:0] a; wire [3:0] y1, y3;
                inc i1(.a(a), .y(y1));
                inc #(.STEP(3)) i3(.a(a), .y(y3));
                initial begin
                    a = 4'd5; #1;
                    $display("%0d %0d", y1, y3);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["6 8"]

    def test_positional_connections(self):
        lines = outputs(
            """
            module andg(input a, input b, output y);
                assign y = a & b;
            endmodule
            module tb;
                reg a, b; wire y;
                andg g(a, b, y);
                initial begin
                    a = 1; b = 1; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["1"]

    def test_output_to_bit_select(self):
        lines = outputs(
            """
            module buf1(input a, output y);
                assign y = a;
            endmodule
            module tb;
                reg [1:0] a; wire [1:0] y;
                buf1 b0(.a(a[0]), .y(y[0]));
                buf1 b1(.a(a[1]), .y(y[1]));
                initial begin
                    a = 2'b10; #1;
                    $display("%b", y);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["10"]


class TestSystemTasks:
    def test_display_formats(self):
        lines = outputs(
            """
            module tb;
                reg [7:0] v;
                initial begin
                    v = 8'd200;
                    $display("d=%d h=%h b=%b", v, v, v);
                    $display("pct=100%%");
                    $finish;
                end
            endmodule
            """
        )
        assert lines[0].replace(" ", "") == "d=200h=c8b=11001000"
        assert lines[1] == "pct=100%"

    def test_time_function(self):
        lines = outputs(
            """
            module tb;
                initial begin
                    #42;
                    $display("t=%0d", $time);
                    $finish;
                end
            endmodule
            """
        )
        assert lines == ["t=42"]

    def test_finish_ends_simulation(self):
        result = simulate(
            """
            module tb;
                initial begin
                    #5 $finish;
                end
                initial begin
                    #100 $display("never");
                end
            endmodule
            """
        )
        assert result.end_time == 5
        assert "never" not in result.output_lines


class TestRuntimeRobustness:
    def test_pure_x_feedback_settles_instead_of_oscillating(self):
        # four-state semantics: ~X is X, so an undriven combinational loop
        # reaches a stable all-X fixpoint rather than oscillating
        result = simulate(
            """
            module tb;
                wire a, b;
                assign a = ~b;
                assign b = a;
                initial begin
                    #1 $display("a=%b b=%b", a, b);
                    $finish;
                end
            endmodule
            """
        )
        assert result.output_lines == ["a=x b=x"]

    def test_zero_delay_oscillation_reported_not_crash(self):
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.v",
                    """
                    module tb;
                        reg a, b;
                        initial begin a = 1'b0; b = 1'b0; end
                        always @(b) a = ~b;
                        always @(a) b = a;
                        initial #10 $finish;
                    endmodule
                    """,
                    Language.VERILOG,
                )
            ],
            "tb",
        )
        assert not result.ok
        assert "oscillation" in result.runtime_error
        assert "ERROR: [XSIM" in result.log
