"""Tests for the multi-sample pass@k extension."""

import pytest

from repro.eda.toolchain import Language
from repro.eval.sampling import render_passk_curve, run_sampling_experiment
from repro.evalsuite.suite import build_suite
from repro.llm.profiles import CLAUDE_35_SONNET, GPT_4O
from repro.llm.synthetic import SyntheticDesignLLM, build_defect_plan


@pytest.fixture(scope="module")
def suite():
    return build_suite()


class TestVariants:
    def test_variants_rerank_the_plan(self, suite):
        base = build_defect_plan(GPT_4O, Language.VERILOG, suite)
        variant = build_defect_plan(
            GPT_4O, Language.VERILOG, suite, salt="sample-1"
        )
        defective_base = {p for p, plan in base.items()
                          if plan.has_syntax_defect}
        defective_variant = {p for p, plan in variant.items()
                             if plan.has_syntax_defect}
        assert defective_base != defective_variant
        # but the marginal rates are identical
        assert len(defective_base) == len(defective_variant)

    def test_variant_zero_matches_default(self, suite):
        llm_default = SyntheticDesignLLM(GPT_4O, suite)
        llm_zero = SyntheticDesignLLM(GPT_4O, suite, variant=0)
        plan_a = llm_default.plan(Language.VERILOG)
        plan_b = llm_zero.plan(Language.VERILOG)
        assert {p: pl.has_syntax_defect for p, pl in plan_a.items()} == {
            p: pl.has_syntax_defect for p, pl in plan_b.items()
        }


class TestSamplingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        suite = build_suite().head(10)
        return run_sampling_experiment(
            CLAUDE_35_SONNET, Language.VERILOG, suite, samples=2
        )

    def test_counts_bounded_by_samples(self, result):
        assert all(0 <= c <= 2 for c in result.baseline_correct.values())
        assert all(0 <= c <= 2 for c in result.aivril_correct.values())

    def test_passk_monotone_in_k(self, result):
        assert result.baseline_pass_at(2) >= result.baseline_pass_at(1)
        assert result.aivril_pass_at(2) >= result.aivril_pass_at(1)

    def test_aivril_dominates_baseline_at_same_k(self, result):
        for k in (1, 2):
            assert result.aivril_pass_at(k) >= result.baseline_pass_at(k)

    def test_render_curve(self, result):
        text = render_passk_curve(result)
        assert "pass@k" in text
        assert "AIVRIL2" in text

    def test_invalid_sample_count(self, suite):
        with pytest.raises(ValueError):
            run_sampling_experiment(
                CLAUDE_35_SONNET, Language.VERILOG, suite.head(2), samples=0
            )
