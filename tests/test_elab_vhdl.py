"""Behavioural tests: VHDL constructs through elaboration + simulation."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain

PRELUDE = (
    "library ieee;\n"
    "use ieee.std_logic_1164.all;\n"
    "use ieee.numeric_std.all;\n"
)


def simulate(source: str, top: str = "tb"):
    toolchain = Toolchain()
    result = toolchain.simulate(
        [HdlFile("t.vhd", source, Language.VHDL)], top
    )
    assert result.compile_result.ok, result.log
    assert result.ok, result.log
    return result


def outputs(source: str) -> list[str]:
    return simulate(source).output_lines


class TestConcurrent:
    def test_simple_assignment_tracks_inputs(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal a, b, y : std_logic := '0';
            begin
                y <= a and b;
                stim: process begin
                    a <= '1'; b <= '1';
                    wait for 1 ns;
                    assert y = '1' report "and failed" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_conditional_assignment_priority(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal hi, lo : std_logic := '0';
                signal y : std_logic_vector(1 downto 0);
            begin
                y <= "10" when hi = '1' else
                     "01" when lo = '1' else
                     "00";
                stim: process begin
                    lo <= '1';
                    wait for 1 ns;
                    assert y = "01" report "lo failed" severity error;
                    hi <= '1';
                    wait for 1 ns;
                    assert y = "10" report "priority failed" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_selected_assignment(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal s : std_logic_vector(1 downto 0) := "00";
                signal y : std_logic_vector(3 downto 0);
            begin
                with s select
                    y <= "0001" when "00",
                         "0010" when "01",
                         "1000" when others;
                stim: process begin
                    wait for 1 ns;
                    assert y = "0001" report "case 00" severity error;
                    s <= "01";
                    wait for 1 ns;
                    assert y = "0010" report "case 01" severity error;
                    s <= "11";
                    wait for 1 ns;
                    assert y = "1000" report "others" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_after_delay_clock_generator(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal clk : std_logic := '0';
                signal edges : integer := 0;
            begin
                clk <= not clk after 5 ns;
                counter: process(clk) begin
                    if rising_edge(clk) then
                        edges <= edges + 1;
                    end if;
                end process;
                stim: process begin
                    wait for 23 ns;
                    assert edges = 2 report "edge count wrong" severity error;
                    report "done" severity failure;
                    wait;
                end process;
            end architecture;
            """
        )
        assert "done" in lines[-1]


class TestProcesses:
    def test_signal_assignment_is_delta_delayed(self):
        # classic swap: both reads see pre-update values
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal clk : std_logic := '0';
                signal a : unsigned(3 downto 0) := "0001";
                signal b : unsigned(3 downto 0) := "0010";
            begin
                swap: process(clk) begin
                    if rising_edge(clk) then
                        a <= b;
                        b <= a;
                    end if;
                end process;
                stim: process begin
                    wait for 5 ns; clk <= '1'; wait for 5 ns; clk <= '0';
                    assert a = 2 report "a wrong" severity error;
                    assert b = 1 report "b wrong" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_variables_update_immediately(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal y : unsigned(7 downto 0);
            begin
                stim: process
                    variable v : unsigned(7 downto 0) := (others => '0');
                begin
                    v := v + 1;
                    v := v + v;
                    y <= v;
                    wait for 1 ns;
                    assert y = 2 report "variable semantics" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_for_loop_and_indexing(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal d : std_logic_vector(7 downto 0) := "10110001";
                signal n : unsigned(3 downto 0);
            begin
                popcount: process(d)
                    variable cnt : unsigned(3 downto 0);
                begin
                    cnt := (others => '0');
                    for i in 0 to 7 loop
                        if d(i) = '1' then
                            cnt := cnt + 1;
                        end if;
                    end loop;
                    n <= cnt;
                end process;
                stim: process begin
                    wait for 1 ns;
                    assert n = 4 report "popcount" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_wait_until(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal flag : std_logic := '0';
            begin
                setter: process begin
                    wait for 30 ns;
                    flag <= '1';
                    wait;
                end process;
                stim: process begin
                    wait until flag = '1';
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_case_statement(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal s : std_logic_vector(1 downto 0) := "10";
                signal y : integer := 0;
            begin
                decode: process(s) begin
                    case s is
                        when "00" => y <= 0;
                        when "01" => y <= 1;
                        when "10" => y <= 2;
                        when others => y <= 3;
                    end case;
                end process;
                stim: process begin
                    wait for 1 ns;
                    assert y = 2 report "case decode" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_severity_failure_stops_simulation(self):
        result = simulate(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
            begin
                stim: process begin
                    report "stopping" severity failure;
                    report "unreachable";
                    wait;
                end process;
            end architecture;
            """
        )
        assert result.output_lines == ["FAILURE: stopping"]


class TestTypesAndRanges:
    def test_downto_and_to_indexing(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal down : std_logic_vector(3 downto 0) := "1000";
                signal up : std_logic_vector(0 to 3) := "1000";
            begin
                stim: process begin
                    assert down(3) = '1' report "downto msb" severity error;
                    assert down(0) = '0' report "downto lsb" severity error;
                    assert up(0) = '1' report "to first" severity error;
                    assert up(3) = '0' report "to last" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_slicing(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal v : std_logic_vector(7 downto 0) := "10100101";
            begin
                stim: process begin
                    assert v(7 downto 4) = "1010" report "hi" severity error;
                    assert v(3 downto 0) = "0101" report "lo" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_unsigned_arithmetic_and_conversions(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal a : std_logic_vector(3 downto 0) := "1100";
                signal y : std_logic_vector(4 downto 0);
            begin
                y <= std_logic_vector(resize(unsigned(a), 5) + 7);
                stim: process begin
                    wait for 1 ns;
                    assert unsigned(y) = 19 report "arith" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_attributes(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal v : std_logic_vector(7 downto 2) := (others => '0');
            begin
                stim: process begin
                    assert v'length = 6 report "length" severity error;
                    assert v'high = 7 report "high" severity error;
                    assert v'low = 2 report "low" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_shift_functions(self):
        lines = outputs(
            PRELUDE
            + """
            entity tb is end entity;
            architecture sim of tb is
                signal a : unsigned(7 downto 0) := "00010001";
            begin
                stim: process begin
                    assert shift_left(a, 2) = "01000100"
                        report "shl" severity error;
                    assert shift_right(a, 1) = "00001000"
                        report "shr" severity error;
                    assert rotate_left(a, 4) = "00010001"
                        report "rotl" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]


class TestHierarchy:
    def test_entity_instantiation_with_generic(self):
        lines = outputs(
            PRELUDE
            + """
            entity adder is
                generic (STEP : integer := 1);
                port (
                    a : in std_logic_vector(3 downto 0);
                    y : out std_logic_vector(3 downto 0)
                );
            end entity;
            architecture rtl of adder is
            begin
                y <= std_logic_vector(unsigned(a) + STEP);
            end architecture;

            entity tb is end entity;
            architecture sim of tb is
                signal a, y1, y3 : std_logic_vector(3 downto 0);
            begin
                u1: entity work.adder port map (a => a, y => y1);
                u3: entity work.adder generic map (STEP => 3)
                    port map (a => a, y => y3);
                stim: process begin
                    a <= "0101";
                    wait for 1 ns;
                    assert unsigned(y1) = 6 report "default" severity error;
                    assert unsigned(y3) = 8 report "generic" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]

    def test_output_to_indexed_signal(self):
        lines = outputs(
            PRELUDE
            + """
            entity buf1 is
                port (a : in std_logic; y : out std_logic);
            end entity;
            architecture rtl of buf1 is
            begin
                y <= a;
            end architecture;

            entity tb is end entity;
            architecture sim of tb is
                signal a : std_logic_vector(1 downto 0) := "10";
                signal y : std_logic_vector(1 downto 0);
            begin
                b0: entity work.buf1 port map (a => a(0), y => y(0));
                b1: entity work.buf1 port map (a => a(1), y => y(1));
                stim: process begin
                    wait for 1 ns;
                    assert y = "10" report "wiring" severity error;
                    report "done";
                    wait;
                end process;
            end architecture;
            """
        )
        assert lines == ["done"]
