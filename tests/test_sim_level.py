"""Unit tests for the levelized cone tier (``repro.sim.compile.level``).

The equivalence suite proves the tier is observationally identical; these
tests pin the *structural* contract instead: which networks become cones,
which constructs are quarantined back to ordinary processes, how the
two-state fast path demotes on live X, and how the scheduler accounts for
cone calls.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.hdl.diagnostics import DiagnosticCollector
from repro.sim.kernel import Simulator

_TIER_FLAGS = (
    "REPRO_SIM_INTERP", "REPRO_SIM_NO_LEVEL", "REPRO_SIM_NO_TWOSTATE"
)


@contextmanager
def _pin(**flags):
    """Own every tier flag for the block so ambient settings can't leak in."""
    previous = {flag: os.environ.pop(flag, None) for flag in _TIER_FLAGS}
    os.environ.update(flags)
    try:
        yield
    finally:
        for flag, value in previous.items():
            if value is None:
                os.environ.pop(flag, None)
            else:
                os.environ[flag] = value


def build(source: str, language=Language.VERILOG, top: str = "tb", **flags):
    ext = language.file_extension
    files = [HdlFile(f"t{ext}", source, language)]
    collector = DiagnosticCollector()
    with _pin(**flags):
        design = Toolchain()._build_design(files, top, collector)
    assert design is not None, [str(d) for d in collector.diagnostics]
    return design


def run(design):
    simulator = Simulator(design)
    stats = simulator.run()
    return simulator, stats


CHAIN_V = """
module tb;
    reg [7:0] a, b; wire [7:0] y;
    wire [7:0] t0 = a ^ b;
    wire [7:0] t1 = t0 + a;
    wire [7:0] t2 = t1 & 8'h3F;
    assign y = t2 | t0;
    initial begin
        a = 8'd3; b = 8'd5;
        #1 $display("y=%d", y);
        a = 8'd200;
        #1 $display("y=%d", y);
        $finish;
    end
endmodule
"""


class TestConeFormation:
    def test_chain_collapses_into_one_cone(self):
        design = build(CHAIN_V)
        assert len(design.cones) == 1
        cone = design.cones[0]
        # all four assigns folded into one callable; inputs are the two
        # externally-driven regs
        assert sorted(s.name for s in cone.inputs) == ["a", "b"]
        simulator, stats = run(design)
        assert simulator.output == ["y=15", "y=221"]
        assert stats.cone_calls > 0

    def test_cone_calls_not_counted_as_process_activations(self):
        design = build(CHAIN_V)
        _, stats = run(design)
        interp_design = build(CHAIN_V, REPRO_SIM_INTERP="1")
        _, interp_stats = run(interp_design)
        assert stats.process_activations < interp_stats.process_activations
        assert interp_stats.cone_calls == 0

    def test_no_level_env_flag_disables_cones(self):
        design = build(CHAIN_V, REPRO_SIM_NO_LEVEL="1")
        assert design.cones == []
        simulator, _ = run(design)
        assert simulator.output == ["y=15", "y=221"]

    def test_no_twostate_env_flag_keeps_fourstate_cones(self):
        design = build(CHAIN_V, REPRO_SIM_NO_TWOSTATE="1")
        assert len(design.cones) == 1
        simulator, stats = run(design)
        assert simulator.output == ["y=15", "y=221"]
        assert stats.cone_calls > 0

    def test_vhdl_network_forms_cone(self):
        design = build(
            """
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity tb is end entity;
architecture sim of tb is
    signal a : unsigned(7 downto 0) := x"03";
    signal b : unsigned(7 downto 0) := x"05";
    signal t, y : unsigned(7 downto 0);
begin
    t <= a xor b;
    y <= t + a;
    stim: process begin
        wait for 1 ns;
        assert y = x"09" report "bad y" severity error;
        report "done";
        wait;
    end process;
end architecture;
""",
            Language.VHDL,
        )
        assert len(design.cones) == 1
        simulator, stats = run(design)
        assert simulator.output == ["done"]
        assert stats.cone_calls > 0


class TestQuarantine:
    def test_edge_triggered_always_stays_a_process(self):
        design = build(
            """
module tb;
    reg clk; reg [3:0] q;
    always @(posedge clk) q <= q + 1;
    initial begin
        clk = 0; q = 0;
        repeat (4) begin #1 clk = 1; #1 clk = 0; end
        $display("q=%d", q);
        $finish;
    end
endmodule
"""
        )
        assert design.cones == []
        simulator, _ = run(design)
        assert simulator.output == ["q=4"]

    def test_combinational_cycle_quarantined(self):
        # a zero-delay loop must stay on ordinary processes (and trip the
        # oscillation guard), not wedge cone construction
        design = build(
            """
module tb;
    reg c; wire a, b;
    assign a = b ^ c;
    assign b = a;
    initial begin
        c = 0;
        #1 c = 1;
        #1 $finish;
    end
endmodule
"""
        )
        assert design.cones == []

    def test_impure_assign_quarantined(self):
        design = build(
            """
module tb;
    reg [3:0] a; wire [3:0] y;
    assign y = a ^ $random;
    initial begin
        a = 4'd1;
        #1 $finish;
    end
endmodule
"""
        )
        assert design.cones == []

    def test_externally_written_signal_not_cone_driven(self):
        # y is driven both by the initial block and combinationally —
        # multi-driver nets never join a cone
        design = build(
            """
module tb;
    reg [3:0] a; reg [3:0] y;
    always @(*) y = a + 1;
    initial begin
        a = 4'd1; y = 4'd0;
        #1 $display("y=%d", y);
        $finish;
    end
endmodule
"""
        )
        assert design.cones == []


class TestTwoStateFallback:
    def test_x_input_demotes_then_recovers(self):
        design = build(
            """
module tb;
    reg [7:0] a, b; wire [7:0] t; wire [7:0] y;
    assign t = a ^ b;
    assign y = t + a;
    initial begin
        a = 8'd3; b = 8'd5;
        #1 $display("y=%b", y);
        b = 8'bxxxxxxxx;
        #1 $display("y=%b", y);
        b = 8'd5;
        #1 $display("y=%b", y);
        $finish;
    end
endmodule
"""
        )
        assert len(design.cones) == 1
        simulator, stats = run(design)
        known, x_phase, recovered = simulator.output
        assert known == "y=00001001"
        assert "x" in x_phase
        assert recovered == "y=00001001"
        assert stats.cone_calls > 0


class TestSchedulerAccounting:
    def test_toolchain_metrics_counters(self):
        """simulate() feeds the scheduler counters into the live registry."""
        from repro.obs.sink import MemorySink
        from repro.obs.trace import Tracer, get_tracer, set_tracer

        previous = get_tracer()
        tracer = Tracer(MemorySink())
        set_tracer(tracer)
        try:
            with _pin():
                result = Toolchain().simulate(
                    [HdlFile("t.v", CHAIN_V, Language.VERILOG)], "tb"
                )
            assert result.ok, result.log
            values = {
                name: tracer.metrics.counter(f"sim.{name}").value
                for name in ("activations", "delta_cycles", "cone_calls")
            }
        finally:
            set_tracer(previous)
        assert values["activations"] > 0
        assert values["delta_cycles"] > 0
        assert values["cone_calls"] > 0
