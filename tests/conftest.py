"""Shared pytest configuration: registered Hypothesis profiles.

Property tests inherit their budget from a named profile instead of
per-test ``@settings`` decorators, so one switch tunes the whole suite:

* ``dev`` (default) — small example counts for a fast local signal;
* ``ci`` — the thorough budget nightly / CI runs use.

Select with ``HYPOTHESIS_PROFILE=ci pytest``. Deadlines are explicitly
disabled in both profiles: many properties drive the full toolchain
(parse + elaborate + simulate), whose first example pays cold-start costs
that a per-example deadline would misreport as flakiness.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
