"""Tests for the design layer: mutations, stimulus vectors, testbench gen."""

import pytest
from hypothesis import given, strategies as st

from repro.designs.model import CombModel, DesignSpec, PortSpec, SeqModel, mask
from repro.designs.mutations import (
    Mutation,
    MutationError,
    apply_mutation,
    apply_mutations,
    functional,
    syntax,
)
from repro.designs.tbgen import make_testbench, vhdl_literal, verilog_literal
from repro.designs.vectors import comb_vectors, seq_stimulus
from repro.eda.toolchain import HdlFile, Language, Toolchain


def comb_spec():
    return DesignSpec(
        name="t",
        ports=(
            PortSpec("a", 4, "in"),
            PortSpec("b", 4, "in"),
            PortSpec("y", 4, "out"),
        ),
    )


def seq_spec():
    return DesignSpec(
        name="t",
        ports=(PortSpec("en", 1, "in"), PortSpec("count", 4, "out")),
        clocked=True,
    )


class TestMutations:
    def test_apply_exact(self):
        assert apply_mutation("a & b", syntax("s", "&", "|")) == "a | b"

    def test_missing_anchor_raises(self):
        with pytest.raises(MutationError, match="not found"):
            apply_mutation("abc", syntax("s", "zzz", "y"))

    def test_ambiguous_anchor_raises(self):
        with pytest.raises(MutationError, match="ambiguous"):
            apply_mutation("x x", syntax("s", "x", "y"))

    def test_whitespace_flexible_match(self):
        source = "if (a)\n        q <= d;"
        mutation = functional("f", "if (a)\n    q <= d;", "q <= d;")
        assert apply_mutation(source, mutation) == "q <= d;"

    def test_flexible_match_must_be_unique(self):
        source = "a  b\na   b"
        with pytest.raises(MutationError, match="ambiguous"):
            apply_mutation(source, syntax("s", "a b", "c"))

    def test_apply_mutations_sequential(self):
        out = apply_mutations(
            "one two", [syntax("a", "one", "1"), syntax("b", "two", "2")]
        )
        assert out == "1 2"

    def test_identity_mutation_rejected(self):
        with pytest.raises(ValueError, match="changes nothing"):
            Mutation("syntax", "noop", "x", "x")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Mutation("cosmetic", "d", "a", "b")


class TestVectors:
    def test_small_space_is_exhaustive(self):
        spec = DesignSpec(
            name="t",
            ports=(PortSpec("a", 2, "in"), PortSpec("y", 2, "out")),
        )
        vectors = comb_vectors(spec, "pid")
        assert len(vectors) == 4
        assert sorted(v["a"] for v in vectors) == [0, 1, 2, 3]

    def test_large_space_has_corners_and_randoms(self):
        spec = DesignSpec(
            name="t",
            ports=(PortSpec("a", 8, "in"), PortSpec("b", 8, "in"),
                   PortSpec("y", 8, "out")),
        )
        vectors = comb_vectors(spec, "pid")
        assert {"a": 0, "b": 0} in vectors
        assert {"a": 255, "b": 255} in vectors
        assert len(vectors) > 20

    def test_deterministic_per_pid(self):
        spec = comb_spec()
        assert comb_vectors(spec, "x") == comb_vectors(spec, "x")

    def test_different_pids_differ(self):
        spec = DesignSpec(
            name="t",
            ports=(PortSpec("a", 8, "in"), PortSpec("b", 8, "in"),
                   PortSpec("y", 8, "out")),
        )
        assert comb_vectors(spec, "x") != comb_vectors(spec, "y")

    def test_no_duplicate_vectors(self):
        spec = comb_spec()
        vectors = comb_vectors(spec, "pid")
        keys = [tuple(sorted(v.items())) for v in vectors]
        assert len(keys) == len(set(keys))

    def test_seq_stimulus_within_widths(self):
        spec = seq_spec()
        for cycle in seq_stimulus(spec, "pid"):
            assert set(cycle) == {"en"}
            assert cycle["en"] in (0, 1)

    def test_seq_stimulus_has_solo_bursts(self):
        spec = seq_spec()
        stimulus = seq_stimulus(spec, "pid")
        assert any(c["en"] == 1 for c in stimulus)
        assert any(c["en"] == 0 for c in stimulus)


class TestLiterals:
    @given(st.integers(0, 255))
    def test_verilog_literal_roundtrip(self, value):
        assert verilog_literal(value, 8) == f"8'd{value}"

    def test_vhdl_scalar_literal(self):
        assert vhdl_literal(1, 1) == "'1'"
        assert vhdl_literal(0, 1) == "'0'"

    def test_vhdl_vector_literal(self):
        assert vhdl_literal(5, 4) == '"0101"'

    def test_mask(self):
        assert mask(0x1FF, 8) == 0xFF
        assert mask(-1, 4) == 0xF


class TestTestbenchGeneration:
    """The generated TBs must themselves be valid, runnable HDL."""

    def _run(self, spec, model, rtl, language, **kwargs):
        tb = make_testbench(spec, model, language, "pid", **kwargs)
        toolchain = Toolchain()
        ext = language.file_extension
        result = toolchain.simulate(
            [
                HdlFile(f"top_module{ext}", rtl, language),
                HdlFile(f"tb{ext}", tb, language),
            ],
            "tb",
        )
        assert result.ok, result.log
        return result

    def test_comb_tb_passes_correct_verilog(self):
        spec = comb_spec()
        model = CombModel(lambda i: {"y": i["a"] & i["b"]})
        rtl = (
            "module top_module(input [3:0] a, input [3:0] b,"
            " output [3:0] y); assign y = a & b; endmodule"
        )
        result = self._run(spec, model, rtl, Language.VERILOG)
        assert any("All tests passed" in l for l in result.output_lines)

    def test_comb_tb_fails_wrong_verilog(self):
        spec = comb_spec()
        model = CombModel(lambda i: {"y": i["a"] & i["b"]})
        rtl = (
            "module top_module(input [3:0] a, input [3:0] b,"
            " output [3:0] y); assign y = a | b; endmodule"
        )
        result = self._run(spec, model, rtl, Language.VERILOG)
        assert any("Failed" in l for l in result.output_lines)

    def test_seq_tb_passes_correct_vhdl(self):
        spec = seq_spec()

        def step(s, i):
            nxt = (s + i["en"]) & 0xF
            return nxt, {"count": nxt}

        model = SeqModel(reset=lambda: 0, step=step)
        rtl = (
            "library ieee;\nuse ieee.std_logic_1164.all;\n"
            "use ieee.numeric_std.all;\n"
            "entity top_module is port (clk : in std_logic;"
            " rst : in std_logic; en : in std_logic;"
            " count : out std_logic_vector(3 downto 0)); end entity;\n"
            "architecture rtl of top_module is\n"
            "    signal cnt : unsigned(3 downto 0);\n"
            "begin\n"
            "    process(clk) begin\n"
            "        if rising_edge(clk) then\n"
            "            if rst = '1' then cnt <= (others => '0');\n"
            "            elsif en = '1' then cnt <= cnt + 1; end if;\n"
            "        end if;\n"
            "    end process;\n"
            "    count <= std_logic_vector(cnt);\n"
            "end architecture;"
        )
        result = self._run(spec, model, rtl, Language.VHDL)
        assert any("All tests passed" in l for l in result.output_lines)

    def test_reset_outputs_check_emitted(self):
        spec = seq_spec()
        model = SeqModel(
            reset=lambda: 0, step=lambda s, i: (s, {"count": s})
        )
        tb = make_testbench(
            spec, model, Language.VERILOG, "pid", reset_outputs={"count": 0}
        )
        assert "Test Case 0 Failed" in tb

    def test_max_cases_truncates(self):
        spec = comb_spec()
        model = CombModel(lambda i: {"y": 0})
        full = make_testbench(spec, model, Language.VERILOG, "pid")
        weak = make_testbench(
            spec, model, Language.VERILOG, "pid", max_cases=4
        )
        assert len(weak) < len(full)
        assert "Test Case 4 Failed" in weak
        assert "Test Case 5 Failed" not in weak

    def test_clocked_spec_requires_seq_model(self):
        with pytest.raises(TypeError, match="SeqModel"):
            make_testbench(
                seq_spec(), CombModel(lambda i: {}), Language.VERILOG, "p"
            )

    def test_comb_spec_requires_comb_model(self):
        with pytest.raises(TypeError, match="CombModel"):
            make_testbench(
                comb_spec(),
                SeqModel(reset=lambda: 0, step=lambda s, i: (s, {})),
                Language.VERILOG,
                "p",
            )


class TestSpecValidation:
    def test_port_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            PortSpec("a", 1, "sideways")

    def test_port_width_validated(self):
        with pytest.raises(ValueError, match="width"):
            PortSpec("a", 0, "in")

    def test_spec_partitions_ports(self):
        spec = comb_spec()
        assert [p.name for p in spec.inputs] == ["a", "b"]
        assert [p.name for p in spec.outputs] == ["y"]
        assert spec.input_bits == 8

    def test_spec_port_lookup(self):
        assert comb_spec().port("y").width == 4
        with pytest.raises(KeyError):
            comb_spec().port("nope")
