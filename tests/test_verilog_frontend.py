"""Tests for the Verilog lexer, parser, and analyzer."""

import pytest

from repro.hdl.diagnostics import DiagnosticCollector
from repro.hdl.source import SourceFile
from repro.hdl.tokens import TokenKind
from repro.verilog import ast
from repro.verilog.analyzer import analyze_verilog
from repro.verilog.lexer import lex_verilog
from repro.verilog.parser import parse_number_literal, parse_verilog


def lex(text):
    return lex_verilog(SourceFile("t.v", text))


def parse_ok(text):
    unit, collector = parse_verilog(text)
    assert not collector.has_errors, [d.render() for d in collector.diagnostics]
    return unit


def analyze(text):
    unit, collector = parse_verilog(text)
    source = SourceFile("t.v", text)
    analyze_verilog(unit, source, collector)
    return collector


class TestLexer:
    def test_kinds(self):
        tokens = lex("module m; wire [3:0] w = 4'b1010; endmodule")
        kinds = [t.kind for t in tokens]
        assert TokenKind.KEYWORD in kinds
        assert TokenKind.BASED_NUMBER in kinds
        assert kinds[-1] is TokenKind.EOF

    def test_ident_at_eof_terminates(self):
        # regression: "" in "_$" is True; the lexer must not loop at EOF
        tokens = lex("endmodule")
        assert tokens[0].text == "endmodule"
        assert tokens[-1].kind is TokenKind.EOF

    def test_line_comment_skipped(self):
        tokens = lex("wire w; // trailing comment")
        assert all("comment" not in t.text for t in tokens)

    def test_block_comment_skipped(self):
        tokens = lex("wire /* hidden */ w;")
        assert [t.text for t in tokens[:2]] == ["wire", "w"]

    def test_unterminated_block_comment_reported(self):
        collector = DiagnosticCollector()
        lex_verilog(SourceFile("t.v", "wire w; /* oops"), collector)
        assert collector.has_errors

    def test_directives_skipped(self):
        tokens = lex("`timescale 1ns/1ps\nmodule m; endmodule")
        assert tokens[0].text == "module"

    def test_system_identifier(self):
        tokens = lex("$display")
        assert tokens[0].kind is TokenKind.SYSTEM_ID

    def test_string(self):
        tokens = lex('"hello %d"')
        assert tokens[0].kind is TokenKind.STRING

    def test_unterminated_string_reported(self):
        collector = DiagnosticCollector()
        lex_verilog(SourceFile("t.v", '"oops'), collector)
        assert collector.has_errors

    def test_multichar_operators_maximal_munch(self):
        tokens = lex("a <<< b === c")
        texts = [t.text for t in tokens]
        assert "<<<" in texts and "===" in texts


class TestNumberLiterals:
    def test_plain_decimal_is_32_bits(self):
        value, sized = parse_number_literal("42")
        assert (value.width, value.to_int(), sized) == (32, 42, False)

    def test_sized_binary(self):
        value, sized = parse_number_literal("4'b1010")
        assert (value.width, value.to_int(), sized) == (4, 0b1010, True)

    def test_hex(self):
        value, _ = parse_number_literal("8'hFF")
        assert value.to_int() == 255

    def test_x_digits(self):
        value, _ = parse_number_literal("4'b10x1")
        assert value.has_x

    def test_signed_marker_skipped(self):
        value, _ = parse_number_literal("4'sd3")
        assert value.to_int() == 3

    def test_underscores(self):
        value, _ = parse_number_literal("8'b1010_1010")
        assert value.to_int() == 0xAA


class TestParser:
    def test_simple_module(self):
        unit = parse_ok("module m(input a, output y); assign y = a; endmodule")
        module = unit.module("m")
        assert module.port_names() == ["a", "y"]

    def test_parameterized_header(self):
        unit = parse_ok(
            "module m #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);"
            " assign y = a; endmodule"
        )
        params = [i for i in unit.module("m").items
                  if isinstance(i, ast.ParamDecl)]
        assert params[0].name == "W"

    def test_multiple_declarators_flattened(self):
        unit = parse_ok("module m; wire a, b, c; endmodule")
        decls = [i for i in unit.module("m").items
                 if isinstance(i, ast.NetDecl)]
        assert [d.name for d in decls] == ["a", "b", "c"]

    def test_always_with_edges(self):
        unit = parse_ok(
            "module m(input clk, input rst, output reg q);"
            " always @(posedge clk or negedge rst) q <= 1'b0; endmodule"
        )
        always = next(i for i in unit.module("m").items
                      if isinstance(i, ast.AlwaysBlock))
        assert [s.edge for s in always.sensitivity.items] == ["pos", "neg"]

    def test_star_sensitivity(self):
        unit = parse_ok(
            "module m(input a, output reg y); always @(*) y = a; endmodule"
        )
        always = next(i for i in unit.module("m").items
                      if isinstance(i, ast.AlwaysBlock))
        assert always.sensitivity.star

    def test_case_with_default(self):
        unit = parse_ok(
            "module m(input [1:0] s, output reg y);"
            " always @(*) case (s) 2'b00: y = 0; default: y = 1; endcase"
            " endmodule"
        )
        case = next(
            i.body for i in unit.module("m").items
            if isinstance(i, ast.AlwaysBlock)
        )
        assert isinstance(case, ast.Case)
        assert case.items[-1].labels == ()

    def test_ternary_precedence(self):
        unit = parse_ok(
            "module m(input a, input b, input s, output y);"
            " assign y = s ? a : b; endmodule"
        )
        assign = next(i for i in unit.module("m").items
                      if isinstance(i, ast.ContinuousAssign))
        assert isinstance(assign.value, ast.Ternary)

    def test_concat_and_replication(self):
        unit = parse_ok(
            "module m(input [3:0] a, output [7:0] y);"
            " assign y = {a, {4{a[0]}}}; endmodule"
        )
        assign = next(i for i in unit.module("m").items
                      if isinstance(i, ast.ContinuousAssign))
        assert isinstance(assign.value, ast.Concat)
        assert isinstance(assign.value.parts[1], ast.Replicate)

    def test_instantiation_named_ports(self):
        unit = parse_ok(
            "module sub(input a, output y); assign y = a; endmodule\n"
            "module top(input a, output y); sub s0(.a(a), .y(y)); endmodule"
        )
        inst = next(i for i in unit.module("top").items
                    if isinstance(i, ast.Instantiation))
        assert inst.module == "sub"
        assert [c.port for c in inst.connections] == ["a", "y"]

    def test_instantiation_with_parameters(self):
        unit = parse_ok(
            "module sub #(parameter W = 1)(input a, output y);"
            " assign y = a; endmodule\n"
            "module top(input a, output y);"
            " sub #(.W(4)) s0(.a(a), .y(y)); endmodule"
        )
        inst = next(i for i in unit.module("top").items
                    if isinstance(i, ast.Instantiation))
        assert inst.parameters[0][0] == "W"

    def test_missing_semicolon_reports_and_recovers(self):
        unit, collector = parse_verilog(
            "module m(input a, output y);\n"
            "assign y = a\n"
            "wire extra;\n"
            "endmodule"
        )
        assert collector.has_errors
        assert unit.modules  # the module itself is still produced

    def test_missing_endmodule_reported(self):
        _, collector = parse_verilog("module m(input a, output y); assign y = a;")
        assert any("endmodule" in d.message for d in collector.errors())

    def test_error_message_has_location(self):
        _, collector = parse_verilog("module m;\nassign y = ;\nendmodule")
        diag = next(collector.errors())
        assert diag.location is not None and diag.location.line == 2

    def test_unsupported_construct_reported(self):
        _, collector = parse_verilog(
            "module m; function f; endfunction endmodule"
        )
        assert any("unsupported" in d.message for d in collector.errors())

    def test_non_ansi_ports(self):
        unit = parse_ok(
            "module m(a, y); input a; output y; assign y = a; endmodule"
        )
        assert unit.module("m").port_names() == ["a", "y"]

    def test_indexed_part_select(self):
        unit = parse_ok(
            "module m(input [7:0] a, output [3:0] y);"
            " assign y = a[3 +: 4]; endmodule"
        )
        assign = next(i for i in unit.module("m").items
                      if isinstance(i, ast.ContinuousAssign))
        assert isinstance(assign.value, ast.IndexedPartSelect)


class TestAnalyzer:
    def test_clean_module(self):
        collector = analyze(
            "module m(input a, output y); assign y = a; endmodule"
        )
        assert not collector.has_errors

    def test_undeclared_identifier(self):
        collector = analyze(
            "module m(input a, output y); assign y = b; endmodule"
        )
        assert any("'b' is not declared" in d.message for d in collector.errors())

    def test_assign_to_input(self):
        collector = analyze(
            "module m(input a, output y); assign a = y; endmodule"
        )
        assert any("input port" in d.message for d in collector.errors())

    def test_procedural_assign_to_wire(self):
        collector = analyze(
            "module m(input a, output y); always @(*) y = a; endmodule"
        )
        assert any("non-register" in d.message for d in collector.errors())

    def test_continuous_assign_to_reg(self):
        collector = analyze(
            "module m(input a, output reg y); assign y = a; endmodule"
        )
        assert any("register" in d.message for d in collector.errors())

    def test_unknown_module(self):
        collector = analyze(
            "module top(input a, output y); ghost g0(.a(a), .y(y)); endmodule"
        )
        assert any("unknown module" in d.message for d in collector.errors())

    def test_unknown_port_on_instance(self):
        collector = analyze(
            "module sub(input a, output y); assign y = a; endmodule\n"
            "module top(input a, output y); sub s(.a(a), .z(y)); endmodule"
        )
        assert any("no port named 'z'" in d.message for d in collector.errors())

    def test_too_many_positional_connections(self):
        collector = analyze(
            "module sub(input a, output y); assign y = a; endmodule\n"
            "module top(input a, output y); sub s(a, y, a); endmodule"
        )
        assert any("only" in d.message for d in collector.errors())

    def test_duplicate_declaration(self):
        collector = analyze("module m; wire w; wire w; endmodule")
        assert any("already declared" in d.message for d in collector.errors())

    def test_unknown_system_task(self):
        collector = analyze(
            'module m; initial $dispaly("typo"); endmodule'
        )
        assert any("$dispaly" in d.message for d in collector.errors())

    def test_reg_redeclaration_of_port_is_legal(self):
        collector = analyze(
            "module m(input clk, output q); reg q;"
            " always @(posedge clk) q <= 1'b1; endmodule"
        )
        assert not collector.has_errors
