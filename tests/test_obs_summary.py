"""Tests for the event bus, trace schema validation, and trace summaries.

The acceptance-level check lives here: a recorded sweep trace, summarized
offline, must agree with the live ``SweepMetrics`` the runner aggregated
(task counts, cache hit rate, modeled stage latency) and with the
``ConfigResult`` per-config mean loop iterations — for both a serial and a
``workers=4`` sweep.
"""

import pytest

from repro.eval.runner import ExperimentRunner
from repro.evalsuite.suite import build_suite
from repro.exec.progress import (
    ENGINE_FINISH,
    ENGINE_START,
    TASK_DONE,
    ProgressEvent,
    SweepMetrics,
    attach_metrics,
    progress_adapter,
)
from repro.eda.toolchain import Language
from repro.llm.profiles import CLAUDE_35_SONNET, GPT_4O
from repro.obs import (
    EventBus,
    get_tracer,
    render_trace_summary,
    set_tracer,
    summarize_records,
    summarize_trace,
    validate_record,
)

PROBLEM_COUNT = 6


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


class TestEventBus:
    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e)))
        bus.subscribe(lambda e: seen.append(("second", e)))
        bus.publish("x")
        assert seen == [("first", "x"), ("second", "x")]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        subscriber = bus.subscribe(seen.append)
        assert len(bus) == 1
        bus.unsubscribe(subscriber)
        bus.publish("x")
        assert seen == []
        bus.unsubscribe(subscriber)  # double removal is harmless

    def test_attach_metrics_folds_events(self):
        bus = EventBus()
        metrics = attach_metrics(bus, SweepMetrics(total=2))
        bus.publish(ProgressEvent(kind=TASK_DONE, done=1, total=2))
        bus.publish(ProgressEvent(kind=TASK_DONE, done=2, total=2))
        assert metrics.done == 2
        assert metrics.ok == 2

    def test_progress_adapter_sees_updated_metrics(self):
        bus = EventBus()
        metrics = attach_metrics(bus, SweepMetrics(total=1))
        observed = []
        bus.subscribe(progress_adapter(
            lambda event, m: observed.append((event.kind, m.done)), metrics
        ))
        bus.publish(ProgressEvent(kind=TASK_DONE, done=1, total=1))
        # metrics subscriber ran first, so the callback saw done=1
        assert observed == [(TASK_DONE, 1)]


class TestValidateRecord:
    def test_rejects_unknown_type(self):
        assert validate_record({"type": "mystery"}) != []
        assert validate_record("not a dict") != []

    def test_rejects_non_scalar_attr(self):
        record = {
            "type": "event", "name": "e", "pid": 1, "seq": 0,
            "time": 1.0, "span_id": None, "attrs": {"bad": [1, 2]},
        }
        errors = validate_record(record)
        assert any("non-scalar" in e for e in errors)

    def test_rejects_span_end_before_start(self):
        record = {
            "type": "span", "name": "s", "span_id": "a-1", "parent_id": None,
            "pid": 1, "seq": 0, "start": 10.0, "end": 5.0,
            "wall_seconds": 0.0, "cpu_seconds": 0.0, "status": "ok",
            "error": "", "attrs": {},
        }
        errors = validate_record(record)
        assert any("precedes" in e for e in errors)

    def test_rejects_bad_histogram_counts(self):
        record = {
            "type": "metric", "kind": "histogram", "name": "h", "pid": 1,
            "time": 1.0, "buckets": [1.0, 2.0], "counts": [0, 1],
            "sum": 0.0, "count": 1,
        }
        errors = validate_record(record)
        assert any("counts" in e for e in errors)

    def test_accepts_valid_meta(self):
        record = {
            "type": "meta", "version": 1, "pid": 1, "time": 0.0, "attrs": {},
        }
        assert validate_record(record) == []


def traced_sweep(tmp_path, workers):
    path = tmp_path / f"sweep-{workers}.jsonl"
    runner = ExperimentRunner(
        suite=build_suite().head(PROBLEM_COUNT),
        workers=workers,
        trace_path=str(path),
    )
    results = runner.run_all(
        profiles=[GPT_4O, CLAUDE_35_SONNET], languages=(Language.VERILOG,)
    )
    return runner, results, summarize_trace(path)


class TestSummaryMatchesLiveMetrics:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_trace_summary_agrees_with_sweep_metrics(self, tmp_path, workers):
        runner, results, summary = traced_sweep(tmp_path, workers)
        metrics = runner.metrics
        assert summary.tasks_total == metrics.total
        assert summary.tasks_done == metrics.done
        assert summary.tasks_ok == metrics.ok
        assert summary.tasks_error == metrics.errors
        assert summary.task_retries == metrics.retries
        assert summary.cache_hits == metrics.cache_hits
        assert summary.cache_misses == metrics.cache_misses
        assert summary.cache_hit_rate == metrics.cache_hit_rate
        for stage in ("generation", "syntax", "functional"):
            assert summary.stage_seconds[stage] == pytest.approx(
                metrics.stage_seconds[stage]
            )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_per_config_iterations_match_config_result(
        self, tmp_path, workers
    ):
        _, results, summary = traced_sweep(tmp_path, workers)
        by_key = {c.key: c for c in summary.configs}
        assert len(by_key) == len(results)
        for result in results:
            config = by_key[f"{result.model}/{result.language.value}"]
            assert config.runs == len(result.evaluated)
            assert config.errors == result.error_count
            assert config.mean_syntax_iterations == pytest.approx(
                result.mean_syntax_iterations
            )
            assert config.mean_functional_iterations == pytest.approx(
                result.mean_functional_iterations
            )

    def test_summary_counts_processes_and_records(self, tmp_path):
        _, _, summary = traced_sweep(tmp_path, 4)
        assert summary.process_count > 1
        assert summary.record_count == (
            summary.span_count + summary.event_count
            + summary.metric_count + 1  # + the meta header
        )
        assert summary.compile_count > 0
        assert summary.simulate_count > 0
        assert summary.prompt_tokens > 0


class TestRenderTraceSummary:
    def test_report_mentions_the_key_numbers(self, tmp_path):
        _, _, summary = traced_sweep(tmp_path, 1)
        text = render_trace_summary(summary)
        assert "tasks:" in text
        assert "hit rate" in text
        assert "gpt-4o/verilog" in text
        assert "claude-3.5-sonnet/verilog" in text

    def test_empty_records_render(self):
        text = render_trace_summary(summarize_records([]))
        assert "0" in text

    def test_scheduler_counters_surface_in_summary(self):
        # metric records are cumulative snapshots: the last one per process
        # wins, and processes sum
        def metric(pid, time, name, value):
            return {
                "type": "metric", "pid": pid, "time": time,
                "kind": "counter", "name": name, "value": value,
            }

        records = [
            metric(1, 1.0, "sim.activations", 10),
            metric(1, 2.0, "sim.activations", 25),
            metric(2, 1.0, "sim.activations", 5),
            metric(1, 2.0, "sim.delta_cycles", 40),
            metric(1, 2.0, "sim.cone_calls", 7),
        ]
        summary = summarize_records(records)
        assert summary.sim_activations == 30
        assert summary.sim_delta_cycles == 40
        assert summary.sim_cone_calls == 7
        text = render_trace_summary(summary)
        assert "simulator: 30 activation(s), 40 delta cycle(s), 7 cone call(s)" in text

    def test_batch_counters_surface_in_summary(self):
        def metric(pid, time, name, value):
            return {
                "type": "metric", "pid": pid, "time": time,
                "kind": "counter", "name": name, "value": value,
            }

        records = [
            metric(1, 1.0, "sim.batch_calls", 2),
            metric(1, 2.0, "sim.batch_calls", 3),
            metric(2, 1.0, "sim.batch_vectors", 1024),
            metric(1, 1.0, "sim.batch_vectors", 512),
            metric(1, 1.0, "sim.batch_demotions", 1),
        ]
        summary = summarize_records(records)
        assert summary.sim_batch_calls == 3
        assert summary.sim_batch_vectors == 1536
        assert summary.sim_batch_demotions == 1
        text = render_trace_summary(summary)
        assert "batch tier: 3 call(s), 1536 vector(s), 1 demotion(s)" in text


class TestSummarizeDegenerateInputs:
    def test_no_records(self):
        summary = summarize_records([])
        assert summary.record_count == 0
        assert summary.cache_hit_rate == 0.0
        assert summary.configs == []

    def test_task_span_with_error_status_counts_as_error(self):
        span = {
            "type": "span", "name": "task.problem", "span_id": "a-1",
            "parent_id": None, "pid": 1, "seq": 0, "start": 0.0, "end": 1.0,
            "wall_seconds": 1.0, "cpu_seconds": 0.5, "status": "error",
            "error": "boom",
            "attrs": {"model": "m", "language": "verilog", "problem": "p"},
        }
        summary = summarize_records([span])
        (config,) = summary.configs
        assert config.errors == 1
        assert config.runs == 0
        assert config.mean_syntax_iterations == 0.0


class TestAgentBreakdown:
    """--by-agent: wall time attributed to code/review/verification."""

    @staticmethod
    def span(name, span_id, parent_id=None, *, wall=1.0, attrs=None):
        return {
            "type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "pid": 1, "seq": 0, "start": 0.0,
            "end": wall, "wall_seconds": wall, "cpu_seconds": wall,
            "attrs": attrs or {}, "status": "ok",
        }

    def agent_trace(self):
        task_attrs = {"model": "gpt-4o", "language": "verilog"}
        return [
            self.span("task.problem", "t1", attrs=task_attrs),
            self.span("pipeline.run", "p1", "t1", wall=0.9),
            self.span("pipeline.generate", "g1", "p1", wall=0.2),
            self.span("loop.syntax", "s1", "p1", wall=0.3),
            # nested iteration must NOT be double counted
            self.span("loop.syntax.iteration", "si1", "s1", wall=0.25),
            self.span("loop.functional", "f1", "p1", wall=0.4),
            self.span("pipeline.baseline", "b1", "t1", wall=0.1),
        ]

    def test_maps_spans_to_agents_via_ancestor_walk(self):
        from repro.obs import summarize_agents

        breakdown = summarize_agents(self.agent_trace())
        assert breakdown.seconds["code"] == pytest.approx(0.3)  # gen + base
        assert breakdown.seconds["review"] == pytest.approx(0.3)
        assert breakdown.seconds["verification"] == pytest.approx(0.4)
        assert breakdown.spans == {
            "code": 2, "review": 1, "verification": 1,
        }
        assert breakdown.configs == {
            "gpt-4o/verilog": {
                "code": pytest.approx(0.3),
                "review": pytest.approx(0.3),
                "verification": pytest.approx(0.4),
            }
        }
        assert breakdown.total_seconds == pytest.approx(1.0)

    def test_orphan_agent_span_attributes_to_unknown_config(self):
        from repro.obs import summarize_agents

        records = [self.span("loop.syntax", "s1", "ghost", wall=0.5)]
        breakdown = summarize_agents(records)
        assert breakdown.configs == {"?": {
            "code": 0.0, "review": 0.5, "verification": 0.0,
        }}

    def test_render_lists_agents_and_configs(self):
        from repro.obs import render_agent_breakdown, summarize_agents

        text = render_agent_breakdown(summarize_agents(self.agent_trace()))
        assert "agent breakdown" in text
        assert "code" in text and "review" in text
        assert "verification" in text
        assert "gpt-4o/verilog" in text
        assert "40.0%" in text  # verification share of the total

    def test_real_trace_attributes_all_agent_spans(self, tmp_path):
        from repro.obs import read_trace, summarize_agents

        runner, _, _ = traced_sweep(tmp_path, workers=1)
        breakdown = summarize_agents(read_trace(runner.trace_path))
        # every config in the sweep got all three agents attributed
        assert breakdown.configs
        assert "?" not in breakdown.configs
        for per_config in breakdown.configs.values():
            assert per_config["code"] > 0.0
        assert breakdown.total_seconds > 0.0
