"""Tests for the Markdown report generator."""

import pytest

from repro.eda.toolchain import Language
from repro.eval.report import render_report, write_report
from repro.eval.runner import ConfigResult, ProblemRecord


def _result(language=Language.VERILOG):
    result = ConfigResult(
        model="gpt-4o", model_display="GPT-4o", language=language
    )
    for index in range(4):
        record = ProblemRecord(pid=f"p{index}")
        record.baseline_syntax_ok = True
        record.baseline_functional_ok = index % 2 == 0
        record.aivril_syntax_ok = True
        record.aivril_functional_ok = True
        record.baseline_latency = 4.0
        result.records.append(record)
    return result


class TestReport:
    def test_contains_all_sections(self):
        text = render_report([_result()], problem_count=4, wall_seconds=12.0)
        assert "# AIVRIL2 reproduction report" in text
        assert "## Table 1" in text
        assert "## Table 2" in text
        assert "## Figure 3" in text
        assert "## Per-configuration detail" in text
        assert "| GPT-4o | verilog |" in text

    def test_table2_omitted_without_verilog(self):
        text = render_report([_result(Language.VHDL)])
        assert "## Table 2" not in text
        assert "## Table 1" in text

    def test_metadata_lines(self):
        text = render_report([_result()], problem_count=4, wall_seconds=9.0)
        assert "problems per configuration: **4**" in text
        assert "sweep wall clock: **9 s**" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report([_result()], str(path), problem_count=4)
        assert path.read_text().startswith("# AIVRIL2")

    def test_na_delta_rendered(self):
        result = _result()
        for record in result.records:
            record.baseline_functional_ok = False
        text = render_report([result])
        assert "| N/A |" in text
