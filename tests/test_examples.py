"""Every example script must run to completion and tell its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_reenacts_fig2():
    out = run_example("quickstart.py")
    assert "Agent transcript" in out
    assert "shift_ena" in out
    assert "functional_ok=True" in out
    assert "hidden golden-testbench verdict: PASS" in out


def test_custom_llm_demonstrates_protocol():
    out = run_example("custom_llm.py")
    assert "converged=True" in out
    assert "1 fix request(s)" in out


def test_vhdl_flow_converges():
    out = run_example("vhdl_flow.py")
    assert "xvhdl" in out.lower()
    assert "hidden golden-testbench verdict: PASS" in out


def test_reproduce_table1_quick():
    out = run_example("reproduce_table1.py", "--quick")
    assert "AIVRIL2 (Claude 3.5 Sonnet)" in out
    assert "Average dF" in out


def test_reproduce_table2_quick():
    out = run_example("reproduce_table2.py", "--quick")
    assert "ChipNemo-13B" in out
    assert "vs ChipNemo-13B" in out


def test_reproduce_figure3_quick():
    out = run_example("reproduce_figure3.py", "--quick")
    assert "Worst-case average AIVRIL2 latency" in out


def test_passk_extension_small():
    out = run_example(
        "passk_extension.py", "--samples", "2", "--problems", "8"
    )
    assert "pass@k over 2 samples" in out
