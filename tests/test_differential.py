"""Cross-language differential testing.

Hypothesis generates random combinational expression trees; each tree is
realized as a Verilog module *and* a VHDL entity (every node flattened to
its own intermediate signal), then simulated against a golden testbench
derived from a Python evaluation of the same tree. Any divergence between
the two frontends/elaborators — or between either and plain integer
arithmetic — fails the property.

This is the strongest correctness evidence the simulator substrate has:
the two language flows share only the kernel, so agreement here means the
frontends implement the same semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.model import CombModel, DesignSpec, PortSpec
from repro.designs.tbgen import PASS_MESSAGE, make_testbench
from repro.eda.toolchain import HdlFile, Language, Toolchain

WIDTH = 4
MASK = (1 << WIDTH) - 1


# --------------------------------------------------------------------------
# expression trees
# --------------------------------------------------------------------------

_leaf = st.one_of(
    st.sampled_from([("var", "a"), ("var", "b")]),
    st.integers(0, MASK).map(lambda v: ("const", v)),
)


def _node(children):
    binary = st.sampled_from(["and", "or", "xor", "add", "sub"])
    compare = st.sampled_from(["eq", "lt"])
    return st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(binary, children, children),
        st.tuples(st.just("mux"), compare, children, children,
                  children, children),
    )


expressions = st.recursive(_leaf, _node, max_leaves=12)


def evaluate(tree, env):
    kind = tree[0]
    if kind == "var":
        return env[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "not":
        return evaluate(tree[1], env) ^ MASK
    if kind in ("and", "or", "xor", "add", "sub"):
        lhs = evaluate(tree[1], env)
        rhs = evaluate(tree[2], env)
        return {
            "and": lhs & rhs,
            "or": lhs | rhs,
            "xor": lhs ^ rhs,
            "add": (lhs + rhs) & MASK,
            "sub": (lhs - rhs) & MASK,
        }[kind]
    if kind == "mux":
        __, op, cmp_l, cmp_r, if_true, if_false = tree
        left = evaluate(cmp_l, env)
        right = evaluate(cmp_r, env)
        taken = left == right if op == "eq" else left < right
        return evaluate(if_true if taken else if_false, env)
    raise AssertionError(kind)


# --------------------------------------------------------------------------
# flattened realization (one intermediate signal per node)
# --------------------------------------------------------------------------


class _Flattener:
    def __init__(self):
        self.verilog: list[str] = []
        self.vhdl_decls: list[str] = []
        self.vhdl: list[str] = []
        self._count = 0

    def _fresh(self) -> str:
        name = f"n{self._count}"
        self._count += 1
        self.verilog.append(f"    wire [{WIDTH - 1}:0] {name};")
        self.vhdl_decls.append(
            f"    signal {name} : unsigned({WIDTH - 1} downto 0);"
        )
        return name

    def emit(self, tree) -> str:
        kind = tree[0]
        if kind == "var":
            name = self._fresh()
            self.verilog.append(f"    assign {name} = {tree[1]};")
            self.vhdl.append(f"    {name} <= unsigned({tree[1]});")
            return name
        if kind == "const":
            name = self._fresh()
            self.verilog.append(
                f"    assign {name} = {WIDTH}'d{tree[1]};"
            )
            self.vhdl.append(
                f"    {name} <= to_unsigned({tree[1]}, {WIDTH});"
            )
            return name
        if kind == "not":
            operand = self.emit(tree[1])
            name = self._fresh()
            self.verilog.append(f"    assign {name} = ~{operand};")
            self.vhdl.append(f"    {name} <= not {operand};")
            return name
        if kind in ("and", "or", "xor", "add", "sub"):
            lhs = self.emit(tree[1])
            rhs = self.emit(tree[2])
            name = self._fresh()
            v_op = {"and": "&", "or": "|", "xor": "^", "add": "+",
                    "sub": "-"}[kind]
            vh_op = {"and": "and", "or": "or", "xor": "xor", "add": "+",
                     "sub": "-"}[kind]
            self.verilog.append(
                f"    assign {name} = {lhs} {v_op} {rhs};"
            )
            self.vhdl.append(f"    {name} <= {lhs} {vh_op} {rhs};")
            return name
        if kind == "mux":
            __, op, cmp_l, cmp_r, if_true, if_false = tree
            left = self.emit(cmp_l)
            right = self.emit(cmp_r)
            taken = self.emit(if_true)
            other = self.emit(if_false)
            name = self._fresh()
            v_cmp = "==" if op == "eq" else "<"
            vh_cmp = "=" if op == "eq" else "<"
            self.verilog.append(
                f"    assign {name} = ({left} {v_cmp} {right})"
                f" ? {taken} : {other};"
            )
            self.vhdl.append(
                f"    {name} <= {taken} when {left} {vh_cmp} {right}"
                f" else {other};"
            )
            return name
        raise AssertionError(kind)


def realize(tree) -> tuple[str, str]:
    flattener = _Flattener()
    root = flattener.emit(tree)
    verilog = (
        f"module top_module(input [{WIDTH - 1}:0] a,"
        f" input [{WIDTH - 1}:0] b, output [{WIDTH - 1}:0] y);\n"
        + "\n".join(flattener.verilog)
        + f"\n    assign y = {root};\nendmodule\n"
    )
    vhdl = (
        "library ieee;\nuse ieee.std_logic_1164.all;\n"
        "use ieee.numeric_std.all;\n\n"
        "entity top_module is\n"
        f"    port (a : in std_logic_vector({WIDTH - 1} downto 0);\n"
        f"          b : in std_logic_vector({WIDTH - 1} downto 0);\n"
        f"          y : out std_logic_vector({WIDTH - 1} downto 0));\n"
        "end entity;\n\n"
        "architecture rtl of top_module is\n"
        + "\n".join(flattener.vhdl_decls)
        + "\nbegin\n"
        + "\n".join(flattener.vhdl)
        + f"\n    y <= std_logic_vector({root});\nend architecture;\n"
    )
    return verilog, vhdl


SPEC = DesignSpec(
    name="diff",
    ports=(
        PortSpec("a", WIDTH, "in"),
        PortSpec("b", WIDTH, "in"),
        PortSpec("y", WIDTH, "out"),
    ),
)


def _passes(rtl: str, tb: str, language: Language) -> tuple[bool, str]:
    toolchain = Toolchain()
    ext = language.file_extension
    result = toolchain.simulate(
        [
            HdlFile(f"top_module{ext}", rtl, language),
            HdlFile(f"tb{ext}", tb, language),
        ],
        "tb",
    )
    ok = result.ok and any(PASS_MESSAGE in l for l in result.output_lines)
    return ok, result.log


@settings(max_examples=25, deadline=None)
@given(tree=expressions)
def test_random_expression_agrees_across_languages(tree):
    model = CombModel(
        lambda inputs: {"y": evaluate(tree, inputs) & MASK}
    )
    verilog, vhdl = realize(tree)
    for language, rtl in (
        (Language.VERILOG, verilog),
        (Language.VHDL, vhdl),
    ):
        tb = make_testbench(SPEC, model, language, f"diff-{hash(str(tree))}")
        ok, log = _passes(rtl, tb, language)
        assert ok, (
            f"{language.value} deviates from the Python model for "
            f"tree {tree!r}\n{rtl}\n{log}"
        )


def test_known_tricky_tree():
    """Regression seed: nested mux with equal-compare and subtraction."""
    tree = (
        "mux", "lt",
        ("sub", ("var", "a"), ("var", "b")),
        ("const", 3),
        ("not", ("add", ("var", "a"), ("const", 15))),
        ("mux", "eq", ("var", "a"), ("var", "b"),
         ("const", 0), ("xor", ("var", "a"), ("var", "b"))),
    )
    model = CombModel(lambda inputs: {"y": evaluate(tree, inputs) & MASK})
    verilog, vhdl = realize(tree)
    for language, rtl in (
        (Language.VERILOG, verilog),
        (Language.VHDL, vhdl),
    ):
        tb = make_testbench(SPEC, model, language, "diff-known")
        ok, log = _passes(rtl, tb, language)
        assert ok, log
