"""Tests for the shared HDL infrastructure (source, diagnostics, tokens)."""

import pytest
from hypothesis import given, strategies as st

from repro.hdl.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    render_vivado_log,
)
from repro.hdl.source import SourceFile, SourceSpan
from repro.hdl.tokens import Token, TokenKind


class TestSourceFile:
    def setup_method(self):
        self.source = SourceFile("x.v", "line one\nline two\nline three")

    def test_location_start(self):
        loc = self.source.location(0)
        assert (loc.line, loc.column) == (1, 1)

    def test_location_second_line(self):
        offset = self.source.text.index("two")
        loc = self.source.location(offset)
        assert (loc.line, loc.column) == (2, 6)

    def test_location_past_end_clamps(self):
        loc = self.source.location(10_000)
        assert loc.line == 3

    def test_location_negative_rejected(self):
        with pytest.raises(ValueError):
            self.source.location(-1)

    def test_line_text(self):
        assert self.source.line_text(2) == "line two"

    def test_line_text_last_line(self):
        assert self.source.line_text(3) == "line three"

    def test_line_text_out_of_range(self):
        with pytest.raises(ValueError):
            self.source.line_text(9)

    def test_snippet_single_line(self):
        offset = self.source.text.index("two")
        snippet = self.source.snippet(SourceSpan(offset, offset + 3))
        assert snippet == "line two"

    def test_span_text(self):
        offset = self.source.text.index("two")
        assert self.source.span_text(SourceSpan(offset, offset + 3)) == "two"

    @given(st.text(alphabet="ab\n", max_size=200), st.integers(0, 220))
    def test_location_is_consistent_with_line_text(self, text, offset):
        source = SourceFile("t", text)
        offset = min(offset, len(text))
        loc = source.location(offset)
        # the located line must contain the offset position
        line = source.line_text(loc.line)
        assert loc.column - 1 <= len(line) + 1


class TestSourceSpan:
    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            SourceSpan(5, 3)

    def test_merge(self):
        merged = SourceSpan(3, 5).merge(SourceSpan(10, 12))
        assert (merged.start_offset, merged.end_offset) == (3, 12)

    def test_length(self):
        assert SourceSpan(3, 7).length == 4


class TestDiagnostics:
    def test_collector_counts(self):
        collector = DiagnosticCollector()
        collector.error("C1", "bad thing")
        collector.warning("C2", "odd thing")
        assert collector.error_count == 1
        assert collector.warning_count == 1
        assert collector.has_errors

    def test_emit_with_location(self):
        source = SourceFile("a.v", "module m;\nwire w\nendmodule")
        collector = DiagnosticCollector()
        offset = source.text.index("wire")
        diag = collector.error(
            "VRFC 10-1412", "missing semicolon",
            source=source, span=SourceSpan(offset, offset + 4),
        )
        assert diag.location.line == 2
        assert "wire w" in diag.snippet
        assert "[a.v:2]" in diag.render()

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_extend_merges(self):
        a, b = DiagnosticCollector(), DiagnosticCollector()
        a.error("X", "one")
        b.error("Y", "two")
        a.extend(b)
        assert a.error_count == 2

    def test_render_vivado_log_failure_summary(self):
        collector = DiagnosticCollector()
        collector.error("VRFC 10-1412", "syntax error near ';'")
        log = render_vivado_log(collector.diagnostics, tool="xvlog")
        assert "ERROR: [VRFC 10-1412]" in log
        assert "Analysis failed with 1 error(s)" in log

    def test_render_vivado_log_success_summary(self):
        log = render_vivado_log([], tool="xvhdl")
        assert "Analysis succeeded" in log

    def test_snippet_lines_prefixed(self):
        source = SourceFile("a.v", "assign y = a &;")
        collector = DiagnosticCollector()
        collector.error(
            "VRFC 10-1412", "boom", source=source, span=SourceSpan(0, 6)
        )
        log = render_vivado_log(collector.diagnostics)
        assert "    > assign y = a &;" in log


class TestTokens:
    def test_is_kw(self):
        token = Token(TokenKind.KEYWORD, "module", SourceSpan(0, 6))
        assert token.is_kw("module", "endmodule")
        assert not token.is_kw("wire")

    def test_is_op(self):
        token = Token(TokenKind.OPERATOR, "<=", SourceSpan(0, 2))
        assert token.is_op("<=", "=")

    def test_ident_is_not_keyword(self):
        token = Token(TokenKind.IDENT, "module_x", SourceSpan(0, 8))
        assert not token.is_kw("module")
