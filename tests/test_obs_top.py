"""Tests for the ``repro top`` live dashboard (event folding + rendering)."""

import io
from types import SimpleNamespace

from repro.exec.progress import ProgressEvent
from repro.obs import LiveView


def make_view(**kwargs):
    clock = {"now": 0.0}

    def now():
        return clock["now"]

    stream = io.StringIO()
    view = LiveView(stream=stream, now=now, **kwargs)
    return view, stream, clock


def done_event(key, done=1, total=4, value=None):
    outcome = SimpleNamespace(status="ok", value=value)
    return ProgressEvent(
        kind="task-done", done=done, total=total, key=key, outcome=outcome
    )


class TestFolding:
    def test_engine_start_sets_total(self):
        view, _, _ = make_view()
        view.fold(ProgressEvent(kind="engine-start", total=12))
        assert view.total == 12

    def test_task_done_updates_rows(self):
        view, _, _ = make_view()
        view.fold(done_event("gpt-4o/verilog/gates_and", done=1))
        view.fold(done_event("gpt-4o/verilog/gates_or", done=2))
        view.fold(done_event("gpt-4o/vhdl/gates_and", done=3))
        assert view.done == 3
        assert view.configs["gpt-4o/verilog"].done == 2
        assert view.configs["gpt-4o/vhdl"].done == 1

    def test_task_error_counts_failure(self):
        view, _, _ = make_view()
        outcome = SimpleNamespace(status="timeout", value=None)
        view.fold(ProgressEvent(
            kind="task-error", done=1, total=2, key="a/b/c",
            outcome=outcome,
        ))
        assert view.errors == 1
        assert view.configs["a/b"].failed == 1
        assert view.classes == {"task-timeout": 1}

    def test_retry_counts(self):
        view, _, _ = make_view()
        view.fold(ProgressEvent(kind="task-retry", key="a/b/c"))
        assert view.retries == 1

    def test_fuzz_payload_classifies(self):
        view, _, _ = make_view()
        view.fold(done_event("qa/s0/p0", value={"class": "ok"}))
        view.fold(done_event("qa/s0/p1", value={"class": "sim_mismatch"}))
        assert view.classes == {"ok": 1, "sim_mismatch": 1}

    def test_formal_payload_classifies_verdicts(self):
        view, _, _ = make_view()
        view.fold(done_event("formal/s0/p0", value={
            "verilog": "proved", "vhdl": "refuted",
        }))
        assert view.classes == {
            "verilog:proved": 1, "vhdl:refuted": 1,
        }

    def test_sweep_payload_folds_cache_and_functional(self):
        view, _, _ = make_view()
        payload = SimpleNamespace(
            cache_delta=SimpleNamespace(hits=3, misses=1),
            record=SimpleNamespace(aivril_functional_ok=True),
        )
        view.fold(done_event("m/l/p", value=payload))
        assert view.cache_hits == 3
        assert view.cache_misses == 1
        assert view.cache_hit_rate == 0.75
        assert view.classes == {"functional-pass": 1}


class TestRendering:
    def test_render_text_contains_progress_and_rows(self):
        view, _, _ = make_view(title="repro top sweep")
        view.fold(ProgressEvent(kind="engine-start", total=4))
        view.fold(done_event("gpt-4o/verilog/gates_and"))
        text = view.render_text()
        assert "repro top sweep" in text
        assert "1/4 tasks" in text
        assert "gpt-4o/verilog" in text

    def test_render_throttles_by_interval(self):
        view, stream, clock = make_view(interval=1.0)
        view(done_event("a/b/c", done=1))
        first = stream.getvalue()
        assert first  # first render always fires
        view(done_event("a/b/d", done=2))
        assert stream.getvalue() == first  # throttled
        clock["now"] = 2.0
        view(done_event("a/b/e", done=3))
        assert len(stream.getvalue()) > len(first)

    def test_engine_finish_forces_render(self):
        view, stream, _ = make_view(interval=1000.0)
        view(done_event("a/b/c", done=1))
        before = stream.getvalue()
        view(ProgressEvent(kind="engine-finish", done=1, total=1))
        assert len(stream.getvalue()) > len(before)

    def test_non_tty_stream_gets_plain_lines(self):
        view, stream, _ = make_view()
        view.render(force=True)
        assert "\x1b[" not in stream.getvalue()

    def test_classes_line_renders(self):
        view, _, _ = make_view()
        view.fold(done_event("qa/s0/p0", value={"class": "crash"}))
        assert "classes: crash=1" in view.render_text()


class TestBusIntegration:
    def test_live_view_subscribes_to_a_fuzz_campaign(self):
        from repro.obs import EventBus
        from repro.qa.fuzz import run_fuzz

        bus = EventBus()
        view, stream, clock = make_view(title="repro top fuzz")
        bus.subscribe(view)
        report = run_fuzz(1, 3, workers=1, bus=bus)
        view.finish()
        assert view.done == 3
        assert sum(view.classes.values()) == len(report.results)
        assert "repro top fuzz" in stream.getvalue()
