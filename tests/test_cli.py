"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_families_and_problems(self):
        code, text = run_cli("list")
        assert code == 0
        assert "gates" in text
        assert "gates_and" in text

    def test_family_filter(self):
        code, text = run_cli("list", "--family", "fsm")
        assert code == 0
        assert "fsm_detect101" in text
        assert "gates_and" not in text

    def test_unknown_family(self):
        code, text = run_cli("list", "--family", "nope")
        assert code == 1
        assert "unknown family" in text


class TestShow:
    def test_spec(self):
        code, text = run_cli("show", "gates_and")
        assert code == 0
        assert "AND gate" in text

    def test_reference_verilog(self):
        code, text = run_cli("show", "gates_and", "--what", "reference")
        assert code == 0
        assert "module top_module" in text

    def test_reference_vhdl(self):
        code, text = run_cli(
            "show", "gates_and", "--what", "reference", "--language", "vhdl"
        )
        assert code == 0
        assert "entity top_module" in text

    def test_testbench(self):
        code, text = run_cli("show", "gates_and", "--what", "testbench")
        assert code == 0
        assert "All tests passed successfully!" in text

    def test_unknown_problem(self):
        code, text = run_cli("show", "ghost_problem")
        assert code == 1

    def test_bad_language_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("show", "gates_and", "--language", "klingon")


class TestRun:
    def test_run_reports_verdict(self):
        code, text = run_cli("run", "gates_and", "--model", "claude-3.5-sonnet")
        assert "golden_tb=" in text
        assert code in (0, 2)

    def test_run_with_transcript(self):
        code, text = run_cli("run", "gates_buf", "--transcript")
        assert "[CodeAgent]" in text

    def test_unknown_model(self):
        code, text = run_cli("run", "gates_and", "--model", "gpt-9")
        assert code == 1
        assert "known" in text


class TestValidate:
    def test_validate_subset(self):
        code, text = run_cli(
            "validate", "--limit", "2", "--language", "verilog"
        )
        assert code == 0
        assert "0 failure(s)" in text


class TestSweep:
    def test_sweep_table1_subset(self):
        code, text = run_cli("sweep", "--artifact", "table1", "--limit", "8")
        assert code == 0
        assert "AIVRIL2" in text
        assert "Average dF" in text

    def test_sweep_figure3_subset(self):
        code, text = run_cli("sweep", "--artifact", "figure3", "--limit", "8")
        assert code == 0
        assert "Worst-case" in text

    def test_sweep_with_trace_records_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, text = run_cli(
            "sweep", "--artifact", "table2", "--limit", "4",
            "--trace", str(path),
        )
        assert code == 0
        assert path.exists()
        first = path.read_text().splitlines()[0]
        assert '"type":"meta"' in first


class TestTrace:
    def record_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "sweep", "--artifact", "table2", "--limit", "4",
            "--workers", "2", "--trace", str(path),
        )
        assert code == 0
        return path

    def test_trace_validate_ok(self, tmp_path):
        path = self.record_trace(tmp_path)
        code, text = run_cli("trace", "validate", str(path))
        assert code == 0
        assert "all schema-valid" in text

    def test_trace_validate_flags_corruption(self, tmp_path):
        path = self.record_trace(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"type": "span", "name":')  # truncated line
        code, text = run_cli("trace", "validate", str(path))
        assert code == 1
        assert "INVALID" in text

    def test_trace_summarize(self, tmp_path):
        path = self.record_trace(tmp_path)
        code, text = run_cli("trace", "summarize", str(path))
        assert code == 0
        assert "tasks: 12/12 done" in text
        assert "hit rate" in text
        assert "llama3-70b/verilog" in text

    def test_trace_missing_file(self, tmp_path):
        code, text = run_cli(
            "trace", "summarize", str(tmp_path / "ghost.jsonl")
        )
        assert code == 1
        assert "cannot read trace" in text


class TestLogLevel:
    def test_log_level_accepted(self, tmp_path, capsys):
        code, text = run_cli("--log-level", "warning", "list")
        assert code == 0
        assert "gates" in text

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("--log-level", "loud", "list")


class TestQa:
    def failing_case_path(self, tmp_path):
        from repro.designs.mutations import functional
        from repro.eda.toolchain import Language
        from repro.qa import CaseMutation, QaCase, QaSpec, node_name, save_case

        tree = ["add", ["var", "a0"], ["var", "a1"]]
        a0, a1 = node_name(["var", "a0"]), node_name(["var", "a1"])
        add = node_name(tree)
        case = QaCase(
            spec=QaSpec(
                name="cli_case", width=4, inputs=("a0", "a1"),
                outputs=(("y0", tree),),
            ),
            mutations=(CaseMutation(Language.VERILOG, functional(
                "add becomes sub",
                f"assign {add} = {a0} + {a1};",
                f"assign {add} = {a0} - {a1};",
            )),),
        )
        return save_case(case, tmp_path)

    def test_fuzz_smoke(self):
        code, text = run_cli("qa", "fuzz", "--seed", "0", "--count", "3")
        assert code == 0
        assert "divergences: none" in text
        assert "seed=0 count=3" in text

    def test_fuzz_writes_trace(self, tmp_path):
        trace = tmp_path / "qa.jsonl"
        code, _ = run_cli(
            "qa", "fuzz", "--seed", "0", "--count", "2",
            "--trace", str(trace),
        )
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0
        code, text = run_cli("trace", "summarize", str(trace))
        assert code == 0

    def test_replay_default_corpus(self):
        code, text = run_cli("qa", "replay")
        assert code == 0
        assert "0 mismatch(es)" in text
        assert "PASS corpus_crash_oscillation" in text

    def test_replay_empty_corpus(self, tmp_path):
        code, text = run_cli("qa", "replay", "--corpus", str(tmp_path))
        assert code == 1
        assert "no corpus cases" in text

    def test_reduce_writes_reduced_case(self, tmp_path):
        from repro.qa import FailureClass, load_case

        case_file = self.failing_case_path(tmp_path)
        out_file = tmp_path / "reduced.json"
        code, text = run_cli(
            "qa", "reduce", str(case_file), "-o", str(out_file),
        )
        assert code == 0
        assert "qa reduce: verilog-mismatch" in text
        reduced = load_case(out_file)
        assert reduced.expected_class is FailureClass.VERILOG_MISMATCH
        assert reduced.spec.node_count <= 5

    def test_reduce_rejects_passing_case(self, tmp_path):
        from repro.qa import QaCase, QaSpec, save_case

        case = QaCase(spec=QaSpec(
            name="fine", width=4, inputs=("a0",),
            outputs=(("y0", ["var", "a0"]),),
        ))
        path = save_case(case, tmp_path)
        code, text = run_cli("qa", "reduce", str(path))
        assert code == 1
        assert "nothing to reduce" in text

    def test_reduce_missing_file(self, tmp_path):
        code, text = run_cli("qa", "reduce", str(tmp_path / "ghost.json"))
        assert code == 1
        assert "cannot load case" in text

    def test_fuzz_with_formal_pass(self):
        code, text = run_cli(
            "qa", "fuzz", "--seed", "0", "--count", "3", "--formal"
        )
        assert code == 0
        assert "formal:" in text
        assert "proved=6" in text


class TestFormal:
    def test_prove_corpus(self):
        code, text = run_cli("formal", "prove")
        assert code == 0
        assert "0 indecisive verdict(s)" in text
        assert "corpus_formal_refuted_comb [verilog]: refuted" in text
        assert "witness" in text

    def test_prove_empty_corpus(self, tmp_path):
        code, text = run_cli("formal", "prove", "--corpus", str(tmp_path))
        assert code == 1
        assert "no corpus cases" in text

    def test_prove_generated_programs(self):
        code, text = run_cli(
            "formal", "prove", "--seed", "0", "--count", "4",
            "--workers", "2",
        )
        assert code == 0
        assert "proved=8" in text
        assert "0 failure(s)" in text

    def test_check_generated_programs(self):
        code, text = run_cli("formal", "check", "--seed", "2", "--count", "3")
        assert code == 0
        assert "0 violation(s)" in text
        assert "reset=proved x-freedom=proved" in text

    def test_check_flags_contract_violation(self, tmp_path):
        # a clocked case whose Verilog rendering loses its reset
        from repro.qa import QaCase, QaSpec, node_name, save_case
        from repro.qa.oracle import CaseMutation, case_sources
        from repro.designs.mutations import functional
        from repro.eda.toolchain import Language

        tree = ["add", ["var", "y0"], ["var", "a0"]]
        case = QaCase(
            spec=QaSpec(
                name="cli_no_reset", width=4, inputs=("a0",),
                outputs=(("y0", tree),), clocked=True,
            ),
            mutations=(CaseMutation(Language.VERILOG, functional(
                "drop the reset",
                "y0 <= 4'd0;",
                "",
            )),),
        )
        path = save_case(case, tmp_path)
        code, text = run_cli("formal", "check", str(path))
        assert code == 1
        assert "reset=refuted" in text
        assert "violation(s)" in text

    def test_check_missing_case_file(self, tmp_path):
        code, text = run_cli("formal", "check", str(tmp_path / "ghost.json"))
        assert code == 1
        assert "cannot load case" in text
