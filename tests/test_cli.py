"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_families_and_problems(self):
        code, text = run_cli("list")
        assert code == 0
        assert "gates" in text
        assert "gates_and" in text

    def test_family_filter(self):
        code, text = run_cli("list", "--family", "fsm")
        assert code == 0
        assert "fsm_detect101" in text
        assert "gates_and" not in text

    def test_unknown_family(self):
        code, text = run_cli("list", "--family", "nope")
        assert code == 1
        assert "unknown family" in text


class TestShow:
    def test_spec(self):
        code, text = run_cli("show", "gates_and")
        assert code == 0
        assert "AND gate" in text

    def test_reference_verilog(self):
        code, text = run_cli("show", "gates_and", "--what", "reference")
        assert code == 0
        assert "module top_module" in text

    def test_reference_vhdl(self):
        code, text = run_cli(
            "show", "gates_and", "--what", "reference", "--language", "vhdl"
        )
        assert code == 0
        assert "entity top_module" in text

    def test_testbench(self):
        code, text = run_cli("show", "gates_and", "--what", "testbench")
        assert code == 0
        assert "All tests passed successfully!" in text

    def test_unknown_problem(self):
        code, text = run_cli("show", "ghost_problem")
        assert code == 1

    def test_bad_language_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("show", "gates_and", "--language", "klingon")


class TestRun:
    def test_run_reports_verdict(self):
        code, text = run_cli("run", "gates_and", "--model", "claude-3.5-sonnet")
        assert "golden_tb=" in text
        assert code in (0, 2)

    def test_run_with_transcript(self):
        code, text = run_cli("run", "gates_buf", "--transcript")
        assert "[CodeAgent]" in text

    def test_unknown_model(self):
        code, text = run_cli("run", "gates_and", "--model", "gpt-9")
        assert code == 1
        assert "known" in text


class TestValidate:
    def test_validate_subset(self):
        code, text = run_cli(
            "validate", "--limit", "2", "--language", "verilog"
        )
        assert code == 0
        assert "0 failure(s)" in text


class TestSweep:
    def test_sweep_table1_subset(self):
        code, text = run_cli("sweep", "--artifact", "table1", "--limit", "8")
        assert code == 0
        assert "AIVRIL2" in text
        assert "Average dF" in text

    def test_sweep_figure3_subset(self):
        code, text = run_cli("sweep", "--artifact", "figure3", "--limit", "8")
        assert code == 0
        assert "Worst-case" in text

    def test_sweep_with_trace_records_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, text = run_cli(
            "sweep", "--artifact", "table2", "--limit", "4",
            "--trace", str(path),
        )
        assert code == 0
        assert path.exists()
        first = path.read_text().splitlines()[0]
        assert '"type":"meta"' in first


class TestTrace:
    def record_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "sweep", "--artifact", "table2", "--limit", "4",
            "--workers", "2", "--trace", str(path),
        )
        assert code == 0
        return path

    def test_trace_validate_ok(self, tmp_path):
        path = self.record_trace(tmp_path)
        code, text = run_cli("trace", "validate", str(path))
        assert code == 0
        assert "all schema-valid" in text

    def test_trace_validate_flags_corruption(self, tmp_path):
        path = self.record_trace(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"type": "span", "name":')  # truncated line
        code, text = run_cli("trace", "validate", str(path))
        assert code == 1
        assert "INVALID" in text

    def test_trace_summarize(self, tmp_path):
        path = self.record_trace(tmp_path)
        code, text = run_cli("trace", "summarize", str(path))
        assert code == 0
        assert "tasks: 12/12 done" in text
        assert "hit rate" in text
        assert "llama3-70b/verilog" in text

    def test_trace_missing_file(self, tmp_path):
        code, text = run_cli(
            "trace", "summarize", str(tmp_path / "ghost.jsonl")
        )
        assert code == 1
        assert "cannot read trace" in text


class TestLogLevel:
    def test_log_level_accepted(self, tmp_path, capsys):
        code, text = run_cli("--log-level", "warning", "list")
        assert code == 0
        assert "gates" in text

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("--log-level", "loud", "list")


class TestQa:
    def failing_case_path(self, tmp_path):
        from repro.designs.mutations import functional
        from repro.eda.toolchain import Language
        from repro.qa import CaseMutation, QaCase, QaSpec, node_name, save_case

        tree = ["add", ["var", "a0"], ["var", "a1"]]
        a0, a1 = node_name(["var", "a0"]), node_name(["var", "a1"])
        add = node_name(tree)
        case = QaCase(
            spec=QaSpec(
                name="cli_case", width=4, inputs=("a0", "a1"),
                outputs=(("y0", tree),),
            ),
            mutations=(CaseMutation(Language.VERILOG, functional(
                "add becomes sub",
                f"assign {add} = {a0} + {a1};",
                f"assign {add} = {a0} - {a1};",
            )),),
        )
        return save_case(case, tmp_path)

    def test_fuzz_smoke(self):
        code, text = run_cli("qa", "fuzz", "--seed", "0", "--count", "3")
        assert code == 0
        assert "divergences: none" in text
        assert "seed=0 count=3" in text

    def test_fuzz_writes_trace(self, tmp_path):
        trace = tmp_path / "qa.jsonl"
        code, _ = run_cli(
            "qa", "fuzz", "--seed", "0", "--count", "2",
            "--trace", str(trace),
        )
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0
        code, text = run_cli("trace", "summarize", str(trace))
        assert code == 0

    def test_replay_default_corpus(self):
        code, text = run_cli("qa", "replay")
        assert code == 0
        assert "0 mismatch(es)" in text
        assert "PASS corpus_crash_oscillation" in text

    def test_replay_empty_corpus(self, tmp_path):
        code, text = run_cli("qa", "replay", "--corpus", str(tmp_path))
        assert code == 1
        assert "no corpus cases" in text

    def test_reduce_writes_reduced_case(self, tmp_path):
        from repro.qa import FailureClass, load_case

        case_file = self.failing_case_path(tmp_path)
        out_file = tmp_path / "reduced.json"
        code, text = run_cli(
            "qa", "reduce", str(case_file), "-o", str(out_file),
        )
        assert code == 0
        assert "qa reduce: verilog-mismatch" in text
        reduced = load_case(out_file)
        assert reduced.expected_class is FailureClass.VERILOG_MISMATCH
        assert reduced.spec.node_count <= 5

    def test_reduce_rejects_passing_case(self, tmp_path):
        from repro.qa import QaCase, QaSpec, save_case

        case = QaCase(spec=QaSpec(
            name="fine", width=4, inputs=("a0",),
            outputs=(("y0", ["var", "a0"]),),
        ))
        path = save_case(case, tmp_path)
        code, text = run_cli("qa", "reduce", str(path))
        assert code == 1
        assert "nothing to reduce" in text

    def test_reduce_missing_file(self, tmp_path):
        code, text = run_cli("qa", "reduce", str(tmp_path / "ghost.json"))
        assert code == 1
        assert "cannot load case" in text

    def test_fuzz_with_formal_pass(self):
        code, text = run_cli(
            "qa", "fuzz", "--seed", "0", "--count", "3", "--formal"
        )
        assert code == 0
        assert "formal:" in text
        assert "proved=6" in text


class TestFormal:
    def test_prove_corpus(self):
        code, text = run_cli("formal", "prove")
        assert code == 0
        assert "0 indecisive verdict(s)" in text
        assert "corpus_formal_refuted_comb [verilog]: refuted" in text
        assert "witness" in text

    def test_prove_empty_corpus(self, tmp_path):
        code, text = run_cli("formal", "prove", "--corpus", str(tmp_path))
        assert code == 1
        assert "no corpus cases" in text

    def test_prove_generated_programs(self):
        code, text = run_cli(
            "formal", "prove", "--seed", "0", "--count", "4",
            "--workers", "2",
        )
        assert code == 0
        assert "proved=8" in text
        assert "0 failure(s)" in text

    def test_check_generated_programs(self):
        code, text = run_cli("formal", "check", "--seed", "2", "--count", "3")
        assert code == 0
        assert "0 violation(s)" in text
        assert "reset=proved x-freedom=proved" in text

    def test_check_flags_contract_violation(self, tmp_path):
        # a clocked case whose Verilog rendering loses its reset
        from repro.qa import QaCase, QaSpec, node_name, save_case
        from repro.qa.oracle import CaseMutation, case_sources
        from repro.designs.mutations import functional
        from repro.eda.toolchain import Language

        tree = ["add", ["var", "y0"], ["var", "a0"]]
        case = QaCase(
            spec=QaSpec(
                name="cli_no_reset", width=4, inputs=("a0",),
                outputs=(("y0", tree),), clocked=True,
            ),
            mutations=(CaseMutation(Language.VERILOG, functional(
                "drop the reset",
                "y0 <= 4'd0;",
                "",
            )),),
        )
        path = save_case(case, tmp_path)
        code, text = run_cli("formal", "check", str(path))
        assert code == 1
        assert "reset=refuted" in text
        assert "violation(s)" in text

    def test_check_missing_case_file(self, tmp_path):
        code, text = run_cli("formal", "check", str(tmp_path / "ghost.json"))
        assert code == 1
        assert "cannot load case" in text


class TestObsCommands:
    """The live-telemetry surface: spool, export, analytics, gate, top."""

    def record_sweep(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        spool = tmp_path / "spool.jsonl"
        code, _ = run_cli(
            "sweep", "--artifact", "table2", "--limit", "4",
            "--workers", "2", "--trace", str(trace), "--spool", str(spool),
        )
        assert code == 0
        return trace, spool

    def test_obs_validate_ok(self, tmp_path):
        _, spool = self.record_sweep(tmp_path)
        code, text = run_cli("obs", "validate", str(spool))
        assert code == 0
        assert "all schema-valid" in text

    def test_obs_validate_flags_corruption(self, tmp_path):
        _, spool = self.record_sweep(tmp_path)
        with open(spool, "a") as handle:
            handle.write('{"type": "metrics-snapshot"\n')
        code, text = run_cli("obs", "validate", str(spool))
        assert code == 1
        assert "INVALID" in text

    def test_obs_export_prometheus(self, tmp_path):
        _, spool = self.record_sweep(tmp_path)
        code, text = run_cli("obs", "export", str(spool))
        assert code == 0
        assert "# TYPE repro_pipeline_runs counter" in text
        assert "repro_pipeline_runs 12" in text
        assert '_bucket{le="+Inf"}' in text

    def test_obs_export_health(self, tmp_path):
        import json

        _, spool = self.record_sweep(tmp_path)
        code, text = run_cli("obs", "export", "--format", "health",
                             str(spool))
        assert code == 0
        health = json.loads(text)
        assert health["status"] == "ok"
        assert health["metrics"]["pipeline.runs"]["value"] == 12

    def test_obs_export_missing_file(self, tmp_path):
        code, text = run_cli("obs", "export", str(tmp_path / "ghost"))
        assert code == 1
        assert "cannot read spool" in text

    def test_trace_critical_path(self, tmp_path):
        trace, _ = self.record_sweep(tmp_path)
        code, text = run_cli("trace", "critical-path", str(trace))
        assert code == 0
        assert "sweep.run" in text
        assert "self times sum to the root wall" in text

    def test_trace_flame_to_file(self, tmp_path):
        trace, _ = self.record_sweep(tmp_path)
        folded = tmp_path / "folded.txt"
        code, text = run_cli(
            "trace", "flame", str(trace), "-o", str(folded)
        )
        assert code == 0
        lines = folded.read_text().splitlines()
        assert lines
        assert any(line.startswith("sweep.run;engine.run") for line in lines)
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 0

    def test_trace_summarize_by_agent(self, tmp_path):
        trace, _ = self.record_sweep(tmp_path)
        code, text = run_cli(
            "trace", "summarize", "--by-agent", str(trace)
        )
        assert code == 0
        assert "agent breakdown" in text
        for agent in ("code", "review", "verification"):
            assert agent in text

    def test_qa_fuzz_spool(self, tmp_path):
        spool = tmp_path / "fuzz.spool.jsonl"
        code, _ = run_cli(
            "qa", "fuzz", "--seed", "1", "--count", "3",
            "--spool", str(spool),
        )
        assert code == 0
        code, text = run_cli("obs", "export", str(spool))
        assert code == 0
        assert "repro_qa_fuzz_programs 3" in text


class TestBenchCheck:
    def seed_reports(self, tmp_path, *, slowdown=1.0):
        import json

        report = {"verilog": {"compiled_ms": 4.0, "speedup": 2.0}}
        base = tmp_path / "baselines"
        fresh = tmp_path / "fresh"
        base.mkdir()
        fresh.mkdir()
        (base / "BENCH_sim.json").write_text(json.dumps(report))
        report = json.loads(json.dumps(report))
        report["verilog"]["compiled_ms"] *= slowdown
        (fresh / "BENCH_sim.json").write_text(json.dumps(report))
        return base, fresh

    def test_unchanged_baseline_passes(self, tmp_path):
        base, fresh = self.seed_reports(tmp_path)
        code, text = run_cli(
            "bench", "check", "--baselines", str(base), "--fresh",
            str(fresh),
        )
        assert code == 0
        assert "(PASS)" in text

    def test_injected_slowdown_fails(self, tmp_path):
        base, fresh = self.seed_reports(tmp_path, slowdown=2.0)
        code, text = run_cli(
            "bench", "check", "--baselines", str(base), "--fresh",
            str(fresh),
        )
        assert code == 1
        assert "REGRESSED" in text
        assert "(FAIL)" in text

    def test_warn_only_downgrades_failure(self, tmp_path):
        base, fresh = self.seed_reports(tmp_path, slowdown=2.0)
        code, text = run_cli(
            "bench", "check", "--baselines", str(base), "--fresh",
            str(fresh), "--warn-only",
        )
        assert code == 0
        assert "REGRESSED" in text
        assert "(PASS)" in text

    def test_missing_baseline_dir_errors(self, tmp_path):
        code, text = run_cli(
            "bench", "check", "--baselines", str(tmp_path / "none"),
            "--fresh", str(tmp_path),
        )
        assert code == 1
        assert "no BENCH_" in text

    def test_repo_baselines_match_themselves(self):
        code, text = run_cli(
            "bench", "check", "--fresh", "benchmarks/baselines",
        )
        assert code == 0
        assert "(PASS)" in text


class TestTop:
    def test_top_fuzz_renders_dashboard(self, capsys):
        code, text = run_cli(
            "top", "fuzz", "--seed", "1", "--count", "3"
        )
        assert code == 0
        assert "qa fuzz: seed=1" in text
        dashboard = capsys.readouterr().err
        assert "repro top fuzz" in dashboard
        assert "3/3 tasks" in dashboard

    def test_top_sweep_renders_dashboard(self, capsys, tmp_path):
        spool = tmp_path / "spool.jsonl"
        code, text = run_cli(
            "top", "sweep", "--limit", "2", "--spool", str(spool)
        )
        assert code == 0
        assert "sweep:" in text
        dashboard = capsys.readouterr().err
        assert "repro top sweep" in dashboard
        assert spool.exists()

    def test_top_prove_renders_dashboard(self, capsys):
        code, text = run_cli(
            "top", "prove", "--seed", "0", "--count", "2"
        )
        assert code == 0
        assert "formal prove: seed=0 count=2" in text
        assert "proved=" in text
        dashboard = capsys.readouterr().err
        assert "repro top prove" in dashboard
