"""Generator and rendering determinism (``repro.qa.spec`` / ``render``)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.eda.toolchain import Language
from repro.qa.render import node_name, render, render_verilog, render_vhdl
from repro.qa.spec import (
    MAX_INPUTS,
    MAX_SPEC_NODES,
    MAX_SPEC_OUTPUTS,
    MAX_WIDTH,
    MIN_WIDTH,
    SPEC_SHAPES,
    QaSpec,
    generate_spec,
    spec_shape,
)

SEEDS = st.integers(0, 10_000)
INDEXES = st.integers(0, 500)


class TestGeneration:
    @given(SEEDS, INDEXES)
    def test_pure_function_of_seed_and_index(self, seed, index):
        assert (
            generate_spec(seed, index).canonical()
            == generate_spec(seed, index).canonical()
        )

    @given(SEEDS, INDEXES)
    def test_respects_generation_bounds(self, seed, index):
        spec = generate_spec(seed, index)
        assert MIN_WIDTH <= spec.width <= MAX_WIDTH
        assert 1 <= len(spec.inputs) <= MAX_INPUTS
        assert 1 <= len(spec.outputs) <= MAX_SPEC_OUTPUTS
        for _, tree in spec.outputs:
            pass  # validated by QaSpec.__post_init__
        assert spec.node_count <= MAX_SPEC_NODES
        assert spec.name == f"qa_s{seed}_p{index}"
        assert spec_shape(spec) in SPEC_SHAPES

    def test_neighbouring_programs_differ(self):
        canonicals = {generate_spec(0, i).canonical() for i in range(20)}
        assert len(canonicals) == 20

    @given(SEEDS, INDEXES)
    def test_json_round_trip(self, seed, index):
        spec = generate_spec(seed, index)
        reloaded = QaSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert reloaded.canonical() == spec.canonical()
        assert render(reloaded) == render(spec)


class TestSpecValidation:
    def test_rejects_degenerate_interfaces(self):
        good = dict(
            name="t", width=4, inputs=("a0",),
            outputs=(("y0", ["var", "a0"]),),
        )
        QaSpec(**good)
        with pytest.raises(ValueError):
            QaSpec(**{**good, "width": MIN_WIDTH - 1})
        with pytest.raises(ValueError):
            QaSpec(**{**good, "inputs": ()})
        with pytest.raises(ValueError):
            QaSpec(**{**good, "outputs": ()})
        with pytest.raises(ValueError):
            QaSpec(**{**good, "inputs": ("a0", "a0")})
        with pytest.raises(ValueError):
            QaSpec(**{**good, "outputs": (("a0", ["const", 1]),)})

    def test_outputs_readable_only_when_clocked(self):
        loop = dict(
            name="t", width=4, inputs=("a0",),
            outputs=(("y0", ["add", ["var", "y0"], ["var", "a0"]]),),
        )
        QaSpec(**{**loop, "clocked": True})
        with pytest.raises(ValueError):
            QaSpec(**loop)  # combinational feedback is ill-formed

    def test_model_matches_expressions(self):
        spec = QaSpec(
            name="t", width=4, inputs=("a0", "a1"),
            outputs=(("y0", ["add", ["var", "a0"], ["var", "a1"]]),),
        )
        assert spec.model().fn({"a0": 9, "a1": 9}) == {"y0": 2}
        seq = QaSpec(
            name="t", width=4, inputs=("a0",), clocked=True,
            outputs=(("y0", ["add", ["var", "y0"], ["var", "a0"]]),),
        )
        model = seq.model()
        state = model.reset()
        state, observed = model.step(state, {"a0": 5})
        assert observed == {"y0": 5}
        state, observed = model.step(state, {"a0": 5})
        assert observed == {"y0": 10}


class TestRendering:
    @given(SEEDS, INDEXES)
    def test_byte_identical_across_calls(self, seed, index):
        spec = generate_spec(seed, index)
        assert render_verilog(spec) == render_verilog(spec)
        assert render_vhdl(spec) == render_vhdl(spec)

    @given(SEEDS, INDEXES)
    def test_both_languages_rendered(self, seed, index):
        spec = generate_spec(seed, index)
        sources = render(spec)
        assert set(sources) == set(Language)
        assert "module top_module" in sources[Language.VERILOG]
        assert "entity top_module" in sources[Language.VHDL]
        for name in spec.inputs:
            assert name in sources[Language.VERILOG]
            assert name in sources[Language.VHDL]

    def test_node_names_are_content_stable(self):
        tree = ["add", ["var", "a0"], ["const", 3]]
        assert node_name(tree) == node_name(list(tree))
        assert node_name(tree) != node_name(["add", ["var", "a1"],
                                             ["const", 3]])
        # a shared subtree renders as one signal, referenced twice
        spec = QaSpec(
            name="t", width=4, inputs=("a0",),
            outputs=(
                ("y0", ["xor", tree, tree]),
            ),
        )
        verilog = render_verilog(spec)
        assert verilog.count(f"assign {node_name(tree)} =") == 1
