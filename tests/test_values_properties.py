"""Property tests: ``repro.sim.values.Logic`` vs plain Python integers.

On fully-known vectors every operator must agree with the obvious masked
integer computation — the simulation kernel is only trustworthy if its value
algebra is. A second group pins the IEEE 1364 X-propagation edge cases:
dominant values (``0 & x``, ``1 | x``) stay known, everything else taints.
A third group closes the loop with the QA grammar: on known vectors,
:func:`repro.qa.grammar.evaluate` of every widened op (shifts, ``sra``,
``slt``, ``cat``, ``slice``, reductions) must agree with the ``Logic``
computation the simulators actually run, including the edges the renderers
must get right — signed extremes, shift amounts at and beyond the width,
and slices clamped down to nothing. Example budgets come from the profiles
in ``conftest.py``.
"""

from hypothesis import given, strategies as st

from repro.qa.grammar import cat_split, evaluate, slice_bounds, to_signed
from repro.sim.values import Logic, logic

WIDTHS = st.integers(min_value=1, max_value=16)


@st.composite
def known_pair(draw):
    """Two fully-known vectors of one width, plus their int values."""
    width = draw(WIDTHS)
    a = draw(st.integers(0, (1 << width) - 1))
    b = draw(st.integers(0, (1 << width) - 1))
    return width, a, b


@st.composite
def any_vector(draw):
    """An arbitrary four-state vector (bits and xmask drawn independently)."""
    width = draw(WIDTHS)
    bits = draw(st.integers(0, (1 << width) - 1))
    xmask = draw(st.integers(0, (1 << width) - 1))
    return Logic(width, bits, xmask)


class TestKnownVectorsMatchInts:
    @given(known_pair())
    def test_bitwise(self, pair):
        width, a, b = pair
        mask = (1 << width) - 1
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert (la & lb).to_int() == a & b
        assert (la | lb).to_int() == a | b
        assert (la ^ lb).to_int() == a ^ b
        assert (~la).to_int() == (a ^ mask)

    @given(known_pair())
    def test_arithmetic_wraps_like_masked_ints(self, pair):
        width, a, b = pair
        mask = (1 << width) - 1
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert la.add(lb).to_int() == (a + b) & mask
        assert la.sub(lb).to_int() == (a - b) & mask
        assert la.mul(lb).to_int() == (a * b) & mask
        assert la.neg().to_int() == (-a) & mask

    @given(known_pair())
    def test_division_and_modulo(self, pair):
        width, a, b = pair
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        if b == 0:
            assert la.div(lb).has_x  # x/0 is all-X, like Verilog
            assert la.mod(lb).has_x
        else:
            assert la.div(lb).to_int() == a // b
            assert la.mod(lb).to_int() == a % b

    @given(known_pair())
    def test_comparisons(self, pair):
        width, a, b = pair
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        assert la.eq(lb).to_int() == int(a == b)
        assert la.ne(lb).to_int() == int(a != b)
        assert la.lt(lb).to_int() == int(a < b)
        assert la.le(lb).to_int() == int(a <= b)
        assert la.gt(lb).to_int() == int(a > b)
        assert la.ge(lb).to_int() == int(a >= b)
        assert la.case_eq(lb).to_int() == int(a == b)

    @given(known_pair())
    def test_shifts(self, pair):
        width, a, shift = pair
        mask = (1 << width) - 1
        la = Logic.from_int(a, width)
        amount = Logic.from_int(shift, width)
        assert la.shl(amount).to_int() == (a << shift) & mask
        assert la.shr(amount).to_int() == a >> shift

    @given(known_pair())
    def test_signed_views(self, pair):
        width, a, b = pair
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        sa = a - (1 << width) if a & (1 << (width - 1)) else a
        sb = b - (1 << width) if b & (1 << (width - 1)) else b
        assert la.to_signed() == sa
        assert la.lt_signed(lb).to_int() == int(sa < sb)

    @given(known_pair())
    def test_reductions(self, pair):
        width, a, _ = pair
        mask = (1 << width) - 1
        la = Logic.from_int(a, width)
        assert la.reduce_and().to_int() == int(a == mask)
        assert la.reduce_or().to_int() == int(a != 0)
        assert la.reduce_xor().to_int() == bin(a).count("1") & 1

    @given(known_pair())
    def test_string_round_trip(self, pair):
        width, a, _ = pair
        la = Logic.from_int(a, width)
        assert Logic.from_string(la.to_bit_string()) == la
        assert logic(a, width) == la


@st.composite
def grammar_pair(draw):
    """Grammar-range width plus two operand values (``MIN_WIDTH`` is 2)."""
    width = draw(st.integers(2, 8))
    a = draw(st.integers(0, (1 << width) - 1))
    b = draw(st.integers(0, (1 << width) - 1))
    return width, a, b


class TestGrammarMatchesLogic:
    """``qa.grammar.evaluate`` vs the ``Logic`` algebra, op by op.

    The grammar is only a trustworthy reference model if each of its ops
    means the same thing as the kernel value the rendered HDL computes.
    """

    @given(grammar_pair())
    def test_shl_including_overshoot(self, triple):
        width, a, shift = triple
        la, amount = Logic.from_int(a, width), Logic.from_int(shift, width)
        got = evaluate(["shl", ["var", "a"], ["var", "b"]],
                       {"a": a, "b": shift}, width)
        assert got == la.shl(amount).to_int()
        # the >= width edge flushes to zero on both sides
        big = (1 << width) - 1  # always >= width for width >= 1
        assert evaluate(["shl", ["var", "a"], ["const", big]],
                        {"a": a}, width) == 0
        assert la.shl(Logic.from_int(big, width)).to_int() == 0

    @given(grammar_pair())
    def test_shr_including_overshoot(self, triple):
        width, a, shift = triple
        la, amount = Logic.from_int(a, width), Logic.from_int(shift, width)
        got = evaluate(["shr", ["var", "a"], ["var", "b"]],
                       {"a": a, "b": shift}, width)
        assert got == la.shr(amount).to_int()

    @given(grammar_pair())
    def test_sra_matches_ashr_at_signed_edges(self, triple):
        width, a, shift = triple
        la, amount = Logic.from_int(a, width), Logic.from_int(shift, width)
        got = evaluate(["sra", ["var", "a"], ["var", "b"]],
                       {"a": a, "b": shift}, width)
        assert got == la.ashr(amount).to_int()
        # most-negative and minus-one are the classic sign-fill edges
        for edge in (1 << (width - 1), (1 << width) - 1):
            ledge = Logic.from_int(edge, width)
            assert evaluate(["sra", ["var", "a"], ["var", "b"]],
                            {"a": edge, "b": shift}, width) \
                == ledge.ashr(amount).to_int()

    @given(grammar_pair())
    def test_slt_matches_lt_signed(self, triple):
        width, a, b = triple
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        tree = ["mux", "slt", ["var", "a"], ["var", "b"],
                ["const", 1], ["const", 0]]
        assert evaluate(tree, {"a": a, "b": b}, width) \
            == la.lt_signed(lb).to_int()
        assert to_signed(a, width) == la.to_signed()

    @given(grammar_pair())
    def test_cat_matches_concat_of_slices(self, triple):
        width, a, b = triple
        high, low = cat_split(width)
        la, lb = Logic.from_int(a, width), Logic.from_int(b, width)
        expected = la.slice(high - 1, 0).concat(lb.slice(low - 1, 0)) \
            if low else la.slice(high - 1, 0)
        got = evaluate(["cat", ["var", "a"], ["var", "b"]],
                       {"a": a, "b": b}, width)
        assert got == expected.to_int()
        assert expected.width == width

    @given(grammar_pair(), st.integers(0, 9), st.integers(0, 9))
    def test_slice_matches_clamped_part_select(self, triple, msb, lsb):
        width, a, _ = triple
        if msb < lsb:
            msb, lsb = lsb, msb
        la = Logic.from_int(a, width)
        got = evaluate(["slice", ["var", "a"], msb, lsb], {"a": a}, width)
        bounds = slice_bounds(msb, lsb, width)
        if bounds is None:
            assert got == 0  # zero-width slice: lsb beyond the vector
        else:
            cm, cl = bounds
            assert got == la.slice(cm, cl).resize(width).to_int()

    @given(grammar_pair())
    def test_reductions_match(self, triple):
        width, a, _ = triple
        la = Logic.from_int(a, width)
        for kind, method in (
            ("redand", la.reduce_and),
            ("redor", la.reduce_or),
            ("redxor", la.reduce_xor),
        ):
            assert evaluate([kind, ["var", "a"]], {"a": a}, width) \
                == method().to_int()


class TestXPropagation:
    @given(any_vector())
    def test_normalization_zeroes_bits_under_x(self, vector):
        assert vector.bits & vector.xmask == 0

    @given(any_vector())
    def test_arithmetic_taints_completely(self, vector):
        if not vector.has_x:
            return
        one = Logic.from_int(1, vector.width)
        for result in (vector.add(one), vector.sub(one), vector.mul(one),
                       vector.neg()):
            assert result.xmask == (1 << result.width) - 1

    @given(any_vector())
    def test_dominant_values_defeat_x(self, vector):
        zero = Logic(vector.width)  # all known-0
        ones = Logic.from_int(-1, vector.width)  # all known-1
        assert (vector & zero) == zero
        assert (vector | ones) == ones

    @given(any_vector())
    def test_xor_taints_exactly_the_x_bits(self, vector):
        other = Logic.from_int(0b1010, vector.width)
        assert (vector ^ other).xmask == vector.xmask

    @given(any_vector())
    def test_invert_preserves_x_positions(self, vector):
        assert (~vector).xmask == vector.xmask
        known = ((1 << vector.width) - 1) & ~vector.xmask
        assert (~vector).bits == ~vector.bits & known

    @given(any_vector())
    def test_eq_with_known_differing_bit_is_definite_zero(self, vector):
        flipped = Logic(
            vector.width, vector.bits ^ 1, vector.xmask & ~1
        )
        if vector.xmask & 1:
            return  # bit 0 unknown: nothing definite to say
        assert vector.eq(flipped).to_int() == 0
        assert vector.case_eq(vector).to_int() == 1

    @given(any_vector())
    def test_x_select_logic(self, vector):
        # a known 1 bit anywhere makes the vector definitely true; with
        # no known 1 the truth value is X, which control flow treats as false
        assert vector.is_true() == (vector.bits != 0)
        if vector.has_x and vector.bits == 0:
            assert vector.truthy().has_x
            assert not vector.is_true()
