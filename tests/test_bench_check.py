"""Tests for the perf-regression gate (``repro bench check``)."""

import json

import pytest

from repro.obs import check_baselines, compare_reports
from repro.obs.baseline import (
    DIRECTION_HIGHER,
    DIRECTION_INFO,
    DIRECTION_LOWER,
    metric_direction,
    tier_name,
)

SIM_REPORT = {
    "verilog": {"interp_ms": 8.0, "compiled_ms": 4.0, "speedup": 2.0},
    "vhdl": {"interp_ms": 16.0, "compiled_ms": 5.0, "speedup": 3.2},
    "floor": 1.3,
}


def write_report(directory, tier, report):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{tier}.json"
    path.write_text(json.dumps(report) + "\n")
    return path


class TestMetricDirection:
    @pytest.mark.parametrize("key", ["compiled_ms", "serial_s", "seconds"])
    def test_lower_is_better(self, key):
        assert metric_direction(key) == DIRECTION_LOWER

    @pytest.mark.parametrize("key", ["speedup", "throughput", "hit_rate"])
    def test_higher_is_better(self, key):
        assert metric_direction(key) == DIRECTION_HIGHER

    @pytest.mark.parametrize("key", ["floor", "workers", "count"])
    def test_informational(self, key):
        assert metric_direction(key) == DIRECTION_INFO


class TestCompareReports:
    def test_identical_reports_have_no_regressions(self):
        deltas, missing, extra = compare_reports(
            "sim", SIM_REPORT, SIM_REPORT
        )
        assert missing == [] and extra == []
        assert all(not d.regressed for d in deltas)
        assert {d.name for d in deltas} == {
            "verilog.interp_ms", "verilog.compiled_ms", "verilog.speedup",
            "vhdl.interp_ms", "vhdl.compiled_ms", "vhdl.speedup", "floor",
        }

    def test_slower_timing_regresses_and_normalizes_ratio(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] = 8.0  # 2x slower
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        (delta,) = [d for d in deltas if d.name == "verilog.compiled_ms"]
        assert delta.regressed
        assert delta.ratio == pytest.approx(2.0)
        assert "REGRESSED" in delta.describe()

    def test_lower_speedup_regresses_with_same_ratio_convention(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["vhdl"]["speedup"] = 1.6  # half the baseline speedup
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        (delta,) = [d for d in deltas if d.name == "vhdl.speedup"]
        assert delta.regressed
        assert delta.ratio == pytest.approx(2.0)  # > 1 always means worse

    def test_improvement_is_marked_not_failed(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] = 1.0
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        (delta,) = [d for d in deltas if d.name == "verilog.compiled_ms"]
        assert delta.improved and not delta.regressed

    def test_info_metrics_never_regress(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["floor"] = 99.0
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        (delta,) = [d for d in deltas if d.name == "floor"]
        assert not delta.regressed and delta.ratio == 1.0

    def test_within_tolerance_passes(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] = 4.0 * 1.2  # +20% < 35% tolerance
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        assert all(not d.regressed for d in deltas)

    def test_uniform_host_drift_is_normalized_out(self):
        # a loaded / slower box scales every timing together; that is not
        # a code regression, and the speedup ratios confirm it
        fresh = json.loads(json.dumps(SIM_REPORT))
        for language in ("verilog", "vhdl"):
            fresh[language]["interp_ms"] *= 1.6
            fresh[language]["compiled_ms"] *= 1.6
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        assert all(not d.regressed for d in deltas)
        timing = [d for d in deltas if d.direction == DIRECTION_LOWER]
        assert all(d.drift == pytest.approx(1.6) for d in timing)
        assert all(d.ratio == pytest.approx(1.0) for d in timing)

    def test_single_leaf_regression_survives_drift_normalization(self):
        # one leaf moving against the tier's median is the signal the
        # gate exists for — the median stays ~1.0, so it still fails
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] *= 2
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        (delta,) = [d for d in deltas if d.regressed]
        assert delta.name == "verilog.compiled_ms"
        assert delta.ratio == pytest.approx(2.0)

    def test_drift_needs_enough_timing_leaves(self):
        # with fewer than MIN_DRIFT_SAMPLE timings, a real regression
        # would be its own reference — so no normalization happens
        base = {"parallel": {"serial_s": 2.0, "parallel_s": 1.0}}
        fresh = {"parallel": {"serial_s": 4.0, "parallel_s": 2.0}}
        deltas, _, _ = compare_reports("exec", base, fresh)
        assert all(d.drift == 1.0 for d in deltas)
        assert all(d.regressed for d in deltas)

    def test_missing_and_extra_leaves_reported(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        del fresh["vhdl"]["speedup"]
        fresh["vhdl"]["new_metric_ms"] = 1.0
        _, missing, extra = compare_reports("sim", SIM_REPORT, fresh)
        assert missing == ["sim/vhdl.speedup"]
        assert extra == ["sim/vhdl.new_metric_ms"]


class TestFloors:
    """Absolute minimums from the baseline's ``floors`` object."""

    def test_floors_object_is_stripped_not_compared(self):
        base = json.loads(json.dumps(SIM_REPORT))
        base["floors"] = {"speedup": 1.3}
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["floors"] = {"speedup": 99.0}
        deltas, missing, extra = compare_reports("sim", base, fresh)
        assert not any(d.name.startswith("floors") for d in deltas)
        assert missing == [] and extra == []

    def test_below_floor_regresses_despite_matching_baseline(self):
        # relative gating alone ratchets: once a bad value is committed,
        # an identical fresh run passes — the floor still catches it
        base = json.loads(json.dumps(SIM_REPORT))
        base["verilog"]["speedup"] = 1.0
        base["floors"] = {"speedup": 1.3}
        fresh = json.loads(json.dumps(base))
        deltas, _, _ = compare_reports("sim", base, fresh)
        (delta,) = [d for d in deltas if d.regressed]
        assert delta.name == "verilog.speedup"
        assert delta.floor == 1.3
        assert "BELOW FLOOR" in delta.describe()

    def test_dotted_floor_scopes_to_one_leaf(self):
        base = json.loads(json.dumps(SIM_REPORT))
        base["verilog"]["speedup"] = 1.0
        base["vhdl"]["speedup"] = 1.0
        base["floors"] = {"verilog.speedup": 1.2}
        fresh = json.loads(json.dumps(base))
        deltas, _, _ = compare_reports("sim", base, fresh)
        assert {d.name for d in deltas if d.regressed} == {"verilog.speedup"}

    def test_floors_read_from_baseline_not_fresh(self):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["floors"] = {"speedup": 99.0}
        deltas, _, _ = compare_reports("sim", SIM_REPORT, fresh)
        assert all(not d.regressed for d in deltas)

    def test_floor_ignores_lower_is_better_leaves(self):
        base = json.loads(json.dumps(SIM_REPORT))
        base["floors"] = {"compiled_ms": 99.0}
        fresh = json.loads(json.dumps(base))
        deltas, _, _ = compare_reports("sim", base, fresh)
        assert all(not d.regressed for d in deltas)

    def test_batch_floor_fails_gate_within_relative_tolerance(self, tmp_path):
        """The ISSUE's acceptance criterion: batch_speedup ≥ 5.0 gated."""
        base = {
            "verilog_batch": {"batch_speedup": 5.5},
            "floors": {"batch_speedup": 5.0},
        }
        fresh = {"verilog_batch": {"batch_speedup": 4.5}}  # -18% < tolerance
        write_report(tmp_path / "base", "sim", base)
        write_report(tmp_path / "fresh", "sim", fresh)
        report = check_baselines(tmp_path / "base", tmp_path / "fresh")
        assert not report.ok
        assert "BELOW FLOOR" in report.render()


class TestCheckBaselines:
    def test_unchanged_baseline_passes(self, tmp_path):
        write_report(tmp_path / "base", "sim", SIM_REPORT)
        write_report(tmp_path / "fresh", "sim", SIM_REPORT)
        report = check_baselines(tmp_path / "base", tmp_path / "fresh")
        assert report.ok
        assert report.regressions == []
        assert report.render().endswith("(PASS)")

    def test_injected_2x_slowdown_fails_hard_tier(self, tmp_path):
        """The ISSUE's acceptance criterion."""
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] *= 2
        write_report(tmp_path / "base", "sim", SIM_REPORT)
        write_report(tmp_path / "fresh", "sim", fresh)
        report = check_baselines(tmp_path / "base", tmp_path / "fresh")
        assert not report.ok
        assert len(report.hard_failures) == 1
        assert report.render().endswith("(FAIL)")

    def test_soft_tier_regression_only_warns(self, tmp_path):
        fresh = {"parallel": {"serial_s": 10.0}}
        write_report(tmp_path / "base", "exec", {
            "parallel": {"serial_s": 2.0}
        })
        write_report(tmp_path / "fresh", "exec", fresh)
        report = check_baselines(
            tmp_path / "base", tmp_path / "fresh", hard_tiers=("sim",)
        )
        assert len(report.regressions) == 1
        assert report.ok  # exec is not a hard tier

    def test_warn_only_mode_never_fails(self, tmp_path):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] *= 10
        write_report(tmp_path / "base", "sim", SIM_REPORT)
        write_report(tmp_path / "fresh", "sim", fresh)
        report = check_baselines(
            tmp_path / "base", tmp_path / "fresh", hard_tiers=()
        )
        assert report.regressions and report.ok

    def test_missing_fresh_report_is_skipped_not_failed(self, tmp_path):
        write_report(tmp_path / "base", "sim", SIM_REPORT)
        (tmp_path / "fresh").mkdir()
        report = check_baselines(tmp_path / "base", tmp_path / "fresh")
        assert report.missing_fresh == ["sim"]
        assert report.ok
        assert "no fresh report" in report.render()

    def test_empty_baseline_dir_raises(self, tmp_path):
        (tmp_path / "base").mkdir()
        with pytest.raises(ValueError, match="no BENCH_"):
            check_baselines(tmp_path / "base", tmp_path)

    def test_custom_tolerance(self, tmp_path):
        fresh = json.loads(json.dumps(SIM_REPORT))
        fresh["verilog"]["compiled_ms"] = 4.0 * 1.3  # +30%
        write_report(tmp_path / "base", "sim", SIM_REPORT)
        write_report(tmp_path / "fresh", "sim", fresh)
        strict = check_baselines(
            tmp_path / "base", tmp_path / "fresh", tolerance=0.1
        )
        lenient = check_baselines(
            tmp_path / "base", tmp_path / "fresh", tolerance=0.5
        )
        assert not strict.ok
        assert lenient.ok


class TestReportPathGuard:
    """``bench_micro`` must not write reports outside ``benchmarks/``."""

    def test_escape_via_env_override_is_refused(self, monkeypatch, tmp_path):
        from benchmarks.bench_micro import _report_path

        monkeypatch.setenv("BENCH_SIM_JSON", str(tmp_path / "BENCH_sim.json"))
        with pytest.raises(RuntimeError, match="BENCH_SIM_JSON"):
            _report_path()

    def test_default_path_is_inside_benchmarks(self, monkeypatch):
        from benchmarks.bench_micro import _report_path

        monkeypatch.delenv("BENCH_SIM_JSON", raising=False)
        out = _report_path()
        assert out.name == "BENCH_sim.json"
        assert out.parent.name == "benchmarks"


class TestTierName:
    def test_strips_prefix_and_extension(self):
        assert tier_name("/x/y/BENCH_sim.json") == "sim"
        assert tier_name("BENCH_exec.json") == "exec"

    def test_non_bench_name_passes_through(self):
        assert tier_name("other.json") == "other"


class TestCommittedBaselines:
    def test_repo_baselines_exist_and_parse(self):
        from pathlib import Path

        from repro.obs.baseline import load_report

        baselines = Path(__file__).resolve().parents[1] / (
            "benchmarks/baselines"
        )
        paths = sorted(baselines.glob("BENCH_*.json"))
        assert [p.name for p in paths] == [
            "BENCH_exec.json", "BENCH_sim.json"
        ]
        for path in paths:
            report = load_report(path)
            assert report  # non-empty object

    def test_sim_baseline_satisfies_its_own_floors(self):
        # a baseline refresh must never commit a below-floor run — the
        # batch tier's 5x contract in particular
        from pathlib import Path

        from repro.obs.baseline import load_report

        path = Path(__file__).resolve().parents[1] / (
            "benchmarks/baselines/BENCH_sim.json"
        )
        report = load_report(path)
        deltas, _, _ = compare_reports("sim", report, report)
        assert all(not d.regressed for d in deltas)
        assert sorted(
            d.name for d in deltas if d.floor == 5.0
        ) == ["verilog_batch.batch_speedup", "vhdl_batch.batch_speedup"]
