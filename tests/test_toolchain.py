"""Tests for the EDA toolchain facade."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain

GOOD_V = "module top_module(input a, output y); assign y = a; endmodule"
BAD_V = "module top_module(input a, output y); assign y = a endmodule"
GOOD_VHD = """
library ieee;
use ieee.std_logic_1164.all;
entity top_module is
    port (a : in std_logic; y : out std_logic);
end entity;
architecture rtl of top_module is
begin
    y <= a;
end architecture;
"""


@pytest.fixture
def toolchain():
    return Toolchain()


class TestCompile:
    def test_clean_verilog(self, toolchain):
        result = toolchain.compile(
            [HdlFile("t.v", GOOD_V, Language.VERILOG)], "top_module"
        )
        assert result.ok
        assert "Analysis succeeded" in result.log
        assert result.error_count == 0
        assert result.tool_seconds > 0
        assert result.wall_seconds > 0

    def test_clean_vhdl(self, toolchain):
        result = toolchain.compile(
            [HdlFile("t.vhd", GOOD_VHD, Language.VHDL)], "top_module"
        )
        assert result.ok
        assert "XVHDL" in result.log

    def test_syntax_error_in_log_with_location(self, toolchain):
        result = toolchain.compile(
            [HdlFile("dut.v", BAD_V, Language.VERILOG)], "top_module"
        )
        assert not result.ok
        assert "ERROR: [VRFC" in result.log
        assert "[dut.v:1]" in result.log
        assert "Analysis failed" in result.log

    def test_semantic_error_detected(self, toolchain):
        source = "module top_module(input a, output y); assign y = ghost; endmodule"
        result = toolchain.compile(
            [HdlFile("t.v", source, Language.VERILOG)], "top_module"
        )
        assert not result.ok
        assert "'ghost'" in result.log

    def test_missing_top_module(self, toolchain):
        result = toolchain.compile(
            [HdlFile("t.v", GOOD_V, Language.VERILOG)], "nonexistent"
        )
        assert not result.ok
        assert "not found" in result.log

    def test_empty_file_set(self, toolchain):
        result = toolchain.compile([], "top")
        assert not result.ok

    def test_mixed_language_rejected(self, toolchain):
        result = toolchain.compile(
            [
                HdlFile("a.v", GOOD_V, Language.VERILOG),
                HdlFile("b.vhd", GOOD_VHD, Language.VHDL),
            ],
            "top_module",
        )
        assert not result.ok
        assert "mixed-language" in result.log

    def test_multi_file_verilog_resolves_across_files(self, toolchain):
        sub = "module sub(input a, output y); assign y = ~a; endmodule"
        top = (
            "module top_module(input a, output y);"
            " sub s0(.a(a), .y(y)); endmodule"
        )
        result = toolchain.compile(
            [
                HdlFile("sub.v", sub, Language.VERILOG),
                HdlFile("top.v", top, Language.VERILOG),
            ],
            "top_module",
        )
        assert result.ok, result.log

    def test_vhdl_case_insensitive_top(self, toolchain):
        result = toolchain.compile(
            [HdlFile("t.vhd", GOOD_VHD, Language.VHDL)], "TOP_MODULE"
        )
        assert result.ok


class TestSimulate:
    TB = """
    module tb;
        reg a; wire y;
        top_module dut(.a(a), .y(y));
        initial begin
            a = 1; #1;
            if (y === 1'b1) $display("All tests passed successfully!");
            $finish;
        end
    endmodule
    """

    def test_simulation_produces_xsim_log(self, toolchain):
        result = toolchain.simulate(
            [
                HdlFile("t.v", GOOD_V, Language.VERILOG),
                HdlFile("tb.v", self.TB, Language.VERILOG),
            ],
            "tb",
        )
        assert result.ok
        assert "INFO: [XSIM 4-301]" in result.log
        assert "Simulation completed" in result.log
        assert result.finished_cleanly
        assert result.output_lines == ["All tests passed successfully!"]

    def test_compile_failure_skips_simulation(self, toolchain):
        result = toolchain.simulate(
            [
                HdlFile("t.v", BAD_V, Language.VERILOG),
                HdlFile("tb.v", self.TB, Language.VERILOG),
            ],
            "tb",
        )
        assert not result.ok
        assert "Simulation not run" in result.log
        assert result.compile_result is not None
        assert not result.compile_result.ok

    def test_sim_tool_seconds_exceed_compile(self, toolchain):
        compile_result = toolchain.compile(
            [
                HdlFile("t.v", GOOD_V, Language.VERILOG),
                HdlFile("tb.v", self.TB, Language.VERILOG),
            ],
            "tb",
        )
        sim_result = toolchain.simulate(
            [
                HdlFile("t.v", GOOD_V, Language.VERILOG),
                HdlFile("tb.v", self.TB, Language.VERILOG),
            ],
            "tb",
        )
        assert sim_result.tool_seconds > compile_result.tool_seconds

    def test_max_sim_time_bounds_runaway_clock(self):
        toolchain = Toolchain(max_sim_time=100)
        source = """
        module tb;
            reg clk;
            initial begin
                clk = 0;
                forever #5 clk = ~clk;
            end
        endmodule
        """
        result = toolchain.simulate(
            [HdlFile("t.v", source, Language.VERILOG)], "tb"
        )
        assert result.ok
        assert result.end_time <= 100
        assert not result.finished_cleanly  # no $finish was reached

    def test_fresh_state_between_simulations(self, toolchain):
        # two runs of the same stateful design must produce identical output
        source = """
        module tb;
            reg [3:0] n;
            initial begin
                n = 0;
                n = n + 1;
                $display("%0d", n);
                $finish;
            end
        endmodule
        """
        files = [HdlFile("t.v", source, Language.VERILOG)]
        first = toolchain.simulate(files, "tb")
        second = toolchain.simulate(files, "tb")
        assert first.output_lines == second.output_lines == ["1"]
