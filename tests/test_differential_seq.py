"""Cross-language differential testing for *sequential* semantics.

Random next-state expression trees are realized as clocked designs in both
languages (Verilog NBA always-block; VHDL rising_edge process) and judged by
golden testbenches derived from a Python step function. Agreement here
exercises exactly the machinery the combinational differential test cannot:
edge detection, NBA/delta-commit ordering, and reset behaviour — end to end
through both frontends onto the shared kernel.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.model import DesignSpec, PortSpec, SeqModel
from repro.designs.tbgen import PASS_MESSAGE, make_testbench
from repro.eda.toolchain import HdlFile, Language, Toolchain

WIDTH = 4
MASK = (1 << WIDTH) - 1

# next-state trees over the current state q and the input d
_leaf = st.one_of(
    st.sampled_from([("var", "q"), ("var", "d")]),
    st.integers(0, MASK).map(lambda v: ("const", v)),
)


def _node(children):
    return st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(
            st.sampled_from(["and", "or", "xor", "add", "sub"]),
            children,
            children,
        ),
    )


next_state_trees = st.recursive(_leaf, _node, max_leaves=8)


def evaluate(tree, env):
    kind = tree[0]
    if kind == "var":
        return env[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "not":
        return evaluate(tree[1], env) ^ MASK
    lhs = evaluate(tree[1], env)
    rhs = evaluate(tree[2], env)
    return {
        "and": lhs & rhs,
        "or": lhs | rhs,
        "xor": lhs ^ rhs,
        "add": (lhs + rhs) & MASK,
        "sub": (lhs - rhs) & MASK,
    }[kind]


def verilog_expr(tree) -> str:
    kind = tree[0]
    if kind == "var":
        return "q_r" if tree[1] == "q" else "d"
    if kind == "const":
        return f"{WIDTH}'d{tree[1]}"
    if kind == "not":
        return f"(~{verilog_expr(tree[1])})"
    op = {"and": "&", "or": "|", "xor": "^", "add": "+", "sub": "-"}[kind]
    return f"({verilog_expr(tree[1])} {op} {verilog_expr(tree[2])})"


def vhdl_expr(tree) -> str:
    kind = tree[0]
    if kind == "var":
        return "q_r" if tree[1] == "q" else "unsigned(d)"
    if kind == "const":
        return f"to_unsigned({tree[1]}, {WIDTH})"
    if kind == "not":
        return f"(not {vhdl_expr(tree[1])})"
    op = {"and": "and", "or": "or", "xor": "xor", "add": "+", "sub": "-"}[kind]
    return f"({vhdl_expr(tree[1])} {op} {vhdl_expr(tree[2])})"


def realize(tree) -> tuple[str, str]:
    verilog = (
        f"module top_module(input clk, input rst,"
        f" input [{WIDTH - 1}:0] d, output [{WIDTH - 1}:0] q);\n"
        f"    reg [{WIDTH - 1}:0] q_r;\n"
        "    always @(posedge clk) begin\n"
        f"        if (rst) q_r <= {WIDTH}'d0;\n"
        f"        else q_r <= {verilog_expr(tree)};\n"
        "    end\n"
        "    assign q = q_r;\n"
        "endmodule\n"
    )
    vhdl = (
        "library ieee;\nuse ieee.std_logic_1164.all;\n"
        "use ieee.numeric_std.all;\n\n"
        "entity top_module is\n"
        "    port (clk : in std_logic; rst : in std_logic;\n"
        f"          d : in std_logic_vector({WIDTH - 1} downto 0);\n"
        f"          q : out std_logic_vector({WIDTH - 1} downto 0));\n"
        "end entity;\n\n"
        "architecture rtl of top_module is\n"
        f"    signal q_r : unsigned({WIDTH - 1} downto 0);\n"
        "begin\n"
        "    process(clk) begin\n"
        "        if rising_edge(clk) then\n"
        "            if rst = '1' then\n"
        "                q_r <= (others => '0');\n"
        "            else\n"
        f"                q_r <= {vhdl_expr(tree)};\n"
        "            end if;\n"
        "        end if;\n"
        "    end process;\n"
        "    q <= std_logic_vector(q_r);\n"
        "end architecture;\n"
    )
    return verilog, vhdl


SPEC = DesignSpec(
    name="seqdiff",
    ports=(PortSpec("d", WIDTH, "in"), PortSpec("q", WIDTH, "out")),
    clocked=True,
)


def model_for(tree) -> SeqModel:
    def step(state, inputs):
        nxt = evaluate(tree, {"q": state, "d": inputs["d"]}) & MASK
        return nxt, {"q": nxt}

    return SeqModel(reset=lambda: 0, step=step)


def _passes(rtl: str, tb: str, language: Language) -> tuple[bool, str]:
    toolchain = Toolchain()
    ext = language.file_extension
    result = toolchain.simulate(
        [
            HdlFile(f"top_module{ext}", rtl, language),
            HdlFile(f"tb{ext}", tb, language),
        ],
        "tb",
    )
    ok = result.ok and any(PASS_MESSAGE in l for l in result.output_lines)
    return ok, result.log


@settings(max_examples=15, deadline=None)
@given(tree=next_state_trees)
def test_random_registered_design_agrees_across_languages(tree):
    model = model_for(tree)
    verilog, vhdl = realize(tree)
    for language, rtl in (
        (Language.VERILOG, verilog),
        (Language.VHDL, vhdl),
    ):
        tb = make_testbench(
            SPEC, model, language, f"seqdiff-{hash(str(tree))}",
            random_cycles=12,
        )
        ok, log = _passes(rtl, tb, language)
        assert ok, (
            f"{language.value} deviates for next-state tree {tree!r}\n"
            f"{rtl}\n{log}"
        )


def test_known_feedback_tree():
    """Regression seed: state feedback with subtraction and inversion."""
    tree = ("sub", ("not", ("var", "q")), ("xor", ("var", "d"), ("const", 5)))
    model = model_for(tree)
    verilog, vhdl = realize(tree)
    for language, rtl in (
        (Language.VERILOG, verilog),
        (Language.VHDL, vhdl),
    ):
        tb = make_testbench(SPEC, model, language, "seqdiff-known")
        ok, log = _passes(rtl, tb, language)
        assert ok, log
