"""Tests for the benchmark suite: invariants plus sampled integrity checks.

The *full* contract (every reference passes, every mutation behaves) is
enforced by ``tests/test_suite_integrity.py`` over the whole suite; here we
check structure and a deterministic sample quickly.
"""

import os

import pytest

from repro.designs.model import TOP_NAME
from repro.eda.toolchain import Language, Toolchain
from repro.evalsuite.suite import EXPECTED_PROBLEM_COUNT, Suite, build_suite
from repro.evalsuite.validate import validate_problem


@pytest.fixture(scope="module")
def suite():
    return build_suite()


class TestSuiteStructure:
    def test_exact_problem_count(self, suite):
        assert len(suite) == EXPECTED_PROBLEM_COUNT == 156

    def test_unique_pids(self, suite):
        pids = [p.pid for p in suite]
        assert len(pids) == len(set(pids))

    def test_every_family_populated(self, suite):
        families = suite.families
        assert len(families) >= 10
        assert all(problems for problems in families.values())

    def test_both_languages_realized(self, suite):
        for problem in suite:
            for language in Language:
                assert problem.reference[language].strip()
                assert problem.golden_tb[language].strip()

    def test_defect_catalogs_nonempty(self, suite):
        for problem in suite:
            for language in Language:
                assert problem.syntax_mutations[language], problem.pid
                assert problem.functional_mutations[language], problem.pid

    def test_prompts_are_descriptive(self, suite):
        for problem in suite:
            assert len(problem.prompt) > 40, problem.pid

    def test_prompts_unique(self, suite):
        prompts = [p.prompt.strip() for p in suite]
        assert len(prompts) == len(set(prompts))

    def test_references_name_top_module(self, suite):
        for problem in suite:
            assert TOP_NAME in problem.reference[Language.VERILOG]
            assert TOP_NAME in problem.reference[Language.VHDL]

    def test_mix_of_comb_and_seq(self, suite):
        clocked = sum(1 for p in suite if p.clocked)
        assert 40 <= clocked <= 110

    def test_lookup_and_subset(self, suite):
        problem = suite.get("gates_and")
        assert problem.family == "gates"
        subset = suite.subset(["gates_and", "dff"])
        assert len(subset) == 2
        with pytest.raises(KeyError):
            suite.get("nonexistent")

    def test_head(self, suite):
        assert len(suite.head(10)) == 10

    def test_strict_count_guard(self):
        # the builder itself enforces the 156-problem invariant
        assert len(build_suite(strict_count=True)) == 156


class TestSampledIntegrity:
    """Full three-contract validation on a deterministic sample."""

    SAMPLE = [
        "gates_xnor", "vec_sext", "mux_priority", "enc4to2", "alu4",
        "rotr8", "gray2bin4", "dff_set", "updown4", "lfsr4",
        "edge_any", "fsm_detect1001", "running_min4", "struct_muxtree",
    ]

    @pytest.mark.parametrize("pid", SAMPLE)
    @pytest.mark.parametrize("language", list(Language), ids=lambda l: l.value)
    def test_problem_contracts(self, suite, pid, language):
        report = validate_problem(suite.get(pid), language, Toolchain())
        assert report.ok, "\n".join(report.issues)
