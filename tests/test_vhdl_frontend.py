"""Tests for the VHDL lexer, parser, and analyzer."""

import pytest

from repro.hdl.diagnostics import DiagnosticCollector
from repro.hdl.source import SourceFile
from repro.hdl.tokens import TokenKind
from repro.vhdl import ast
from repro.vhdl.analyzer import analyze_vhdl
from repro.vhdl.lexer import lex_vhdl
from repro.vhdl.parser import parse_vhdl

ENTITY = """
library ieee;
use ieee.std_logic_1164.all;

entity m is
    port (
        a : in std_logic;
        y : out std_logic
    );
end entity;
"""


def lex(text):
    return lex_vhdl(SourceFile("t.vhd", text))


def parse_ok(text):
    design, collector = parse_vhdl(text)
    assert not collector.has_errors, [d.render() for d in collector.diagnostics]
    return design


def analyze(text):
    design, collector = parse_vhdl(text)
    analyze_vhdl(design, SourceFile("t.vhd", text), collector)
    return collector


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = lex("ENTITY Foo IS")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "entity"

    def test_identifier_preserves_case_text(self):
        tokens = lex("signal MySig : std_logic;")
        assert any(t.text == "MySig" for t in tokens)

    def test_comment_skipped(self):
        tokens = lex("signal s; -- a comment\nsignal t;")
        assert all("comment" not in t.text for t in tokens)

    def test_char_literal(self):
        tokens = lex("y <= '1';")
        chars = [t for t in tokens if t.kind is TokenKind.CHAR]
        assert chars and chars[0].text == "'1'"

    def test_attribute_tick_not_char(self):
        tokens = lex("if clk'event then")
        kinds = [t.kind for t in tokens]
        assert TokenKind.CHAR not in kinds

    def test_bit_string_literal(self):
        tokens = lex('x"A5"')
        assert tokens[0].kind is TokenKind.BASED_NUMBER
        assert tokens[0].text == 'x"A5"'

    def test_string_literal(self):
        tokens = lex('report "Test Case 1 Failed";')
        assert any(t.kind is TokenKind.STRING for t in tokens)

    def test_ident_at_eof_terminates(self):
        tokens = lex("architecture")
        assert tokens[-1].kind is TokenKind.EOF


class TestParser:
    def test_entity_ports(self):
        design = parse_ok(ENTITY)
        entity = design.entity("m")
        assert [p.name for p in entity.ports] == ["a", "y"]
        assert entity.ports[0].direction == "in"

    def test_generics_with_defaults(self):
        design = parse_ok(
            "entity g is generic (W : integer := 4); port (a : in bit); end;"
        )
        entity = design.entity("g")
        assert entity.generics[0].name == "w"
        assert isinstance(entity.generics[0].default, ast.IntLiteral)

    def test_architecture_with_signal(self):
        design = parse_ok(
            ENTITY
            + "architecture rtl of m is\n"
            "    signal s : std_logic;\n"
            "begin\n"
            "    s <= a;\n"
            "    y <= s;\n"
            "end architecture;"
        )
        arch = design.architecture_of("m")
        assert arch is not None
        assert len(arch.declarations) == 1
        assert len(arch.statements) == 2

    def test_conditional_assign(self):
        design = parse_ok(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    y <= '1' when a = '1' else '0';\n"
            "end architecture;"
        )
        statement = design.architecture_of("m").statements[0]
        assert isinstance(statement, ast.ConditionalAssign)

    def test_selected_assign(self):
        design = parse_ok(
            "entity m is port (s : in std_logic_vector(1 downto 0);"
            " y : out std_logic); end;\n"
            "architecture rtl of m is begin\n"
            "    with s select y <= '1' when \"00\", '0' when others;\n"
            "end architecture;"
        )
        statement = design.architecture_of("m").statements[0]
        assert isinstance(statement, ast.SelectedAssign)

    def test_process_with_sensitivity(self):
        design = parse_ok(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    process(a) begin\n"
            "        y <= a;\n"
            "    end process;\n"
            "end architecture;"
        )
        process = design.architecture_of("m").statements[0]
        assert isinstance(process, ast.ProcessStatement)
        assert process.sensitivity == ("a",)

    def test_process_with_variables_and_loop(self):
        design = parse_ok(
            "entity m is port (d : in std_logic_vector(3 downto 0);"
            " y : out std_logic_vector(2 downto 0)); end;\n"
            "architecture rtl of m is begin\n"
            "    process(d)\n"
            "        variable cnt : unsigned(2 downto 0);\n"
            "    begin\n"
            "        cnt := (others => '0');\n"
            "        for i in 0 to 3 loop\n"
            "            if d(i) = '1' then cnt := cnt + 1; end if;\n"
            "        end loop;\n"
            "        y <= std_logic_vector(cnt);\n"
            "    end process;\n"
            "end architecture;"
        )
        process = design.architecture_of("m").statements[0]
        assert process.declarations[0].name == "cnt"
        assert any(isinstance(s, ast.ForLoop) for s in process.body)

    def test_entity_instantiation(self):
        design = parse_ok(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    u0: entity work.sub port map (a => a, y => y);\n"
            "end architecture;"
        )
        inst = design.architecture_of("m").statements[0]
        assert isinstance(inst, ast.EntityInstantiation)
        assert inst.entity == "sub"
        assert [i.port for i in inst.port_map] == ["a", "y"]

    def test_wait_statements(self):
        design = parse_ok(
            "entity tb is end;\n"
            "architecture sim of tb is\n"
            "    signal clk : std_logic := '0';\n"
            "begin\n"
            "    process begin\n"
            "        wait for 5 ns;\n"
            "        wait until clk = '1';\n"
            "        wait;\n"
            "    end process;\n"
            "end architecture;"
        )
        process = design.architecture_of("tb").statements[0]
        waits = [s for s in process.body if isinstance(s, ast.WaitStatement)]
        assert len(waits) == 3
        assert waits[0].for_time is not None
        assert waits[1].until is not None
        assert waits[2].for_time is None and waits[2].until is None

    def test_assert_and_report(self):
        design = parse_ok(
            "entity tb is end;\n"
            "architecture sim of tb is begin\n"
            "    process begin\n"
            "        assert false report \"bad\" severity error;\n"
            "        report \"done\";\n"
            "        wait;\n"
            "    end process;\n"
            "end architecture;"
        )
        process = design.architecture_of("tb").statements[0]
        assert isinstance(process.body[0], ast.AssertStatement)
        assert process.body[0].severity == "error"
        assert isinstance(process.body[1], ast.ReportStatement)

    def test_case_statement(self):
        design = parse_ok(
            "entity m is port (s : in std_logic_vector(1 downto 0);"
            " y : out std_logic); end;\n"
            "architecture rtl of m is begin\n"
            "    process(s) begin\n"
            "        case s is\n"
            "            when \"00\" => y <= '0';\n"
            "            when others => y <= '1';\n"
            "        end case;\n"
            "    end process;\n"
            "end architecture;"
        )
        process = design.architecture_of("m").statements[0]
        case = process.body[0]
        assert isinstance(case, ast.CaseStatement)
        assert case.alternatives[1].choices == ()

    def test_missing_is_reports_error(self):
        _, collector = parse_vhdl("entity broken port (a : in bit); end;")
        assert collector.has_errors

    def test_missing_semicolon_recovers(self):
        design, collector = parse_vhdl(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    y <= a\n"
            "end architecture;"
        )
        assert collector.has_errors
        assert design.entities  # the entity still parsed

    def test_downto_range_in_types(self):
        design = parse_ok(
            "entity m is port (v : in std_logic_vector(7 downto 0);"
            " y : out std_logic); end;"
        )
        mark = design.entity("m").ports[0].type_mark
        assert mark.descending


class TestAnalyzer:
    def test_clean(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin y <= a; end architecture;"
        )
        assert not collector.has_errors

    def test_undeclared_name(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin y <= ghost; end architecture;"
        )
        assert any("'ghost'" in d.message for d in collector.errors())

    def test_assign_to_input(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin a <= y; end architecture;"
        )
        assert any("input port" in d.message for d in collector.errors())

    def test_architecture_without_entity(self):
        collector = analyze(
            "architecture rtl of ghost is begin end architecture;"
        )
        assert any("unknown entity" in d.message for d in collector.errors())

    def test_unknown_type(self):
        collector = analyze(
            "entity m is port (a : in magic_type); end;"
        )
        assert any("unsupported type" in d.message for d in collector.errors())

    def test_vector_without_constraint(self):
        collector = analyze(
            "entity m is port (a : in std_logic_vector); end;"
        )
        assert any("range constraint" in d.message for d in collector.errors())

    def test_process_with_sensitivity_and_wait_rejected(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    process(a) begin\n"
            "        wait for 5 ns;\n"
            "    end process;\n"
            "end architecture;"
        )
        assert any("cannot contain wait" in d.message for d in collector.errors())

    def test_process_without_sensitivity_or_wait_rejected(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    process begin\n"
            "        y <= a;\n"
            "    end process;\n"
            "end architecture;"
        )
        assert any("never suspend" in d.message for d in collector.errors())

    def test_case_requires_others(self):
        collector = analyze(
            "entity m is port (s : in std_logic_vector(1 downto 0);"
            " y : out std_logic); end;\n"
            "architecture rtl of m is begin\n"
            "    process(s) begin\n"
            "        case s is when \"00\" => y <= '0'; end case;\n"
            "    end process;\n"
            "end architecture;"
        )
        assert any("when others" in d.message for d in collector.errors())

    def test_variable_assigned_with_signal_arrow_rejected(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    process(a)\n"
            "        variable v : std_logic;\n"
            "    begin\n"
            "        v <= a;\n"
            "        y <= v;\n"
            "    end process;\n"
            "end architecture;"
        )
        assert any("variable" in d.message for d in collector.errors())

    def test_unknown_entity_in_instantiation(self):
        collector = analyze(
            ENTITY
            + "architecture rtl of m is begin\n"
            "    u0: entity work.ghost port map (a => a, y => y);\n"
            "end architecture;"
        )
        assert any("unknown entity 'ghost'" in d.message
                   for d in collector.errors())

    def test_unknown_port_in_map(self):
        collector = analyze(
            "entity sub is port (p : in std_logic; q : out std_logic); end;\n"
            "architecture rtl of sub is begin q <= p; end architecture;\n"
            + ENTITY
            + "architecture rtl of m is begin\n"
            "    u0: entity work.sub port map (zz => a, q => y);\n"
            "end architecture;"
        )
        assert any("no port 'zz'" in d.message for d in collector.errors())
