"""Tests for VCD waveform export."""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.sim.kernel import Simulator
from repro.sim.vcd import _short_id, vcd_text, write_vcd


def _counter_sim():
    """Elaborate and run a small counter, tracing clk and count."""
    source = """
    module tb;
        reg clk; reg [3:0] count;
        initial begin
            clk = 0; count = 0;
            repeat (3) begin
                #5 clk = 1;
                count = count + 1;
                #5 clk = 0;
            end
            $finish;
        end
    endmodule
    """
    toolchain = Toolchain()
    from repro.hdl.diagnostics import DiagnosticCollector

    collector = DiagnosticCollector()
    design = toolchain._build_design(
        [HdlFile("t.v", source, Language.VERILOG)], "tb", collector
    )
    assert design is not None, [d.render() for d in collector.diagnostics]
    simulator = Simulator(design)
    simulator.trace(design.signal("clk"), design.signal("count"))
    simulator.run()
    return simulator


class TestShortIds:
    def test_first_ids(self):
        assert _short_id(0) == "!"
        assert _short_id(1) == '"'

    def test_ids_unique_over_range(self):
        ids = [_short_id(i) for i in range(5000)]
        assert len(set(ids)) == 5000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _short_id(-1)


class TestVcdDocument:
    def test_header_sections(self):
        text = vcd_text(_counter_sim())
        assert "$timescale 1ns $end" in text
        assert "$scope module design $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_variables_declared_with_widths(self):
        text = vcd_text(_counter_sim())
        assert "$var wire 1 " in text
        assert "$var wire 4 " in text
        assert "clk" in text and "count" in text

    def test_changes_are_time_ordered(self):
        text = vcd_text(_counter_sim())
        times = [
            int(line[1:]) for line in text.splitlines()
            if line.startswith("#")
        ]
        assert times == sorted(times)
        assert times[-1] == 30  # simulation end marker

    def test_scalar_and_vector_value_syntax(self):
        text = vcd_text(_counter_sim())
        assert any(
            line.startswith(("0", "1")) and len(line) <= 4
            for line in text.splitlines()
        )
        assert any(line.startswith("b") for line in text.splitlines())

    def test_initial_x_values_dumped(self):
        text = vcd_text(_counter_sim())
        # signals start unknown before the initial block runs at t0... the
        # t0 assignments overwrite them, so the dumpvars section shows the
        # final t0 values instead; ensure count's zero appears
        assert "b0000 " in text

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "wave.vcd"
        write_vcd(_counter_sim(), str(path))
        assert path.read_text().startswith("$date")

    def test_untraced_run_rejected(self):
        source = "module tb; initial $finish; endmodule"
        from repro.hdl.diagnostics import DiagnosticCollector

        toolchain = Toolchain()
        design = toolchain._build_design(
            [HdlFile("t.v", source, Language.VERILOG)], "tb",
            DiagnosticCollector(),
        )
        simulator = Simulator(design)
        simulator.run()
        with pytest.raises(ValueError, match="no traced signals"):
            vcd_text(simulator)
