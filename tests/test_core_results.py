"""Tests for result/latency types and the transcript."""

import pytest

from repro.agents.base import StepKind, Transcript
from repro.core.result import BaselineResult, LatencyBreakdown, PipelineResult
from repro.eda.toolchain import CacheStats


class TestLatencyBreakdown:
    def test_zero_breakdown_is_all_zero(self):
        breakdown = LatencyBreakdown()
        assert breakdown.syntax_loop == 0.0
        assert breakdown.functional_loop == 0.0
        assert breakdown.total == 0.0

    def test_scaling_zero_stays_zero(self):
        scaled = LatencyBreakdown().scaled(1000.0)
        assert scaled.total == 0.0

    def test_scale_by_zero_zeroes_everything(self):
        breakdown = LatencyBreakdown(generation_llm=4.0, syntax_tool=2.0)
        assert breakdown.scaled(0.0).total == 0.0

    def test_adding_zero_changes_nothing(self):
        breakdown = LatencyBreakdown(generation_llm=1.0, functional_llm=2.0)
        breakdown.add(LatencyBreakdown())
        assert breakdown.generation_llm == 1.0
        assert breakdown.total == 3.0

    def test_totals(self):
        breakdown = LatencyBreakdown(
            generation_llm=2.0,
            syntax_llm=1.0,
            syntax_tool=0.5,
            functional_llm=3.0,
            functional_tool=1.5,
        )
        assert breakdown.syntax_loop == 1.5
        assert breakdown.functional_loop == 4.5
        assert breakdown.total == 8.0

    def test_add_accumulates(self):
        total = LatencyBreakdown()
        total.add(LatencyBreakdown(generation_llm=1.0, syntax_llm=2.0))
        total.add(LatencyBreakdown(generation_llm=0.5, functional_tool=1.0))
        assert total.generation_llm == 1.5
        assert total.syntax_llm == 2.0
        assert total.functional_tool == 1.0

    def test_scaled(self):
        breakdown = LatencyBreakdown(generation_llm=4.0, syntax_tool=2.0)
        half = breakdown.scaled(0.5)
        assert half.generation_llm == 2.0
        assert half.syntax_tool == 1.0
        # original unchanged
        assert breakdown.generation_llm == 4.0


class TestCacheStats:
    def test_hit_rate_with_zero_lookups_is_zero_not_nan(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats().lookups == 0

    def test_hit_rate_all_hits_and_all_misses(self):
        assert CacheStats(hits=5, misses=0).hit_rate == 1.0
        assert CacheStats(hits=0, misses=5).hit_rate == 0.0

    def test_delta_against_equal_snapshot_is_zero(self):
        stats = CacheStats(hits=3, misses=2, evictions=1)
        delta = stats.delta(stats.snapshot())
        assert (delta.hits, delta.misses, delta.evictions) == (0, 0, 0)
        assert delta.hit_rate == 0.0

    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=1)
        snap = stats.snapshot()
        stats.hits += 1
        assert snap.hits == 1
        assert stats.delta(snap).hits == 1


class TestPipelineResult:
    def test_converged_requires_both(self):
        base = dict(
            spec="s", rtl="r", testbench="t",
            syntax_iterations=0, functional_iterations=0,
        )
        assert PipelineResult(
            syntax_ok=True, functional_ok=True, **base
        ).converged
        assert not PipelineResult(
            syntax_ok=True, functional_ok=False, **base
        ).converged
        assert not PipelineResult(
            syntax_ok=False, functional_ok=False, **base
        ).converged


class TestTranscript:
    def test_render_truncates_long_steps(self):
        transcript = Transcript()
        transcript.record("CodeAgent", StepKind.ACTION, "x" * 500)
        rendered = transcript.render(max_chars_per_step=50)
        assert len(rendered.splitlines()[0]) < 100
        assert rendered.endswith("…")

    def test_render_flattens_newlines(self):
        transcript = Transcript()
        transcript.record("ReviewAgent", StepKind.OBSERVATION, "a\nb")
        assert "⏎" in transcript.render()

    def test_by_agent_filters(self):
        transcript = Transcript()
        transcript.record("A", StepKind.THOUGHT, "one")
        transcript.record("B", StepKind.THOUGHT, "two")
        transcript.record("A", StepKind.ACTION, "three")
        assert len(transcript.by_agent("A")) == 2
        assert len(transcript.by_agent("B")) == 1

    def test_baseline_result_fields(self):
        result = BaselineResult(spec="s", rtl="code", latency_seconds=3.0)
        assert result.rtl == "code"
        assert result.latency_seconds == 3.0
