"""Unit tests for the batch tier (``repro.sim.batch``) and its plumbing.

The equivalence suite proves the tier is observationally identical to the
event kernel; these tests pin the *structural* contract instead: which
designs plan, how the vector programs lay out lanes (single ``uint64``
column, multi-lane for wide signals, masked-int list fallback), how
X-carrying vectors demote one at a time, how the toolchain routes eligible
bundles and counts them, and how the testbench bundle registry behaves —
including the ``vectors=``/``extra_vectors=`` replacement contract.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import tbgen
from repro.designs.model import CombModel, DesignSpec, PortSpec, SeqModel
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.hdl.diagnostics import DiagnosticCollector
from repro.sim import batch
from repro.sim.values import Logic

_TIER_FLAGS = (
    "REPRO_SIM_INTERP",
    "REPRO_SIM_NO_LEVEL",
    "REPRO_SIM_NO_TWOSTATE",
    "REPRO_SIM_NO_BATCH",
    "REPRO_SIM_NO_NUMPY",
)


@contextmanager
def _pin(**flags):
    """Own every tier flag for the block so ambient settings can't leak in."""
    previous = {flag: os.environ.pop(flag, None) for flag in _TIER_FLAGS}
    os.environ.update(flags)
    try:
        yield
    finally:
        for flag, value in previous.items():
            if value is None:
                os.environ.pop(flag, None)
            else:
                os.environ[flag] = value


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def build(source: str, language=Language.VERILOG, top: str = "top_module",
          **flags):
    ext = language.file_extension
    files = [HdlFile(f"t{ext}", source, language)]
    collector = DiagnosticCollector()
    with _pin(**flags):
        design = Toolchain()._build_design(files, top, collector)
    assert design is not None, [str(d) for d in collector.diagnostics]
    return design


COMB_V = """
module top_module(input [7:0] a, input [7:0] b, output [7:0] y);
    wire [7:0] t = a ^ b;
    assign y = t + a;
endmodule
"""

WIDE_V = """
module top_module(input [95:0] a, input [95:0] b, output [95:0] y);
    assign y = (a ^ b) + a;
endmodule
"""

SEQ_V = """
module top_module(input clk, input rst, input [7:0] d,
                  output reg [7:0] q, output [7:0] dd);
    assign dd = d ^ q;
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + d;
    end
endmodule
"""

GATED_SEQ_V = """
module top_module(input clk, input rst, input en, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= q + 1;
    end
endmodule
"""


def _comb_expected(vector):
    a, b = vector["a"], vector["b"]
    return ((a ^ b) + a) & 0xFF


class TestSimulateVectors:
    def test_known_vectors_are_exact(self):
        design = build(COMB_V)
        vectors = [{"a": a, "b": b} for a, b in
                   ((3, 5), (0, 0), (255, 255), (127, 64))]
        with _pin():
            run = batch.simulate_vectors(design, vectors)
        assert run is not None
        assert run.demotions == 0
        assert run.mode == ("numpy" if _has_numpy() else "list")
        for vector, row in zip(vectors, run.values):
            assert row["y"] == _comb_expected(vector)

    def test_list_mode_matches_numpy_mode(self):
        vectors = [{"a": a, "b": (a * 37) & 0xFF} for a in range(32)]
        with _pin():
            fast = batch.simulate_vectors(build(COMB_V), vectors)
        with _pin(REPRO_SIM_NO_NUMPY="1"):
            slow = batch.simulate_vectors(build(COMB_V), vectors)
        assert slow is not None and slow.mode == "list"
        assert [r["y"] for r in slow.values] == [r["y"] for r in fast.values]

    def test_wide_signals_use_multiple_lanes(self):
        design = build(WIDE_V)
        mask = (1 << 96) - 1
        vectors = [
            {"a": 0, "b": 0},
            {"a": mask, "b": 1},
            {"a": 0x0123_4567_89AB_CDEF_0011_2233, "b": 0xFFFF_0000_FFFF},
            {"a": 1 << 95, "b": 1 << 64},
        ]
        for flags in ({}, {"REPRO_SIM_NO_NUMPY": "1"}):
            with _pin(**flags):
                run = batch.simulate_vectors(design, vectors)
            assert run is not None, flags
            for vector, row in zip(vectors, run.values):
                want = ((vector["a"] ^ vector["b"]) + vector["a"]) & mask
                assert row["y"] == want, flags

    def test_x_vector_demotes_alone(self):
        design = build(COMB_V)
        vectors = [
            {"a": 3, "b": 5},
            {"a": Logic.from_string("xxxx0011"), "b": 5},
            {"a": 7, "b": 5},
        ]
        with _pin():
            run = batch.simulate_vectors(design, vectors)
        assert run is not None
        assert run.demotions == 1
        assert run.values[0]["y"] == _comb_expected(vectors[0])
        assert run.values[2]["y"] == ((7 ^ 5) + 7) & 0xFF
        demoted = run.values[1]["y"]
        assert isinstance(demoted, Logic) and demoted.has_x

    def test_demoted_vector_matches_event_kernel(self):
        # the same X stimulus driven through the event kernel (the
        # levelized cones' own four-state fallback) must agree bit-for-bit
        design = build(COMB_V)
        x_value = Logic.from_string("xxxx0011")
        with _pin():
            run = batch.simulate_vectors(
                design, [{"a": x_value, "b": 5}]
            )
        kernel_design = build(COMB_V)
        session = batch._scalar_session(kernel_design)
        session.write_signal(kernel_design.signals["a"], x_value)
        session.write_signal(
            kernel_design.signals["b"], Logic.from_int(5, width=8)
        )
        session._run_time_step()
        want = kernel_design.signals["y"].value
        got = run.values[0]["y"]
        assert (got.bits, got.xmask) == (want.bits, want.xmask)

    def test_missing_input_raises(self):
        design = build(COMB_V)
        plan = batch.plan_combinational(design, [("a", 8), ("b", 8)], [("y", 8)])
        assert plan is not None
        with pytest.raises(KeyError):
            batch.run_vectors(plan, [{"a": 1}])

    def test_demotion_without_design_raises(self):
        design = build(COMB_V)
        plan = batch.plan_combinational(design, [("a", 8), ("b", 8)], [("y", 8)])
        with pytest.raises(ValueError):
            batch.run_vectors(
                plan, [{"a": Logic.from_string("x"), "b": 0}]
            )

    def test_empty_vector_list_is_unplannable(self):
        design = build(COMB_V)
        assert batch.simulate_vectors(design, []) is None


@given(seed=st.integers(0, 2**16), x_index=st.integers(0, 5))
@settings(deadline=None, max_examples=20)
def test_property_mixed_x_vectors_match_kernel(seed, x_index):
    """Random vectors with one X-contaminated entry: every row — vectorized
    or demoted — must match a scalar four-state kernel evaluation."""
    import random as _random

    rng = _random.Random(seed)
    vectors = []
    for i in range(6):
        if i == x_index:
            bits = rng.getrandbits(8)
            xmask = rng.getrandbits(8) | 1
            vectors.append({
                "a": Logic._make(8, bits & ~xmask, xmask),
                "b": rng.getrandbits(8),
            })
        else:
            vectors.append(
                {"a": rng.getrandbits(8), "b": rng.getrandbits(8)}
            )
    design = build(COMB_V)
    with _pin():
        run = batch.simulate_vectors(design, vectors)
    assert run is not None and run.demotions == 1
    oracle_design = build(COMB_V)
    session = batch._scalar_session(oracle_design)
    for vector, row in zip(vectors, run.values):
        for name in ("a", "b"):
            value = vector[name]
            if not isinstance(value, Logic):
                value = Logic.from_int(value, width=8)
            session.write_signal(oracle_design.signals[name], value)
        session._run_time_step()
        want = oracle_design.signals["y"].value
        got = row["y"]
        if isinstance(got, Logic):
            assert (got.bits, got.xmask) == (want.bits, want.xmask)
        else:
            assert want.xmask == 0 and got == want.bits


class TestPlanEligibility:
    def test_unknown_port_is_rejected(self):
        design = build(COMB_V)
        assert batch.plan_combinational(
            design, [("a", 8), ("nope", 8)], [("y", 8)]
        ) is None

    def test_output_aliasing_input_is_rejected(self):
        design = build(COMB_V)
        assert batch.plan_combinational(
            design, [("a", 8), ("b", 8)], [("a", 8)]
        ) is None

    def test_gated_register_is_not_recognized(self):
        # `else if (en)` is outside the reset/else shape the SyncUpdate
        # recognizer accepts — the design must fall back to the kernel
        design = build(GATED_SEQ_V)
        assert batch.plan_sequential(
            design, [("en", 1)], [("q", 8)]
        ) is None

    def test_clocked_design_is_not_combinational(self):
        design = build(SEQ_V)
        assert batch.plan_combinational(
            design, [("d", 8)], [("q", 8)]
        ) is None


class TestSimulateSequences:
    def _expected(self, lanes):
        rows = []
        q = [0] * len(lanes)
        length = len(lanes[0])
        for t in range(length):
            row = {"q": [], "dd": []}
            for lane, seq in enumerate(lanes):
                d = seq[t]["d"]
                q[lane] = (q[lane] + d) & 0xFF
                row["q"].append(q[lane])
                row["dd"].append((d ^ q[lane]) & 0xFF)
            rows.append(row)
        return rows

    def test_transposed_lanes_match_reference(self):
        design = build(SEQ_V)
        lanes = [
            [{"d": 1}, {"d": 2}, {"d": 3}, {"d": 250}],
            [{"d": 255}, {"d": 255}, {"d": 0}, {"d": 9}],
        ]
        with _pin():
            result = batch.simulate_sequences(
                design, lanes,
                inputs=[("d", 8)], outputs=[("q", 8), ("dd", 8)],
                observe_reset=True,
            )
        assert result is not None
        reset_row, cycles = result
        assert reset_row == {"q": [0, 0], "dd": [0, 0]}
        want = self._expected(lanes)
        for got, expected in zip(cycles, want):
            assert got == expected

    def test_list_mode_matches(self):
        lanes = [[{"d": 7}, {"d": 200}, {"d": 13}]]
        with _pin():
            _, fast = batch.simulate_sequences(
                build(SEQ_V), lanes, inputs=[("d", 8)], outputs=[("q", 8)]
            )
        with _pin(REPRO_SIM_NO_NUMPY="1"):
            _, slow = batch.simulate_sequences(
                build(SEQ_V), lanes, inputs=[("d", 8)], outputs=[("q", 8)]
            )
        assert fast == slow

    def test_x_stimulus_is_rejected(self):
        design = build(SEQ_V)
        plan = batch.plan_sequential(design, [("d", 8)], [("q", 8)])
        assert plan is not None
        with pytest.raises(ValueError):
            batch.run_sequences(
                plan, [[{"d": Logic.from_string("xxxxxxxx")}]]
            )

    def test_unequal_lane_lengths_are_rejected(self):
        design = build(SEQ_V)
        plan = batch.plan_sequential(design, [("d", 8)], [("q", 8)])
        with pytest.raises(ValueError):
            batch.run_sequences(plan, [[{"d": 1}], [{"d": 1}, {"d": 2}]])


def _comb_spec():
    return DesignSpec(
        name="batchcase",
        ports=(
            PortSpec("a", 8, "in"),
            PortSpec("b", 8, "in"),
            PortSpec("y", 8, "out"),
        ),
        clocked=False,
    )


def _seq_spec():
    return DesignSpec(
        name="seqcase",
        ports=(PortSpec("d", 8, "in"), PortSpec("q", 8, "out")),
        clocked=True,
    )


def _seq_model():
    def step(state, inputs):
        nxt = (state + inputs["d"]) & 0xFF
        return nxt, {"q": nxt}

    return SeqModel(reset=lambda: 0, step=step)


class TestBundleRegistry:
    def test_generated_testbench_registers_its_bundle(self):
        spec = _comb_spec()
        model = CombModel(lambda v: {"y": v["a"] ^ v["b"]})
        text = tbgen.make_testbench(spec, model, Language.VERILOG, "bundle-a")
        bundle = tbgen.stimulus_bundle(text)
        assert bundle is not None
        assert not bundle.clocked
        assert bundle.language is Language.VERILOG
        assert len(bundle.stimulus) == len(bundle.expected)
        for vector, expected in zip(bundle.stimulus, bundle.expected):
            assert expected == {"y": (vector["a"] ^ vector["b"]) & 0xFF}

    def test_unknown_text_has_no_bundle(self):
        assert tbgen.stimulus_bundle("module tb; endmodule") is None

    def test_clocked_vectors_replace_and_ignore_extra(self):
        """Regression: witness replay must not be diluted by extra_vectors."""
        spec = _seq_spec()
        replacement = [{"d": 9}, {"d": 1}]
        text = tbgen.make_testbench(
            spec, _seq_model(), Language.VERILOG, "bundle-seq",
            vectors=replacement,
            extra_vectors=[{"d": 77}],
        )
        bundle = tbgen.stimulus_bundle(text)
        assert bundle is not None and bundle.clocked
        assert list(bundle.stimulus) == replacement
        assert "77" not in text

    def test_comb_vectors_replace_and_ignore_extra(self):
        spec = _comb_spec()
        model = CombModel(lambda v: {"y": v["a"] ^ v["b"]})
        replacement = [{"a": 3, "b": 5}]
        text = tbgen.make_testbench(
            spec, model, Language.VERILOG, "bundle-b",
            vectors=replacement,
            extra_vectors=[{"a": 77, "b": 77}],
        )
        bundle = tbgen.stimulus_bundle(text)
        assert list(bundle.stimulus) == replacement
        assert "77" not in text


def _bundle_files(language, model_fn, pid):
    spec = _comb_spec()
    model = CombModel(model_fn)
    tb = tbgen.make_testbench(spec, model, language, pid)
    ext = language.file_extension
    dut = COMB_V if language is Language.VERILOG else COMB_VHD
    return [
        HdlFile(f"top_module{ext}", dut, language),
        HdlFile(f"tb{ext}", tb, language),
    ]


COMB_VHD = """
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity top_module is
    port (a : in unsigned(7 downto 0);
          b : in unsigned(7 downto 0);
          y : out unsigned(7 downto 0));
end entity;
architecture rtl of top_module is
    signal t : unsigned(7 downto 0);
begin
    t <= a xor b;
    y <= t + a;
end architecture;
"""


class TestToolchainRouting:
    def _counters(self, tracer):
        return {
            name: tracer.metrics.counter(f"sim.{name}").value
            for name in ("batch_calls", "batch_vectors", "batch_demotions")
        }

    @contextmanager
    def _tracer(self):
        from repro.obs.sink import MemorySink
        from repro.obs.trace import Tracer, get_tracer, set_tracer

        previous = get_tracer()
        tracer = Tracer(MemorySink())
        set_tracer(tracer)
        try:
            yield tracer
        finally:
            set_tracer(previous)

    @pytest.mark.parametrize("language", list(Language))
    def test_eligible_bundle_routes_through_batch(self, language):
        files = _bundle_files(
            language, lambda v: {"y": (v["a"] ^ v["b"]) + v["a"]}, "route-ok"
        )
        with self._tracer() as tracer, _pin():
            result = Toolchain().simulate(files, "tb")
        assert result.ok, result.log
        assert any("All tests passed" in l for l in result.output_lines)
        counters = self._counters(tracer)
        assert counters["batch_calls"] == 1
        assert counters["batch_vectors"] == len(
            tbgen.stimulus_bundle(files[1].text).stimulus
        )
        assert counters["batch_demotions"] == 0

    def test_no_batch_flag_keeps_the_kernel(self):
        files = _bundle_files(
            Language.VERILOG,
            lambda v: {"y": (v["a"] ^ v["b"]) + v["a"]}, "route-off",
        )
        with self._tracer() as tracer, _pin(REPRO_SIM_NO_BATCH="1"):
            result = Toolchain().simulate(files, "tb")
        assert result.ok, result.log
        assert self._counters(tracer)["batch_calls"] == 0

    @pytest.mark.parametrize("language", list(Language))
    def test_failing_cases_report_identically(self, language):
        # a deliberately wrong model: the batch tier must synthesize the
        # exact failure lines the event kernel prints for the same bundle
        files = _bundle_files(
            language, lambda v: {"y": v["a"] & v["b"]}, "route-fail"
        )

        def observables(result):
            return (
                result.ok,
                tuple(result.output_lines),
                result.log,
                result.end_time,
                result.finished_cleanly,
                result.runtime_error,
            )

        with _pin():
            batched = Toolchain().simulate(files, "tb")
        with _pin(REPRO_SIM_NO_BATCH="1"):
            kernel = Toolchain().simulate(files, "tb")
        assert any("Failed" in l for l in batched.output_lines)
        assert observables(batched) == observables(kernel)

    def test_ineligible_dut_falls_back(self):
        # the en-gated register is not batch-recognizable; the toolchain
        # must fall back to the kernel and still succeed
        spec = DesignSpec(
            name="gated",
            ports=(PortSpec("en", 1, "in"), PortSpec("q", 8, "out")),
            clocked=True,
        )

        def step(state, inputs):
            nxt = (state + 1) & 0xFF if inputs["en"] else state
            return nxt, {"q": nxt}

        tb = tbgen.make_testbench(
            spec, SeqModel(reset=lambda: 0, step=step),
            Language.VERILOG, "gated-case",
        )
        files = [
            HdlFile("top_module.v", GATED_SEQ_V, Language.VERILOG),
            HdlFile("tb.v", tb, Language.VERILOG),
        ]
        with self._tracer() as tracer, _pin():
            result = Toolchain().simulate(files, "tb")
        assert result.ok, result.log
        assert any("All tests passed" in l for l in result.output_lines)
        assert self._counters(tracer)["batch_calls"] == 0


class TestCompileMemo:
    def test_repeat_compile_returns_equal_copies(self):
        files = [HdlFile("t.v", COMB_V, Language.VERILOG)]
        toolchain = Toolchain()
        first = toolchain.compile(files, "top_module")
        second = toolchain.compile(files, "top_module")
        assert first.ok and second.ok
        assert first is not second
        assert first.log == second.log
        assert first.tool_seconds == second.tool_seconds

    def test_distinct_sources_do_not_collide(self):
        toolchain = Toolchain()
        good = toolchain.compile(
            [HdlFile("t.v", COMB_V, Language.VERILOG)], "top_module"
        )
        bad = toolchain.compile(
            [HdlFile("t.v", "module top_module(; endmodule",
                     Language.VERILOG)],
            "top_module",
        )
        assert good.ok and not bad.ok
