"""Integration: the measured sweep reproduces the calibrated (paper) counts.

Runs one full-suite configuration (Claude 3.5 Sonnet / Verilog — the
cheapest) through the genuine runner: 156 baseline generations + 156
pipeline runs, all judged by real compiles/simulations against the hidden
golden testbenches, and checks the measured pass counts equal the defect
plan's predictions — which the unit tests separately pin to Table 1.

The other five configurations follow by the same mechanism and are covered
by the example scripts / EXPERIMENTS.md; set ``REPRO_FULL_SWEEP_TEST=1`` to
check them all here (~4 minutes).
"""

import os

import pytest

from repro.eda.toolchain import Language
from repro.eval.runner import ExperimentRunner
from repro.evalsuite.suite import build_suite
from repro.llm.profiles import CLAUDE_35_SONNET, PROFILES, count_of
from repro.llm.synthetic import build_defect_plan, plan_statistics

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_FULL_VALIDATION") == "1",
    reason="full-suite integration disabled via REPRO_SKIP_FULL_VALIDATION",
)


def _check_config(profile, language, suite):
    runner = ExperimentRunner(suite=suite)
    result = runner.run_config(profile, language)
    stats = plan_statistics(build_defect_plan(profile, language, suite))
    total = len(suite)
    measured = (
        round(result.baseline_syntax_pct * total / 100),
        round(result.baseline_functional_pct * total / 100),
        round(result.aivril_syntax_pct * total / 100),
        round(result.aivril_functional_pct * total / 100),
    )
    planned = (
        stats.base_syntax_pass,
        stats.base_functional_pass,
        stats.final_syntax_pass,
        stats.final_functional_pass,
    )
    assert measured == planned, (
        f"{profile.name}/{language.value}: measured {measured} != "
        f"planned {planned}"
    )
    behaviour = profile.for_language(language)
    # and the plan itself is pinned to the paper's Table 1
    assert planned == (
        count_of(behaviour.base_syntax_pct, total),
        count_of(behaviour.base_functional_pct, total),
        count_of(behaviour.aivril_syntax_pct, total),
        count_of(behaviour.aivril_functional_pct, total),
    )
    return result


def test_claude_verilog_full_suite_matches_table1():
    suite = build_suite()
    result = _check_config(CLAUDE_35_SONNET, Language.VERILOG, suite)
    # the paper's §4.2 convergence anchors for this configuration
    assert result.mean_syntax_iterations == pytest.approx(2.0, abs=0.1)
    assert result.mean_functional_iterations == pytest.approx(3.0, abs=0.1)


@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_SWEEP_TEST") != "1",
    reason="full 6-config sweep only with REPRO_FULL_SWEEP_TEST=1",
)
@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("language", list(Language), ids=lambda l: l.value)
def test_all_configs_full_suite(profile, language):
    _check_config(profile, language, build_suite())
