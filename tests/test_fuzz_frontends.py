"""Fuzz properties: the frontends never crash, whatever the input.

The whole premise of the paper is that LLMs emit broken code; the frontends
must convert *any* text into diagnostics, never into exceptions. Hypothesis
feeds them arbitrary strings and mangled variants of real designs. Example
budgets come from the profiles registered in ``conftest.py``
(``HYPOTHESIS_PROFILE=dev|ci``).
"""

import pytest
from hypothesis import given, strategies as st

from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.hdl.source import SourceFile
from repro.verilog.analyzer import analyze_verilog
from repro.verilog.parser import parse_verilog
from repro.vhdl.analyzer import analyze_vhdl
from repro.vhdl.parser import parse_vhdl

VERILOG_SEED = """
module top_module(input clk, input rst, input [3:0] d, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= d + 4'd1;
    end
endmodule
"""

VHDL_SEED = """
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity top_module is
    port (clk : in std_logic; d : in std_logic_vector(3 downto 0);
          q : out std_logic_vector(3 downto 0));
end entity;
architecture rtl of top_module is
begin
    process(clk) begin
        if rising_edge(clk) then
            q <= std_logic_vector(unsigned(d) + 1);
        end if;
    end process;
end architecture;
"""

#: characters that appear in HDL, to bias the fuzz toward interesting inputs
HDL_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFXZ0123456789"
    " \t\n;:,.()[]{}<>=+-*/&|^~!?#@$'\"_%"
)


def mangled(source: str, cut_at: int, insert_at: int, junk: str) -> str:
    cut_at %= max(len(source), 1)
    insert_at %= max(len(source), 1)
    return source[:insert_at] + junk + source[insert_at:cut_at] + source[cut_at + 40:]


@given(st.text(alphabet=HDL_ALPHABET, max_size=300))
def test_verilog_parser_never_crashes_on_noise(text):
    unit, collector = parse_verilog(text)
    analyze_verilog(unit, SourceFile("f.v", text), collector)


@given(st.text(alphabet=HDL_ALPHABET, max_size=300))
def test_vhdl_parser_never_crashes_on_noise(text):
    design, collector = parse_vhdl(text)
    analyze_vhdl(design, SourceFile("f.vhd", text), collector)


@given(
    cut_at=st.integers(0, 500),
    insert_at=st.integers(0, 500),
    junk=st.text(alphabet=HDL_ALPHABET, max_size=20),
)
def test_verilog_toolchain_survives_mangled_designs(cut_at, insert_at, junk):
    source = mangled(VERILOG_SEED, cut_at, insert_at, junk)
    toolchain = Toolchain()
    result = toolchain.compile(
        [HdlFile("m.v", source, Language.VERILOG)], "top_module"
    )
    # ok or not, the call must return a structured result with a log
    assert isinstance(result.log, str)


@given(
    cut_at=st.integers(0, 700),
    insert_at=st.integers(0, 700),
    junk=st.text(alphabet=HDL_ALPHABET, max_size=20),
)
def test_vhdl_toolchain_survives_mangled_designs(cut_at, insert_at, junk):
    source = mangled(VHDL_SEED, cut_at, insert_at, junk)
    toolchain = Toolchain()
    result = toolchain.compile(
        [HdlFile("m.vhd", source, Language.VHDL)], "top_module"
    )
    assert isinstance(result.log, str)


def test_empty_and_whitespace_inputs():
    for text in ("", " ", "\n\n\n", "\t"):
        unit, collector = parse_verilog(text)
        assert unit.modules == ()
        design, collector = parse_vhdl(text)
        assert design.entities == ()
