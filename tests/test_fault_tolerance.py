"""Fault-injection tests: the pipeline must degrade gracefully on LLM
failure, and the sweep engine must degrade gracefully on task failure."""

import time

import pytest

import repro.eval.runner as runner_module
from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, PipelineAborted
from repro.eda.toolchain import Language, Toolchain
from repro.eval.runner import ExperimentRunner
from repro.evalsuite.suite import build_suite
from repro.llm import protocol
from repro.llm.interface import ChatMessage, LLMError, LLMResponse
from repro.llm.profiles import GPT_4O

SPEC = (
    "Implement a 2-input AND gate named top_module with single-bit inputs "
    "a and b and output y."
)

TB = """
module tb;
    reg a, b; wire y;
    integer errors;
    top_module dut(.a(a), .b(b), .y(y));
    initial begin
        errors = 0;
        a = 1; b = 0; #1;
        if (y !== 1'b0) begin
            $display("Test Case 1 Failed: y should be 0");
            errors = errors + 1;
        end
        a = 1; b = 1; #1;
        if (y !== 1'b1) begin
            $display("Test Case 2 Failed: y should be 1");
            errors = errors + 1;
        end
        if (errors == 0) $display("All tests passed successfully!");
        $finish;
    end
endmodule
"""
BROKEN_RTL = "module top_module(input a, input b, output y); assign y = a &; endmodule"
GOOD_RTL = "module top_module(input a, input b, output y); assign y = a & b; endmodule"


class FlakyLLM:
    """Answers normally until `fail_after` calls, then raises forever."""

    name = "flaky"

    def __init__(self, script, fail_after):
        self.script = list(script)
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, messages: list[ChatMessage]) -> LLMResponse:
        self.calls += 1
        if self.calls > self.fail_after:
            raise LLMError("connection reset by peer")
        text = self.script.pop(0) if self.script else GOOD_RTL
        return LLMResponse(text=text, latency_seconds=0.1)


def make_pipeline(llm):
    return Aivril2Pipeline(
        llm, Toolchain(), PipelineConfig(language=Language.VERILOG)
    )


class TestLLMFailures:
    def test_failure_before_any_code_aborts(self):
        llm = FlakyLLM(script=[], fail_after=0)
        with pytest.raises(PipelineAborted, match="before producing"):
            make_pipeline(llm).run(SPEC)

    def test_failure_in_syntax_loop_keeps_last_revision(self):
        # tb, rtl(with error) succeed; the analysis call then dies
        llm = FlakyLLM(script=[TB, BROKEN_RTL], fail_after=2)
        result = make_pipeline(llm).run(SPEC)
        assert not result.syntax_ok
        assert result.rtl == BROKEN_RTL
        assert any(
            "LLM failure during the syntax loop" in step.content
            for step in result.transcript.steps
        )

    def test_failure_in_functional_loop_keeps_syntax_clean_code(self):
        wrong_but_clean = (
            "module top_module(input a, input b, output y);"
            " assign y = a | b; endmodule"
        )
        # tb + rtl fine; compile is clean (no LLM call); the verification
        # analysis call (call 3) dies
        llm = FlakyLLM(script=[TB, wrong_but_clean], fail_after=2)
        result = make_pipeline(llm).run(SPEC)
        assert result.syntax_ok
        assert not result.functional_ok
        assert result.rtl == wrong_but_clean
        assert any(
            "LLM failure during the functional loop" in step.content
            for step in result.transcript.steps
        )

    def test_no_failure_converges_normally(self):
        llm = FlakyLLM(script=[TB, GOOD_RTL], fail_after=99)
        result = make_pipeline(llm).run(SPEC)
        assert result.converged


class TestSweepFaultTolerance:
    """A failing problem task yields an error record, never a lost pid or a
    dead sweep — in both serial and parallel execution."""

    @staticmethod
    def _inject(monkeypatch, broken_pid, effect):
        real = runner_module._run_problem

        def flaky(profile, language, pid):
            if pid == broken_pid and language is Language.VERILOG:
                effect()
            return real(profile, language, pid)

        # `_task_entry` (the pickled dispatch point) resolves `_run_problem`
        # late, and forked workers inherit the patched module state
        monkeypatch.setattr(runner_module, "_run_problem", flaky)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_task_degrades_to_error_record(
        self, monkeypatch, workers
    ):
        suite = build_suite().head(4)
        broken_pid = suite.problems[1].pid

        def effect():
            raise RuntimeError("injected EDA toolchain explosion")

        self._inject(monkeypatch, broken_pid, effect)
        events = []
        runner = ExperimentRunner(
            suite=suite, workers=workers,
            progress=lambda event, metrics: events.append(event),
        )
        result = runner.run_config(GPT_4O, Language.VERILOG)

        assert [r.pid for r in result.records] == [
            p.pid for p in suite.problems
        ], "no pid may be lost"
        errored = result.records[1]
        assert errored.error
        assert "injected EDA toolchain explosion" in errored.error
        assert result.error_count == 1
        assert len(result.evaluated) == 3
        # the healthy problems were still measured
        assert all(not r.error for i, r in enumerate(result.records)
                   if i != 1)
        warnings = [e for e in events if e.level == "warning"]
        assert warnings, "the progress stream must carry a warning"
        assert any(broken_pid in e.key for e in warnings)

    def test_hung_task_times_out_without_stalling_the_sweep(
        self, monkeypatch
    ):
        suite = build_suite().head(3)
        broken_pid = suite.problems[0].pid
        self._inject(monkeypatch, broken_pid, lambda: time.sleep(300))
        events = []
        runner = ExperimentRunner(
            suite=suite, workers=2, task_timeout=1.0, task_retries=0,
            progress=lambda event, metrics: events.append(event),
        )
        started = time.perf_counter()
        result = runner.run_config(GPT_4O, Language.VERILOG)
        assert time.perf_counter() - started < 60
        assert result.records[0].error.startswith("timeout")
        assert result.error_count == 1
        assert [r.pid for r in result.records] == [
            p.pid for p in suite.problems
        ]
        assert any(e.level == "warning" for e in events)

    def test_error_records_do_not_skew_percentages(self, monkeypatch):
        suite = build_suite().head(4)
        broken_pid = suite.problems[2].pid

        def effect():
            raise RuntimeError("boom")

        clean = ExperimentRunner(suite=suite).run_config(
            GPT_4O, Language.VERILOG
        )
        self._inject(monkeypatch, broken_pid, effect)
        broken = ExperimentRunner(suite=suite).run_config(
            GPT_4O, Language.VERILOG
        )
        # the error record is excluded from the statistics, not counted as
        # a failure: percentages equal those computed from the clean run's
        # records with the broken pid dropped
        survivors = [r for r in clean.records if r.pid != broken_pid]
        expected_functional = 100.0 * sum(
            1 for r in survivors if r.baseline_functional_ok
        ) / len(survivors)
        assert broken.baseline_functional_pct == expected_functional
        expected_latency = sum(
            r.baseline_latency for r in survivors
        ) / len(survivors)
        assert broken.baseline_latency_avg == expected_latency
        # while a would-be "errors are failures" implementation would report
        # a lower rate whenever the clean run passed the broken problem
        if clean.records[2].baseline_functional_ok:
            assert broken.baseline_functional_pct > (
                100.0 * sum(
                    1 for r in survivors if r.baseline_functional_ok
                ) / len(clean.records)
            )
