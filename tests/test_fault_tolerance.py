"""Fault-injection tests: the pipeline must degrade gracefully on LLM failure."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, PipelineAborted
from repro.eda.toolchain import Language, Toolchain
from repro.llm import protocol
from repro.llm.interface import ChatMessage, LLMError, LLMResponse

SPEC = (
    "Implement a 2-input AND gate named top_module with single-bit inputs "
    "a and b and output y."
)

TB = """
module tb;
    reg a, b; wire y;
    integer errors;
    top_module dut(.a(a), .b(b), .y(y));
    initial begin
        errors = 0;
        a = 1; b = 0; #1;
        if (y !== 1'b0) begin
            $display("Test Case 1 Failed: y should be 0");
            errors = errors + 1;
        end
        a = 1; b = 1; #1;
        if (y !== 1'b1) begin
            $display("Test Case 2 Failed: y should be 1");
            errors = errors + 1;
        end
        if (errors == 0) $display("All tests passed successfully!");
        $finish;
    end
endmodule
"""
BROKEN_RTL = "module top_module(input a, input b, output y); assign y = a &; endmodule"
GOOD_RTL = "module top_module(input a, input b, output y); assign y = a & b; endmodule"


class FlakyLLM:
    """Answers normally until `fail_after` calls, then raises forever."""

    name = "flaky"

    def __init__(self, script, fail_after):
        self.script = list(script)
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, messages: list[ChatMessage]) -> LLMResponse:
        self.calls += 1
        if self.calls > self.fail_after:
            raise LLMError("connection reset by peer")
        text = self.script.pop(0) if self.script else GOOD_RTL
        return LLMResponse(text=text, latency_seconds=0.1)


def make_pipeline(llm):
    return Aivril2Pipeline(
        llm, Toolchain(), PipelineConfig(language=Language.VERILOG)
    )


class TestLLMFailures:
    def test_failure_before_any_code_aborts(self):
        llm = FlakyLLM(script=[], fail_after=0)
        with pytest.raises(PipelineAborted, match="before producing"):
            make_pipeline(llm).run(SPEC)

    def test_failure_in_syntax_loop_keeps_last_revision(self):
        # tb, rtl(with error) succeed; the analysis call then dies
        llm = FlakyLLM(script=[TB, BROKEN_RTL], fail_after=2)
        result = make_pipeline(llm).run(SPEC)
        assert not result.syntax_ok
        assert result.rtl == BROKEN_RTL
        assert any(
            "LLM failure during the syntax loop" in step.content
            for step in result.transcript.steps
        )

    def test_failure_in_functional_loop_keeps_syntax_clean_code(self):
        wrong_but_clean = (
            "module top_module(input a, input b, output y);"
            " assign y = a | b; endmodule"
        )
        # tb + rtl fine; compile is clean (no LLM call); the verification
        # analysis call (call 3) dies
        llm = FlakyLLM(script=[TB, wrong_but_clean], fail_after=2)
        result = make_pipeline(llm).run(SPEC)
        assert result.syntax_ok
        assert not result.functional_ok
        assert result.rtl == wrong_but_clean
        assert any(
            "LLM failure during the functional loop" in step.content
            for step in result.transcript.steps
        )

    def test_no_failure_converges_normally(self):
        llm = FlakyLLM(script=[TB, GOOD_RTL], fail_after=99)
        result = make_pipeline(llm).run(SPEC)
        assert result.converged
