"""Resource-limit regressions: defective code must not exhaust the host.

These inputs were found by the fuzz harness: without the width caps they
allocated multi-gigabyte integers while elaborating garbage declarations.
"""

import pytest

from repro.eda.toolchain import HdlFile, Language, Toolchain


def compile_one(text: str, language: Language):
    toolchain = Toolchain()
    ext = language.file_extension
    return toolchain.compile(
        [HdlFile(f"m{ext}", text, language)], "top_module"
    )


class TestWidthCaps:
    def test_huge_verilog_range_rejected(self):
        result = compile_one(
            "module top_module(input a, output y);"
            " reg [99999999:0] big; assign y = a; endmodule",
            Language.VERILOG,
        )
        assert not result.ok
        assert "exceeds the supported maximum" in result.log

    def test_huge_verilog_literal_rejected(self):
        result = compile_one(
            "module top_module(input a, output y);"
            " assign y = 99999999'd0; endmodule",
            Language.VERILOG,
        )
        assert not result.ok

    def test_huge_replication_rejected_at_runtime(self):
        # replication operands are evaluated when the assign process runs,
        # so the cap surfaces as a simulation error
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.v",
                    "module tb;\n"
                    "    reg a; wire [63:0] y;\n"
                    "    assign y = {4096{ {4096{a}} }};\n"
                    "    initial begin a = 1; #1 $finish; end\n"
                    "endmodule",
                    Language.VERILOG,
                )
            ],
            "tb",
        )
        assert not result.ok
        assert "exceeds the supported maximum" in result.runtime_error

    def test_huge_vhdl_range_rejected(self):
        result = compile_one(
            "library ieee;\nuse ieee.std_logic_1164.all;\n"
            "entity top_module is port (a : in std_logic;"
            " y : out std_logic_vector(99999999 downto 0)); end entity;\n"
            "architecture rtl of top_module is begin"
            " y <= (others => a); end architecture;",
            Language.VHDL,
        )
        assert not result.ok
        assert "exceeds the supported maximum" in result.log

    def test_huge_to_unsigned_rejected_at_runtime(self):
        toolchain = Toolchain()
        result = toolchain.simulate(
            [
                HdlFile(
                    "t.vhd",
                    "library ieee;\nuse ieee.std_logic_1164.all;\n"
                    "use ieee.numeric_std.all;\n"
                    "entity tb is end entity;\n"
                    "architecture sim of tb is begin\n"
                    "    stim: process begin\n"
                    "        assert to_unsigned(1, 99999999) = 1;\n"
                    "        wait;\n"
                    "    end process;\n"
                    "end architecture;",
                    Language.VHDL,
                )
            ],
            "tb",
        )
        assert not result.ok
        assert "out of range" in result.runtime_error

    def test_reasonable_wide_bus_still_works(self):
        result = compile_one(
            "module top_module(input [511:0] a, output [511:0] y);"
            " assign y = ~a; endmodule",
            Language.VERILOG,
        )
        assert result.ok
