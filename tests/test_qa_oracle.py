"""Oracle classification: every injected defect lands in its class.

These are end-to-end runs through both language frontends and the shared
simulation kernel — the acceptance tests for the differential triangle.
"""

import json

import pytest

from repro.designs.mutations import MutationError, functional, syntax
from repro.eda.toolchain import Language, Toolchain
from repro.formal import FormalVerdict
from repro.qa.oracle import (
    DIVERGENT_CLASSES,
    CaseMutation,
    FailureClass,
    FormalWitness,
    QaCase,
    case_sources,
    run_oracle,
)
from repro.qa.render import node_name
from repro.qa.spec import QaSpec

ADD_TREE = ["add", ["var", "a0"], ["var", "a1"]]
A0, A1 = node_name(["var", "a0"]), node_name(["var", "a1"])
ADD = node_name(ADD_TREE)


def comb_spec(name="qa_case"):
    return QaSpec(
        name=name, width=4, inputs=("a0", "a1"),
        outputs=(("y0", ADD_TREE),),
    )


def verilog_add_to_sub():
    return CaseMutation(Language.VERILOG, functional(
        "add becomes sub",
        f"assign {ADD} = {A0} + {A1};",
        f"assign {ADD} = {A0} - {A1};",
    ))


def vhdl_add_to(op):
    return CaseMutation(Language.VHDL, functional(
        f"add becomes {op}",
        f"{ADD} <= {A0} + {A1};",
        f"{ADD} <= {A0} {op} {A1};",
    ))


@pytest.fixture(scope="module")
def toolchain():
    return Toolchain(cache=True)


class TestCleanDesigns:
    def test_combinational_agreement(self, toolchain):
        verdict = run_oracle(QaCase(spec=comb_spec()), toolchain)
        assert verdict.failure_class is FailureClass.OK
        assert verdict.ok
        assert verdict.verilog.passed and verdict.vhdl.passed

    def test_clocked_agreement(self, toolchain):
        spec = QaSpec(
            name="qa_acc", width=4, inputs=("a0",), clocked=True,
            outputs=(("y0", ["add", ["var", "y0"], ["var", "a0"]]),),
        )
        verdict = run_oracle(QaCase(spec=spec), toolchain)
        assert verdict.failure_class is FailureClass.OK


class TestInjectedDefects:
    """One probe per divergent class — no class is unreachable."""

    def classify(self, toolchain, *mutations):
        case = QaCase(spec=comb_spec(), mutations=tuple(mutations))
        return run_oracle(case, toolchain).failure_class

    def test_verilog_functional_defect(self, toolchain):
        assert (
            self.classify(toolchain, verilog_add_to_sub())
            is FailureClass.VERILOG_MISMATCH
        )

    def test_vhdl_functional_defect(self, toolchain):
        assert (
            self.classify(toolchain, vhdl_add_to("-"))
            is FailureClass.VHDL_MISMATCH
        )

    def test_same_defect_both_languages(self, toolchain):
        assert (
            self.classify(toolchain, verilog_add_to_sub(), vhdl_add_to("-"))
            is FailureClass.BOTH_MISMATCH
        )

    def test_different_defect_per_language(self, toolchain):
        assert (
            self.classify(toolchain, verilog_add_to_sub(), vhdl_add_to("and"))
            is FailureClass.CROSS_MISMATCH
        )

    def test_one_frontend_rejects(self, toolchain):
        broken = CaseMutation(Language.VERILOG, syntax(
            "drop a semicolon", f"assign y0 = {ADD};", f"assign y0 = {ADD}"
        ))
        assert (
            self.classify(toolchain, broken)
            is FailureClass.COMPILE_DIVERGENCE
        )

    def test_both_frontends_reject(self, toolchain):
        v = CaseMutation(Language.VERILOG, syntax(
            "drop a semicolon", f"assign y0 = {ADD};", f"assign y0 = {ADD}"
        ))
        vh = CaseMutation(Language.VHDL, syntax(
            "drop the entity name", "entity top_module is", "entity is"
        ))
        assert self.classify(toolchain, v, vh) is FailureClass.COMPILE_REJECT

    def test_zero_delay_oscillation_is_a_crash(self, toolchain):
        # X-initialized feedback settles at X, so the oscillator must start
        # from known bits: an initial block plus a blocking-assign loop
        oscillator = CaseMutation(Language.VERILOG, functional(
            "zero-delay oscillation",
            f"assign {A0} = a0;",
            (f"assign {A0} = a0;\n"
             "    reg osc_p, osc_q;\n"
             "    initial begin osc_p = 1'b0; osc_q = 1'b0; end\n"
             "    always @(osc_q) osc_p = ~osc_q;\n"
             "    always @(osc_p) osc_q = osc_p;"),
        ))
        assert self.classify(toolchain, oscillator) is FailureClass.CRASH

    def test_every_class_is_ok_or_divergent(self):
        assert set(DIVERGENT_CLASSES) == set(FailureClass) - {FailureClass.OK}


class TestFormalVerdicts:
    """The fourth verdict source: proofs cross-checked against sampling."""

    def test_formal_is_off_by_default(self, toolchain):
        verdict = run_oracle(QaCase(spec=comb_spec()), toolchain)
        assert verdict.formal is None

    def test_clean_design_proves_in_both_languages(self, toolchain):
        verdict = run_oracle(
            QaCase(spec=comb_spec()), toolchain, formal=True
        )
        assert verdict.formal is not None
        for language in Language:
            assert (
                verdict.formal.result_for(language).verdict
                is FormalVerdict.PROVED
            )
        assert verdict.formal.inconsistencies == ()

    def test_mutated_design_refutes_consistently(self, toolchain):
        case = QaCase(spec=comb_spec(), mutations=(verilog_add_to_sub(),))
        verdict = run_oracle(case, toolchain, formal=True)
        assert verdict.failure_class is FailureClass.VERILOG_MISMATCH
        report = verdict.formal
        assert report.verilog.verdict is FormalVerdict.REFUTED
        assert report.verilog.witness
        assert report.vhdl.verdict is FormalVerdict.PROVED
        # refutation + simulated failure on the same side: consistent
        assert report.inconsistencies == ()

    def test_crash_class_survives_formal_pass(self, toolchain):
        # regression: the engine-dead → crash degradation must not be
        # masked by the formal pass raising on the oscillator source
        oscillator = CaseMutation(Language.VERILOG, functional(
            "zero-delay oscillation",
            f"assign {A0} = a0;",
            (f"assign {A0} = a0;\n"
             "    reg osc_p, osc_q;\n"
             "    initial begin osc_p = 1'b0; osc_q = 1'b0; end\n"
             "    always @(osc_q) osc_p = ~osc_q;\n"
             "    always @(osc_p) osc_q = osc_p;"),
        ))
        case = QaCase(spec=comb_spec(), mutations=(oscillator,))
        verdict = run_oracle(case, toolchain, formal=True)
        assert verdict.failure_class is FailureClass.CRASH
        assert verdict.formal is not None

    def test_formal_failure_never_raises(self, toolchain, monkeypatch):
        # regression: a crashing prover degrades to an ERROR verdict and
        # the oracle still classifies from simulation alone
        import repro.formal

        def boom(*args, **kwargs):
            raise RuntimeError("prover exploded")

        monkeypatch.setattr(repro.formal, "check_source", boom)
        verdict = run_oracle(
            QaCase(spec=comb_spec()), toolchain, formal=True
        )
        assert verdict.failure_class is FailureClass.OK
        for language in Language:
            result = verdict.formal.result_for(language)
            assert result.verdict is FormalVerdict.ERROR
            assert "prover exploded" in result.detail

    def test_proof_contradicting_simulation_is_flagged(self, toolchain,
                                                       monkeypatch):
        import repro.formal
        from repro.formal import FormalResult

        def always_proved(*args, **kwargs):
            return FormalResult(
                verdict=FormalVerdict.PROVED, method="structural"
            )

        monkeypatch.setattr(repro.formal, "check_source", always_proved)
        case = QaCase(spec=comb_spec(), mutations=(verilog_add_to_sub(),))
        verdict = run_oracle(case, toolchain, formal=True)
        assert verdict.failure_class is FailureClass.VERILOG_MISMATCH
        assert len(verdict.formal.inconsistencies) == 1
        assert "verilog" in verdict.formal.inconsistencies[0]

    def test_witness_round_trips_through_json(self):
        witness = FormalWitness(
            language=Language.VERILOG,
            inputs=({"a0": 3, "a1": 9}, {"a0": 0, "a1": 15}),
        )
        case = QaCase(spec=comb_spec(), witness=witness)
        reloaded = QaCase.from_json(json.loads(json.dumps(case.to_json())))
        assert reloaded.witness == witness


class TestCaseMechanics:
    def test_case_json_round_trip(self):
        case = QaCase(
            spec=comb_spec(),
            mutations=(verilog_add_to_sub(), vhdl_add_to("and")),
            expected_class=FailureClass.CROSS_MISMATCH,
            note="round trip",
        )
        reloaded = QaCase.from_json(json.loads(json.dumps(case.to_json())))
        assert reloaded.spec.canonical() == case.spec.canonical()
        assert reloaded.mutations == case.mutations
        assert reloaded.expected_class is FailureClass.CROSS_MISMATCH
        assert reloaded.note == "round trip"
        assert reloaded.case_name == case.case_name

    def test_sources_carry_applied_mutations(self):
        case = QaCase(spec=comb_spec(), mutations=(verilog_add_to_sub(),))
        sources = case_sources(case)
        assert f"{A0} - {A1}" in sources[Language.VERILOG]
        assert f"{A0} + {A1}" in sources[Language.VHDL]

    def test_missing_anchor_raises(self):
        case = QaCase(
            spec=comb_spec(),
            mutations=(CaseMutation(Language.VERILOG, functional(
                "bogus", "no such anchor text", "whatever"
            )),),
        )
        with pytest.raises(MutationError):
            case_sources(case)
