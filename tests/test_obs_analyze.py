"""Tests for trace analytics: span forest, critical path, folded stacks."""

import pytest

from repro.obs import (
    build_span_forest,
    critical_path,
    critical_path_of_trace,
    fold_stacks,
    fold_trace,
    render_critical_path,
    render_flame,
)


def span(name, span_id, parent_id=None, *, wall=1.0, start=0.0, pid=1,
         seq=0, attrs=None, status="ok"):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "pid": pid,
        "seq": seq,
        "start": start,
        "end": start + wall,
        "wall_seconds": wall,
        "cpu_seconds": wall,
        "attrs": attrs or {},
        "status": status,
    }


def linear_trace():
    """root(10) -> mid(6) -> leaf(2), plus a sibling(3) under root."""
    return [
        span("root", "a", wall=10.0, start=0.0),
        span("mid", "b", "a", wall=6.0, start=1.0),
        span("sibling", "c", "a", wall=3.0, start=7.5),
        span("leaf", "d", "b", wall=2.0, start=2.0),
    ]


class TestBuildSpanForest:
    def test_links_children_and_finds_roots(self):
        roots = build_span_forest(linear_trace())
        assert [r.name for r in roots] == ["root"]
        (root,) = roots
        assert [c.name for c in root.children] == ["mid", "sibling"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_orphans_become_roots(self):
        records = [
            span("root", "a", wall=5.0),
            # parent "ghost" never closed (crashed worker): orphan root
            span("stray", "b", "ghost", wall=1.0),
        ]
        roots = build_span_forest(records)
        assert sorted(r.name for r in roots) == ["root", "stray"]

    def test_children_ordered_by_start(self):
        records = [
            span("root", "a", wall=9.0),
            span("late", "b", "a", wall=1.0, start=5.0, seq=1),
            span("early", "c", "a", wall=1.0, start=1.0, seq=2),
        ]
        (root,) = build_span_forest(records)
        assert [c.name for c in root.children] == ["early", "late"]

    def test_non_span_records_ignored(self):
        records = [span("root", "a"), {"type": "event", "name": "x"}]
        assert len(build_span_forest(records)) == 1


class TestCriticalPath:
    def test_follows_hottest_child(self):
        steps = critical_path(linear_trace())
        assert [s.name for s in steps] == ["root", "mid", "leaf"]

    def test_self_times_sum_to_root_wall(self):
        """The ISSUE's acceptance criterion, on a known tree."""
        steps = critical_path(linear_trace())
        assert sum(s.self_seconds for s in steps) == pytest.approx(
            steps[0].wall_seconds, abs=1e-12
        )
        # telescoping attribution: root hands 6 down, keeps 4; mid hands
        # 2 down, keeps 4; the leaf keeps its whole 2
        assert [s.self_seconds for s in steps] == [4.0, 4.0, 2.0]

    def test_own_seconds_subtracts_all_children(self):
        steps = critical_path(linear_trace())
        # root's own work excludes BOTH children (6 + 3), not just the
        # hottest one the path descends into
        assert steps[0].own_seconds == pytest.approx(1.0)

    def test_picks_largest_root_tree(self):
        records = [
            span("small", "a", wall=1.0),
            span("big", "b", wall=5.0),
        ]
        steps = critical_path(records)
        assert steps[0].name == "big"

    def test_empty_trace(self):
        assert critical_path([]) == []
        assert "no spans" in render_critical_path([])

    def test_render_mentions_every_step(self):
        text = render_critical_path(critical_path(linear_trace()))
        for name in ("root", "mid", "leaf"):
            assert name in text
        assert "self times sum to the root wall" in text

    def test_render_shows_attr_hints(self):
        records = [
            span("task.problem", "a", wall=2.0,
                 attrs={"key": "gpt-4o/verilog/gates_and"}),
        ]
        text = render_critical_path(critical_path(records))
        assert "gpt-4o/verilog/gates_and" in text


class TestFoldStacks:
    def test_folds_by_name_stack_with_self_microseconds(self):
        folded = fold_stacks(linear_trace())
        assert folded == {
            "root": 1_000_000,  # 10 - (6 + 3)
            "root;mid": 4_000_000,  # 6 - 2
            "root;mid;leaf": 2_000_000,
            "root;sibling": 3_000_000,
        }

    def test_same_stack_accumulates(self):
        records = [
            span("root", "a", wall=10.0),
            span("work", "b", "a", wall=2.0, seq=1),
            span("work", "c", "a", wall=3.0, seq=2, start=3.0),
        ]
        folded = fold_stacks(records)
        assert folded["root;work"] == 5_000_000

    def test_total_folded_equals_total_root_wall(self):
        folded = fold_stacks(linear_trace())
        assert sum(folded.values()) == 10_000_000

    def test_render_flame_is_sorted_lines(self):
        text = render_flame(fold_stacks(linear_trace()))
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert "root;mid;leaf 2000000" in lines

    def test_render_flame_empty(self):
        assert render_flame({}) == ""


class TestFileEntrypoints:
    def test_round_trip_through_a_file(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in linear_trace())
        )
        steps = critical_path_of_trace(path)
        assert [s.name for s in steps] == ["root", "mid", "leaf"]
        assert fold_trace(path) == fold_stacks(linear_trace())
