"""Unit and property tests for the four-state logic vector."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.values import Logic, logic


def bits(width: int):
    return st.integers(min_value=0, max_value=(1 << width) - 1)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Logic.from_int(0x1F, 4).to_int() == 0xF

    def test_from_int_negative_wraps(self):
        assert Logic.from_int(-1, 4).to_int() == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Logic(0)

    def test_from_string_with_x(self):
        value = Logic.from_string("1x0")
        assert value.width == 3
        assert value.bit_char(2) == "1"
        assert value.bit_char(1) == "x"
        assert value.bit_char(0) == "0"

    def test_from_string_underscores_skipped(self):
        assert Logic.from_string("1_0").width == 2

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Logic.from_string("102")

    def test_unknown_is_all_x(self):
        assert Logic.unknown(5).xmask == 0b11111

    def test_normalization_clears_bits_under_x(self):
        value = Logic(4, bits=0b1111, xmask=0b0011)
        assert value.bits == 0b1100

    def test_logic_helper_infers_width(self):
        assert logic(5).width == 3
        assert logic(5, 8).width == 8

    def test_to_int_raises_on_x(self):
        with pytest.raises(ValueError):
            Logic.unknown(2).to_int()

    def test_to_signed(self):
        assert Logic.from_int(0b1111, 4).to_signed() == -1
        assert Logic.from_int(0b0111, 4).to_signed() == 7


class TestBitwise:
    def test_and_x_dominated_by_zero(self):
        zero = Logic.from_int(0, 1)
        x = Logic.unknown(1)
        assert (zero & x).to_int() == 0

    def test_and_x_with_one_is_x(self):
        one = Logic.from_int(1, 1)
        assert (one & Logic.unknown(1)).has_x

    def test_or_x_dominated_by_one(self):
        one = Logic.from_int(1, 1)
        assert (one | Logic.unknown(1)).to_int() == 1

    def test_xor_x_always_x(self):
        assert (Logic.from_int(0, 1) ^ Logic.unknown(1)).has_x

    def test_invert(self):
        assert (~Logic.from_int(0b1010, 4)).to_int() == 0b0101

    def test_invert_preserves_x(self):
        assert (~Logic.unknown(4)).xmask == 0b1111

    @given(bits(8), bits(8))
    def test_and_matches_python(self, a, b):
        result = Logic.from_int(a, 8) & Logic.from_int(b, 8)
        assert result.to_int() == (a & b)

    @given(bits(8), bits(8))
    def test_de_morgan(self, a, b):
        la, lb = Logic.from_int(a, 8), Logic.from_int(b, 8)
        assert ~(la & lb) == (~la | ~lb)


class TestArithmetic:
    @given(bits(8), bits(8))
    def test_add_wraps(self, a, b):
        result = Logic.from_int(a, 8).add(Logic.from_int(b, 8))
        assert result.to_int() == (a + b) & 0xFF

    @given(bits(8), bits(8))
    def test_sub_wraps(self, a, b):
        result = Logic.from_int(a, 8).sub(Logic.from_int(b, 8))
        assert result.to_int() == (a - b) & 0xFF

    def test_add_with_x_is_all_x(self):
        result = Logic.unknown(4).add(Logic.from_int(1, 4))
        assert result.xmask == 0xF

    def test_div_by_zero_is_x(self):
        assert Logic.from_int(4, 4).div(Logic.from_int(0, 4)).has_x

    def test_mod(self):
        result = Logic.from_int(7, 4).mod(Logic.from_int(3, 4))
        assert result.to_int() == 1

    def test_neg(self):
        assert Logic.from_int(1, 4).neg().to_int() == 0xF


class TestShifts:
    @given(bits(8), st.integers(min_value=0, max_value=10))
    def test_shl(self, a, n):
        result = Logic.from_int(a, 8).shl(Logic.from_int(n, 4))
        assert result.to_int() == (a << n) & 0xFF

    @given(bits(8), st.integers(min_value=0, max_value=10))
    def test_shr(self, a, n):
        result = Logic.from_int(a, 8).shr(Logic.from_int(n, 4))
        assert result.to_int() == a >> n

    def test_ashr_sign_fill(self):
        value = Logic.from_int(0b1000_0000, 8)
        assert value.ashr(Logic.from_int(2, 4)).to_int() == 0b1110_0000

    def test_ashr_zero_fill_for_positive(self):
        value = Logic.from_int(0b0100_0000, 8)
        assert value.ashr(Logic.from_int(2, 4)).to_int() == 0b0001_0000


class TestComparisons:
    def test_eq_with_known_difference_is_definite(self):
        a = Logic(4, bits=0b0001, xmask=0b1000)
        b = Logic(4, bits=0b0010, xmask=0b1000)
        assert a.eq(b).to_int() == 0

    def test_eq_with_only_x_differences_is_x(self):
        a = Logic(2, bits=0, xmask=0b10)
        b = Logic(2, bits=0, xmask=0b00)
        assert a.eq(b).has_x

    def test_case_eq_matches_x_literally(self):
        a = Logic(2, bits=0, xmask=0b10)
        b = Logic(2, bits=0, xmask=0b10)
        assert a.case_eq(b).to_int() == 1

    @given(bits(6), bits(6))
    def test_relational_consistency(self, a, b):
        la, lb = Logic.from_int(a, 6), Logic.from_int(b, 6)
        assert la.lt(lb).to_int() == (1 if a < b else 0)
        assert la.ge(lb).to_int() == (1 if a >= b else 0)

    def test_lt_signed(self):
        minus_one = Logic.from_int(0xF, 4)
        one = Logic.from_int(1, 4)
        assert minus_one.lt_signed(one).to_int() == 1


class TestReductionsAndLogical:
    def test_reduce_and_zero_dominates_x(self):
        value = Logic(2, bits=0b00, xmask=0b10)
        assert value.reduce_and().to_int() == 0

    def test_reduce_or_one_dominates_x(self):
        value = Logic(2, bits=0b01, xmask=0b10)
        assert value.reduce_or().to_int() == 1

    def test_reduce_xor_x_is_x(self):
        assert Logic(2, bits=0, xmask=0b01).reduce_xor().has_x

    @given(bits(8))
    def test_reduce_xor_is_parity(self, a):
        result = Logic.from_int(a, 8).reduce_xor()
        assert result.to_int() == bin(a).count("1") % 2

    def test_logical_and_short_circuit_zero(self):
        zero = Logic.from_int(0, 4)
        assert zero.logical_and(Logic.unknown(4)).to_int() == 0

    def test_logical_or_short_circuit_one(self):
        one = Logic.from_int(2, 4)  # nonzero
        assert one.logical_or(Logic.unknown(4)).to_int() == 1

    def test_is_true_false_for_x(self):
        assert not Logic.unknown(1).is_true()


class TestStructure:
    def test_concat_order(self):
        hi = Logic.from_int(0b10, 2)
        lo = Logic.from_int(0b01, 2)
        assert hi.concat(lo).to_int() == 0b1001

    @given(bits(4), st.integers(min_value=1, max_value=4))
    def test_replicate_width(self, a, n):
        value = Logic.from_int(a, 4)
        assert value.replicate(n).width == 4 * n

    def test_slice(self):
        value = Logic.from_int(0b11001010, 8)
        assert value.slice(5, 2).to_int() == 0b0010

    def test_slice_beyond_width_reads_x(self):
        value = Logic.from_int(0b1, 2)
        assert value.slice(4, 3).has_x

    def test_set_slice(self):
        value = Logic.from_int(0, 8)
        updated = value.set_slice(5, 2, Logic.from_int(0b1111, 4))
        assert updated.to_int() == 0b00111100

    @given(bits(8), st.integers(0, 7))
    def test_bit_roundtrip(self, a, i):
        value = Logic.from_int(a, 8)
        assert value.bit(i).to_int() == (a >> i) & 1

    def test_bit_out_of_range_is_x(self):
        assert Logic.from_int(0, 2).bit(5).has_x

    def test_sign_extend(self):
        assert Logic.from_int(0b1000, 4).sign_extend(8).to_int() == 0b11111000
        assert Logic.from_int(0b0100, 4).sign_extend(8).to_int() == 0b00000100


class TestFormatting:
    def test_bit_string(self):
        assert Logic.from_string("10x1").to_bit_string() == "10x1"

    def test_format_decimal(self):
        assert Logic.from_int(42, 8).format("d") == "42"

    def test_format_hex(self):
        assert Logic.from_int(0xAB, 8).format("h") == "ab"

    def test_format_x_decimal(self):
        assert Logic.unknown(8).format("d") == "x"

    def test_str(self):
        assert str(Logic.from_int(0b101, 3)) == "3'b101"
