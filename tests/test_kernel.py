"""Tests for the stratified event-queue kernel."""

import pytest

from repro.sim.kernel import (
    Delay,
    Finish,
    SimulationError,
    Simulator,
    WaitChange,
)
from repro.sim.runtime import Design, Edge, Process, Sensitivity, Signal
from repro.sim.values import Logic


def make_design():
    return Design(name="t")


class TestScheduling:
    def test_delay_advances_time(self):
        design = make_design()
        seen = []

        def factory(sim):
            def body():
                seen.append(sim.time)
                yield Delay(10)
                seen.append(sim.time)

            return body()

        design.add_process(Process("p", factory))
        Simulator(design).run()
        assert seen == [0, 10]

    def test_processes_start_at_time_zero(self):
        design = make_design()
        order = []
        for name in ("a", "b"):
            def factory(sim, name=name):
                def body():
                    order.append(name)
                    return
                    yield

                return body()

            design.add_process(Process(name, factory))
        Simulator(design).run()
        assert sorted(order) == ["a", "b"]

    def test_finish_stops_other_processes(self):
        design = make_design()
        late = []

        def finisher(sim):
            def body():
                yield Delay(5)
                yield Finish()

            return body()

        def lagger(sim):
            def body():
                yield Delay(100)
                late.append(sim.time)

            return body()

        design.add_process(Process("f", finisher))
        design.add_process(Process("l", lagger))
        stats = Simulator(design).run()
        assert stats.finished_cleanly
        assert stats.end_time == 5
        assert late == []

    def test_max_time_bounds_run(self):
        design = make_design()

        def clock(sim):
            def body():
                while True:
                    yield Delay(5)

            return body()

        design.add_process(Process("clk", clock))
        stats = Simulator(design, max_time=50).run()
        assert stats.end_time <= 50


class TestSignals:
    def test_write_wakes_waiter(self):
        design = make_design()
        signal = design.new_signal("s", 1)
        woken = []

        def waiter(sim):
            def body():
                yield WaitChange.on(signal)
                woken.append(sim.time)

            return body()

        def driver(sim):
            def body():
                yield Delay(7)
                sim.write_signal(signal, Logic.from_int(1, 1))

            return body()

        design.add_process(Process("w", waiter))
        design.add_process(Process("d", driver))
        Simulator(design).run()
        assert woken == [7]

    def test_same_value_write_does_not_wake(self):
        design = make_design()
        signal = design.new_signal("s", 1, Logic.from_int(0, 1))
        woken = []

        def waiter(sim):
            def body():
                yield WaitChange.on(signal)
                woken.append(sim.time)

            return body()

        def driver(sim):
            def body():
                yield Delay(3)
                sim.write_signal(signal, Logic.from_int(0, 1))

            return body()

        design.add_process(Process("w", waiter))
        design.add_process(Process("d", driver))
        Simulator(design).run()
        assert woken == []

    def test_posedge_filter(self):
        design = make_design()
        clk = design.new_signal("clk", 1, Logic.from_int(0, 1))
        edges = []

        def waiter(sim):
            def body():
                while True:
                    yield WaitChange((Sensitivity(clk, Edge.POS),))
                    edges.append(sim.time)

            return body()

        def driver(sim):
            def body():
                for value in (1, 0, 1, 0):
                    yield Delay(5)
                    sim.write_signal(clk, Logic.from_int(value, 1))

            return body()

        design.add_process(Process("w", waiter))
        design.add_process(Process("d", driver))
        Simulator(design).run()
        assert edges == [5, 15]  # only rising edges

    def test_nba_commits_after_active_region(self):
        design = make_design()
        a = design.new_signal("a", 4, Logic.from_int(1, 4))
        b = design.new_signal("b", 4, Logic.from_int(2, 4))
        observed = {}

        def swapper(sim):
            def body():
                # classic NBA swap: both reads see pre-update values
                sim.schedule_nba(a, b.value)
                sim.schedule_nba(b, a.value)
                yield Delay(1)
                observed["a"] = a.value.to_int()
                observed["b"] = b.value.to_int()

            return body()

        design.add_process(Process("s", swapper))
        Simulator(design).run()
        assert observed == {"a": 2, "b": 1}

    def test_nba_update_read_modify_write(self):
        design = make_design()
        v = design.new_signal("v", 4, Logic.from_int(0, 4))

        def writer(sim):
            def body():
                sim.schedule_nba_update(
                    v, lambda old: old.set_slice(0, 0, Logic.from_int(1, 1))
                )
                sim.schedule_nba_update(
                    v, lambda old: old.set_slice(3, 3, Logic.from_int(1, 1))
                )
                yield Delay(1)

            return body()

        design.add_process(Process("w", writer))
        Simulator(design).run()
        assert v.value.to_int() == 0b1001

    def test_schedule_write_fires_later(self):
        design = make_design()
        s = design.new_signal("s", 1, Logic.from_int(0, 1))
        at = {}

        def proc(sim):
            def body():
                sim.schedule_write(s, Logic.from_int(1, 1), 25)
                yield Delay(10)
                at["mid"] = s.value.to_int()
                yield Delay(20)
                at["end"] = s.value.to_int()

            return body()

        design.add_process(Process("p", proc))
        Simulator(design).run()
        assert at == {"mid": 0, "end": 1}


class TestGuards:
    def test_delta_limit_detects_oscillation(self):
        design = make_design()
        s = design.new_signal("s", 1, Logic.from_int(0, 1))

        def oscillator(sim):
            def body():
                while True:
                    sim.write_signal(s, ~s.value)
                    yield WaitChange.on(s)

            return body()

        def kicker(sim):
            def body():
                sim.write_signal(s, Logic.from_int(1, 1))
                return
                yield

            return body()

        # two oscillators feeding each other in zero time
        design.add_process(Process("o1", oscillator))
        design.add_process(Process("o2", oscillator))
        design.add_process(Process("k", kicker))
        with pytest.raises(SimulationError, match="step activation limit"):
            Simulator(design).run()

    def test_custom_step_activation_limit(self):
        """The ctor parameter shadows the class default per instance."""
        design = make_design()
        s = design.new_signal("s", 1, Logic.from_int(0, 1))

        def oscillator(sim):
            def body():
                while True:
                    sim.write_signal(s, ~s.value)
                    yield WaitChange.on(s)

            return body()

        def kicker(sim):
            def body():
                sim.write_signal(s, Logic.from_int(1, 1))
                return
                yield

            return body()

        design.add_process(Process("o1", oscillator))
        design.add_process(Process("o2", oscillator))
        design.add_process(Process("k", kicker))
        simulator = Simulator(design, step_activation_limit=500)
        with pytest.raises(
            SimulationError, match=r"step activation limit \(500\)"
        ):
            simulator.run()
        # the tightened limit caught the loop well before the default would
        assert simulator.stats.process_activations < 2_000
        # instance tuning must not leak into the class default
        assert Simulator.STEP_ACTIVATION_LIMIT == 100_000

    def test_empty_wait_marks_process_done(self):
        design = make_design()

        def body_factory(sim):
            def body():
                yield WaitChange(())

            return body()

        process = Process("p", body_factory)
        design.add_process(process)
        Simulator(design).run()
        assert process.done

    def test_negative_delay_rejected(self):
        design = make_design()

        def proc(sim):
            def body():
                yield Delay(-1)

            return body()

        design.add_process(Process("p", proc))
        with pytest.raises(SimulationError, match="negative delay"):
            Simulator(design).run()

    def test_display_collects_output(self):
        design = make_design()

        def proc(sim):
            def body():
                sim.display("hello")
                return
                yield

            return body()

        design.add_process(Process("p", proc))
        simulator = Simulator(design)
        simulator.run()
        assert simulator.output == ["hello"]


class TestDesignContainer:
    def test_duplicate_signal_rejected(self):
        design = make_design()
        design.new_signal("s", 1)
        with pytest.raises(ValueError, match="duplicate"):
            design.new_signal("s", 1)

    def test_signal_lookup_error_lists_names(self):
        design = make_design()
        design.new_signal("a", 1)
        with pytest.raises(KeyError, match="known"):
            design.signal("missing")

    def test_trace_records_changes(self):
        design = make_design()
        s = design.new_signal("s", 1, Logic.from_int(0, 1))

        def proc(sim):
            def body():
                yield Delay(5)
                sim.write_signal(s, Logic.from_int(1, 1))

            return body()

        design.add_process(Process("p", proc))
        simulator = Simulator(design)
        simulator.trace(s)
        simulator.run()
        assert [(t, v.to_int()) for t, v in s.trace] == [(0, 0), (5, 1)]
