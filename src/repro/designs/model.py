"""Design specifications and Python reference models.

A :class:`DesignSpec` captures the interface of one benchmark problem; the
reference model (:class:`CombModel` or :class:`SeqModel`) captures its exact
behaviour in plain Python. Testbenches for both languages are generated from
the model's predictions, so Verilog and VHDL judge the same input/output
contract — the property that makes the paper's cross-language comparison
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: the module/entity name every problem uses, as VerilogEval fixes `top_module`
TOP_NAME = "top_module"


@dataclass(frozen=True)
class PortSpec:
    """One port of the design under test."""

    name: str
    width: int
    direction: str  # "in" | "out"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"bad direction {self.direction!r} for {self.name}")
        if self.width <= 0:
            raise ValueError(f"bad width {self.width} for {self.name}")


@dataclass(frozen=True)
class DesignSpec:
    """Interface of one problem: data ports plus clock/reset convention.

    Sequential designs implicitly carry ``clk`` and, when ``has_reset`` is
    set, a synchronous active-high ``rst`` as their first ports; the data
    ports listed here exclude both.
    """

    name: str
    ports: tuple[PortSpec, ...]
    clocked: bool = False
    has_reset: bool = True  # only meaningful when clocked

    @property
    def inputs(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if p.direction == "in")

    @property
    def outputs(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if p.direction == "out")

    @property
    def input_bits(self) -> int:
        return sum(p.width for p in self.inputs)

    def port(self, name: str) -> PortSpec:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port {name!r} in design {self.name!r}")


@dataclass
class CombModel:
    """Reference model of a combinational design.

    ``fn`` maps an input-name→int dict to an output-name→int dict. Values are
    plain unsigned ints; the caller masks to port width.
    """

    fn: Callable[[dict[str, int]], dict[str, int]]

    def evaluate(self, spec: DesignSpec, inputs: dict[str, int]) -> dict[str, int]:
        outputs = self.fn(dict(inputs))
        return {
            p.name: outputs[p.name] & ((1 << p.width) - 1) for p in spec.outputs
        }


@dataclass
class SeqModel:
    """Reference model of a synchronous design.

    * ``reset`` returns the post-reset state (any hashable value).
    * ``step(state, inputs)`` returns ``(next_state, outputs)`` — the outputs
      observed *after* the clock edge, with the cycle's inputs still applied
      (Moore outputs depend on next_state only; registered-Mealy outputs may
      also use the held inputs).
    """

    reset: Callable[[], object]
    step: Callable[[object, dict[str, int]], tuple[object, dict[str, int]]]

    def run(
        self, spec: DesignSpec, stimulus: list[dict[str, int]]
    ) -> list[dict[str, int]]:
        """Expected outputs for each cycle of the stimulus."""
        state = self.reset()
        expected: list[dict[str, int]] = []
        for inputs in stimulus:
            state, outputs = self.step(state, dict(inputs))
            expected.append(
                {
                    p.name: outputs[p.name] & ((1 << p.width) - 1)
                    for p in spec.outputs
                }
            )
        return expected


def mask(value: int, width: int) -> int:
    """Truncate an int to *width* bits (two's-complement wrap for negatives)."""
    return value & ((1 << width) - 1)


@dataclass
class ProblemDefinition:
    """Everything the suite needs to realize one benchmark problem.

    Produced by the family generators in :mod:`repro.evalsuite.generators`;
    consumed by the suite builder, which attaches generated testbenches and
    validates the defect catalogs.
    """

    pid: str
    family: str
    spec: DesignSpec
    prompt: str  # the natural-language task given to the Code Agent
    reference_verilog: str
    reference_vhdl: str
    model: CombModel | SeqModel
    #: defect catalogs per language; see repro.designs.mutations
    syntax_mutations_verilog: list = field(default_factory=list)
    syntax_mutations_vhdl: list = field(default_factory=list)
    functional_mutations_verilog: list = field(default_factory=list)
    functional_mutations_vhdl: list = field(default_factory=list)
    #: extra stimulus cycles/vectors beyond the default policy (sequential:
    #: directed cycles inserted right after reset; combinational: appended)
    extra_vectors: list[dict[str, int]] = field(default_factory=list)
    #: for sequential problems: length of the random stimulus tail
    random_cycles: int = 24
    #: expected outputs immediately after reset (checked as "Test Case 0"
    #: before any stimulus) — catches wrong-reset-value defects that the
    #: first stimulus edge would otherwise overwrite
    reset_outputs: dict[str, int] | None = None
