"""Defect catalogs: syntax and functional mutations of reference sources.

The synthetic LLM expresses model-dependent *capability* by injecting defects
from these catalogs into the reference implementation. A mutation is a
single-occurrence textual substitution with an intent label:

* **syntax** mutations must make the source fail compilation (the Review
  Agent's territory);
* **functional** mutations must compile cleanly but fail the golden
  testbench (the Verification Agent's territory).

The suite validator (`repro.evalsuite.validate`) enforces both properties
for every catalog entry in both languages, so experiments never depend on a
mutation that the loops could not possibly observe.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class MutationError(ValueError):
    """A mutation's anchor is missing or ambiguous in the reference source."""


@dataclass(frozen=True)
class Mutation:
    """One reversible defect: replace `find` (unique) with `replace`."""

    kind: str  # "syntax" | "functional"
    description: str  # human-readable defect description (shows up in tests)
    find: str
    replace: str

    def __post_init__(self) -> None:
        if self.kind not in ("syntax", "functional"):
            raise ValueError(f"bad mutation kind {self.kind!r}")
        if self.find == self.replace:
            raise ValueError(f"mutation {self.description!r} changes nothing")


def _flex_pattern(find: str) -> re.Pattern:
    """Whitespace-tolerant pattern: any whitespace run matches any other.

    Multi-line anchors would otherwise be hostage to the exact indentation
    the skeleton emitters produce.
    """
    parts = [re.escape(tok) for tok in re.split(r"\s+", find.strip()) if tok]
    return re.compile(r"\s+".join(parts))


def apply_mutation(source: str, mutation: Mutation) -> str:
    """Apply one mutation; raises :class:`MutationError` on bad anchors.

    Exact-match replacement is preferred; when the anchor spans reformatted
    lines, a whitespace-tolerant match is attempted. Either way the anchor
    must be unique in the source.
    """
    count = source.count(mutation.find)
    if count == 1:
        return source.replace(mutation.find, mutation.replace, 1)
    if count > 1:
        raise MutationError(
            f"anchor {mutation.find!r} is ambiguous ({count} occurrences) for "
            f"mutation {mutation.description!r}"
        )
    pattern = _flex_pattern(mutation.find)
    matches = list(pattern.finditer(source))
    if not matches:
        raise MutationError(
            f"anchor {mutation.find!r} not found for mutation "
            f"{mutation.description!r}"
        )
    if len(matches) > 1:
        raise MutationError(
            f"anchor {mutation.find!r} is ambiguous ({len(matches)} loose "
            f"matches) for mutation {mutation.description!r}"
        )
    start, end = matches[0].span()
    return source[:start] + mutation.replace + source[end:]


def apply_mutations(source: str, mutations: list[Mutation]) -> str:
    """Apply several mutations in order (later anchors see earlier edits)."""
    for mutation in mutations:
        source = apply_mutation(source, mutation)
    return source


def syntax(description: str, find: str, replace: str) -> Mutation:
    return Mutation("syntax", description, find, replace)


def functional(description: str, find: str, replace: str) -> Mutation:
    return Mutation("functional", description, find, replace)
