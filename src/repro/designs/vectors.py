"""Stimulus generation for golden testbenches.

Combinational problems get exhaustive coverage when the input space is small
(≤ ``EXHAUSTIVE_BITS`` bits) and corner-plus-pseudorandom coverage otherwise.
Sequential problems get a directed prologue (hold, enable bursts) followed by
a seeded pseudorandom tail. Everything is deterministic per problem id, so
the suite and all experiments are exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random

from repro.designs.model import DesignSpec

EXHAUSTIVE_BITS = 6
RANDOM_VECTORS = 48


def _rng_for(pid: str, salt: str) -> random.Random:
    digest = hashlib.sha256(f"{pid}:{salt}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def comb_vectors(spec: DesignSpec, pid: str) -> list[dict[str, int]]:
    """Input vectors for a combinational problem."""
    inputs = spec.inputs
    total_bits = spec.input_bits
    if not inputs:
        return [{}]
    if total_bits <= EXHAUSTIVE_BITS:
        vectors = []
        for packed in range(1 << total_bits):
            vector = {}
            shift = 0
            for port in inputs:
                vector[port.name] = (packed >> shift) & ((1 << port.width) - 1)
                shift += port.width
            vectors.append(vector)
        return vectors
    vectors = []
    # corners: all zeros, all ones, each input alone at all-ones
    vectors.append({p.name: 0 for p in inputs})
    vectors.append({p.name: (1 << p.width) - 1 for p in inputs})
    for lone in inputs:
        vector = {p.name: 0 for p in inputs}
        vector[lone.name] = (1 << lone.width) - 1
        vectors.append(vector)
    # walking ones across each input
    for port in inputs:
        for bit in range(port.width):
            vector = {p.name: 0 for p in inputs}
            vector[port.name] = 1 << bit
            vectors.append(vector)
    rng = _rng_for(pid, "comb")
    for _ in range(RANDOM_VECTORS):
        vectors.append(
            {p.name: rng.randrange(1 << p.width) for p in inputs}
        )
    # dedupe, preserving order
    seen: set[tuple] = set()
    unique = []
    for vector in vectors:
        key = tuple(sorted(vector.items()))
        if key not in seen:
            seen.add(key)
            unique.append(vector)
    return unique


def seq_stimulus(
    spec: DesignSpec, pid: str, *, random_cycles: int = 24
) -> list[dict[str, int]]:
    """Per-cycle input dicts for a sequential problem (reset handled by TB)."""
    inputs = [p for p in spec.inputs]
    rng = _rng_for(pid, "seq")
    stimulus: list[dict[str, int]] = []

    def cycle(**overrides: int) -> dict[str, int]:
        vector = {p.name: 0 for p in inputs}
        vector.update(overrides)
        return vector

    # quiet prologue
    stimulus.append(cycle())
    stimulus.append(cycle())
    # per-input solo bursts: drive each input alone high/active for 3 cycles
    for port in inputs:
        high = (1 << port.width) - 1
        for _ in range(3):
            stimulus.append(cycle(**{port.name: high}))
        stimulus.append(cycle())
    # all-active burst
    for _ in range(3):
        stimulus.append(cycle(**{p.name: (1 << p.width) - 1 for p in inputs}))
    # pseudorandom tail
    for _ in range(random_cycles):
        stimulus.append(
            {p.name: rng.randrange(1 << p.width) for p in inputs}
        )
    return stimulus
