"""Language-neutral design descriptions and paired HDL generation.

Every benchmark problem is described once — ports, a Python reference model,
a natural-language spec — and realized twice (Verilog and VHDL): reference
implementation, golden testbench, and a defect catalog (syntax and functional
mutations) for the synthetic LLM. This mirrors how the paper evaluates the
same 156 VerilogEval-Human tasks in both languages.
"""

from repro.designs.model import (
    CombModel,
    DesignSpec,
    PortSpec,
    SeqModel,
)
from repro.designs.vectors import comb_vectors, seq_stimulus
from repro.designs.tbgen import make_testbench
from repro.designs.mutations import Mutation, apply_mutation

__all__ = [
    "CombModel",
    "DesignSpec",
    "PortSpec",
    "SeqModel",
    "comb_vectors",
    "seq_stimulus",
    "make_testbench",
    "Mutation",
    "apply_mutation",
]
