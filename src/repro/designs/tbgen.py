"""Golden-testbench generation for both languages.

Given a :class:`~repro.designs.model.DesignSpec`, a reference model, and the
stimulus from :mod:`repro.designs.vectors`, :func:`make_testbench` emits a
self-checking testbench whose failure messages follow the paper's format
("Test Case N Failed: <signal> should be <value>") and whose success message
is the exact string the Verification Agent looks for ("All tests passed
successfully!"). The same stimulus and expectations are rendered into both
languages, so a functional defect is detected identically in each flow.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.designs.model import (
    CombModel,
    DesignSpec,
    SeqModel,
    TOP_NAME,
)
from repro.designs.vectors import comb_vectors, seq_stimulus
from repro.eda.toolchain import Language

PASS_MESSAGE = "All tests passed successfully!"
TB_NAME = "tb"


@dataclass(frozen=True)
class StimulusBundle:
    """The structured stimulus behind one generated testbench.

    Every :func:`make_testbench` call registers the (stimulus, expectations)
    pair it rendered, keyed by the exact testbench text, so the batch
    simulation tier (:mod:`repro.sim.batch`) can evaluate the vectors
    directly instead of re-parsing and event-simulating the testbench. The
    text key makes the lookup sound: byte-identical text is byte-identical
    stimulus.
    """

    spec: DesignSpec
    language: Language
    clocked: bool
    stimulus: tuple[dict[str, int], ...]
    expected: tuple[dict[str, int], ...]
    reset_outputs: dict[str, int] | None


#: rendered testbench text → bundle; bounded so long fuzz campaigns cannot
#: grow it without limit (eviction only costs a kernel-tier simulation)
_BUNDLES: OrderedDict[str, StimulusBundle] = OrderedDict()
_BUNDLE_LIMIT = 256


def _register_bundle(text: str, bundle: StimulusBundle) -> str:
    _BUNDLES[text] = bundle
    _BUNDLES.move_to_end(text)
    while len(_BUNDLES) > _BUNDLE_LIMIT:
        _BUNDLES.popitem(last=False)
    return text


def stimulus_bundle(text: str) -> StimulusBundle | None:
    """The bundle for a rendered testbench text, if one was registered."""
    return _BUNDLES.get(text)

#: settle time between driving combinational inputs and checking outputs (ns)
SETTLE_NS = 5
#: half clock period for sequential testbenches (ns)
HALF_PERIOD_NS = 5
#: reset cycles applied before stimulus
RESET_CYCLES = 2


def verilog_literal(value: int, width: int) -> str:
    return f"{width}'d{value & ((1 << width) - 1)}"


def vhdl_literal(value: int, width: int) -> str:
    value &= (1 << width) - 1
    if width == 1:
        return f"'{value}'"
    return '"' + format(value, f"0{width}b") + '"'


def make_testbench(
    spec: DesignSpec,
    model: CombModel | SeqModel,
    language: Language,
    pid: str,
    *,
    extra_vectors: list[dict[str, int]] | None = None,
    random_cycles: int = 24,
    reset_outputs: dict[str, int] | None = None,
    max_cases: int | None = None,
    vectors: list[dict[str, int]] | None = None,
) -> str:
    """Emit the golden testbench text for one problem in one language.

    ``max_cases`` truncates the stimulus — used by the weak-self-testbench
    ablation (the VeriAssist failure mode the paper discusses), never by the
    golden suite. ``vectors`` *replaces* the default stimulus entirely — the
    formal layer uses it to replay a counterexample witness as the only test
    cases, so the simulator re-judges exactly the proof's inputs; when given,
    ``extra_vectors`` is ignored (witness replay must not be diluted by the
    problem's directed cycles).
    """
    if spec.clocked:
        if not isinstance(model, SeqModel):
            raise TypeError(f"{pid}: clocked design requires a SeqModel")
        if vectors is not None:
            stimulus = list(vectors)
        else:
            stimulus = seq_stimulus(spec, pid, random_cycles=random_cycles)
            if extra_vectors:
                stimulus = list(extra_vectors) + stimulus
        if max_cases is not None:
            stimulus = stimulus[:max_cases]
        expected = model.run(spec, stimulus)
        if language is Language.VERILOG:
            text = _verilog_seq_tb(spec, stimulus, expected, reset_outputs)
        else:
            text = _vhdl_seq_tb(spec, stimulus, expected, reset_outputs)
        return _register_bundle(
            text,
            StimulusBundle(
                spec=spec,
                language=language,
                clocked=True,
                stimulus=tuple(dict(v) for v in stimulus),
                expected=tuple(dict(e) for e in expected),
                reset_outputs=(
                    dict(reset_outputs) if reset_outputs is not None else None
                ),
            ),
        )
    if not isinstance(model, CombModel):
        raise TypeError(f"{pid}: combinational design requires a CombModel")
    if vectors is not None:
        vectors = list(vectors)
    else:
        vectors = comb_vectors(spec, pid)
        if extra_vectors:
            vectors = vectors + list(extra_vectors)
    if max_cases is not None:
        vectors = vectors[:max_cases]
    expectations = [model.evaluate(spec, v) for v in vectors]
    if language is Language.VERILOG:
        text = _verilog_comb_tb(spec, vectors, expectations)
    else:
        text = _vhdl_comb_tb(spec, vectors, expectations)
    return _register_bundle(
        text,
        StimulusBundle(
            spec=spec,
            language=language,
            clocked=False,
            stimulus=tuple(dict(v) for v in vectors),
            expected=tuple(dict(e) for e in expectations),
            reset_outputs=None,
        ),
    )


# --------------------------------------------------------------------------
# Verilog
# --------------------------------------------------------------------------


def _v_decl(port, kind: str) -> str:
    if port.width == 1:
        return f"    {kind} {port.name};"
    return f"    {kind} [{port.width - 1}:0] {port.name};"


def _v_connections(spec: DesignSpec) -> str:
    names = []
    if spec.clocked:
        names.append("clk")
        if spec.has_reset:
            names.append("rst")
    names.extend(p.name for p in spec.ports)
    return ", ".join(f".{n}({n})" for n in names)


def _v_header(spec: DesignSpec) -> list[str]:
    lines = ["module tb;"]
    if spec.clocked:
        lines.append("    reg clk;")
        if spec.has_reset:
            lines.append("    reg rst;")
    for port in spec.inputs:
        lines.append(_v_decl(port, "reg"))
    for port in spec.outputs:
        lines.append(_v_decl(port, "wire"))
    lines.append("    integer errors;")
    lines.append("")
    lines.append(f"    {TOP_NAME} dut({_v_connections(spec)});")
    lines.append("")
    return lines


def _v_checks(spec: DesignSpec, case_no: int, expected: dict[str, int],
              suffix: str = "") -> list[str]:
    lines = []
    for port in spec.outputs:
        want = expected[port.name]
        literal = verilog_literal(want, port.width)
        message = (
            f"Test Case {case_no} Failed: {port.name} should be {want}{suffix}"
        )
        lines.append(f"        if ({port.name} !== {literal}) begin")
        lines.append(
            f'            $display("{message}, got %0d", {port.name});'
        )
        lines.append("            errors = errors + 1;")
        lines.append("        end")
    return lines


def _v_footer() -> list[str]:
    return [
        "        if (errors == 0)",
        f'            $display("{PASS_MESSAGE}");',
        "        else",
        '            $display("%0d test case(s) failed.", errors);',
        "        $finish;",
        "    end",
        "endmodule",
    ]


def _verilog_comb_tb(spec, vectors, expectations) -> str:
    lines = _v_header(spec)
    lines.append("    initial begin")
    lines.append("        errors = 0;")
    for case_no, (vector, expected) in enumerate(
        zip(vectors, expectations), start=1
    ):
        drives = " ".join(
            f"{p.name} = {verilog_literal(vector[p.name], p.width)};"
            for p in spec.inputs
        )
        if drives:
            lines.append(f"        {drives}")
        lines.append(f"        #{SETTLE_NS};")
        lines.extend(_v_checks(spec, case_no, expected))
    lines.extend(_v_footer())
    return "\n".join(lines) + "\n"


def _verilog_seq_tb(spec, stimulus, expected, reset_outputs=None) -> str:
    lines = _v_header(spec)
    lines.append("    initial begin")
    lines.append("        errors = 0;")
    lines.append("        clk = 0;")
    if spec.has_reset:
        lines.append("        rst = 1;")
    zero_drive = " ".join(
        f"{p.name} = {verilog_literal(0, p.width)};" for p in spec.inputs
    )
    if zero_drive:
        lines.append(f"        {zero_drive}")
    for _ in range(RESET_CYCLES):
        lines.append(
            f"        #{HALF_PERIOD_NS} clk = 1; #{HALF_PERIOD_NS} clk = 0;"
        )
    if spec.has_reset:
        lines.append("        rst = 0;")
    if reset_outputs is not None:
        lines.extend(
            _v_checks(spec, 0, reset_outputs, suffix=" right after reset")
        )
    for case_no, (vector, want) in enumerate(zip(stimulus, expected), start=1):
        drives = " ".join(
            f"{p.name} = {verilog_literal(vector[p.name], p.width)};"
            for p in spec.inputs
        )
        if drives:
            lines.append(f"        {drives}")
        lines.append(
            f"        #{HALF_PERIOD_NS} clk = 1; #{HALF_PERIOD_NS} clk = 0;"
        )
        lines.extend(
            _v_checks(spec, case_no, want, suffix=f" at cycle {case_no}")
        )
    lines.extend(_v_footer())
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# VHDL
# --------------------------------------------------------------------------


def _vhdl_type(width: int) -> str:
    if width == 1:
        return "std_logic"
    return f"std_logic_vector({width - 1} downto 0)"


def _vhdl_header(spec: DesignSpec) -> list[str]:
    lines = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "use ieee.numeric_std.all;",
        "",
        "entity tb is",
        "end entity;",
        "",
        "architecture test of tb is",
    ]
    if spec.clocked:
        lines.append("    signal clk : std_logic := '0';")
        if spec.has_reset:
            lines.append("    signal rst : std_logic := '0';")
    for port in spec.ports:
        lines.append(f"    signal {port.name} : {_vhdl_type(port.width)};")
    lines.append("begin")
    names = []
    if spec.clocked:
        names.append("clk")
        if spec.has_reset:
            names.append("rst")
    names.extend(p.name for p in spec.ports)
    connections = ", ".join(f"{n} => {n}" for n in names)
    lines.append(f"    dut: entity work.{TOP_NAME} port map ({connections});")
    lines.append("")
    lines.append("    stim: process")
    lines.append("        variable errors : integer := 0;")
    lines.append("    begin")
    return lines


def _vhdl_checks(spec: DesignSpec, case_no: int, expected: dict[str, int],
                 suffix: str = "") -> list[str]:
    lines = []
    for port in spec.outputs:
        want = expected[port.name]
        literal = vhdl_literal(want, port.width)
        message = (
            f"Test Case {case_no} Failed: {port.name} should be {want}{suffix}"
        )
        lines.append(f"        if {port.name} /= {literal} then")
        lines.append(f'            report "{message}" severity error;')
        lines.append("            errors := errors + 1;")
        lines.append("        end if;")
    return lines


def _vhdl_footer() -> list[str]:
    return [
        "        if errors = 0 then",
        f'            report "{PASS_MESSAGE}";',
        "        else",
        '            report "Some test cases failed." severity error;',
        "        end if;",
        "        wait;",
        "    end process;",
        "end architecture;",
    ]


def _vhdl_comb_tb(spec, vectors, expectations) -> str:
    lines = _vhdl_header(spec)
    for case_no, (vector, expected) in enumerate(
        zip(vectors, expectations), start=1
    ):
        for port in spec.inputs:
            literal = vhdl_literal(vector[port.name], port.width)
            lines.append(f"        {port.name} <= {literal};")
        lines.append(f"        wait for {SETTLE_NS} ns;")
        lines.extend(_vhdl_checks(spec, case_no, expected))
    lines.extend(_vhdl_footer())
    return "\n".join(lines) + "\n"


def _vhdl_seq_tb(spec, stimulus, expected, reset_outputs=None) -> str:
    lines = _vhdl_header(spec)
    lines.append("        clk <= '0';")
    if spec.has_reset:
        lines.append("        rst <= '1';")
    for port in spec.inputs:
        lines.append(f"        {port.name} <= {vhdl_literal(0, port.width)};")
    for _ in range(RESET_CYCLES):
        lines.append(
            f"        wait for {HALF_PERIOD_NS} ns; clk <= '1'; "
            f"wait for {HALF_PERIOD_NS} ns; clk <= '0';"
        )
    if spec.has_reset:
        lines.append("        rst <= '0';")
    if reset_outputs is not None:
        lines.extend(
            _vhdl_checks(spec, 0, reset_outputs, suffix=" right after reset")
        )
    for case_no, (vector, want) in enumerate(zip(stimulus, expected), start=1):
        for port in spec.inputs:
            literal = vhdl_literal(vector[port.name], port.width)
            lines.append(f"        {port.name} <= {literal};")
        lines.append(
            f"        wait for {HALF_PERIOD_NS} ns; clk <= '1'; "
            f"wait for {HALF_PERIOD_NS} ns; clk <= '0';"
        )
        lines.extend(
            _vhdl_checks(spec, case_no, want, suffix=f" at cycle {case_no}")
        )
    lines.extend(_vhdl_footer())
    return "\n".join(lines) + "\n"
