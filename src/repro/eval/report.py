"""Markdown experiment report generation.

Bundles a sweep's results — Table 1, Table 2, Figure 3, run metadata, and
per-configuration detail — into one Markdown document, so a reproduction run
can be archived or attached to a PR without hand-editing. This is how the
EXPERIMENTS.md-style artifacts can be regenerated from scratch.
"""

from __future__ import annotations

import io

from repro.eda.toolchain import Language
from repro.eval.figures import render_figure3
from repro.eval.runner import ConfigResult
from repro.eval.tables import render_table1, render_table2


def _code_block(text: str) -> str:
    return "```\n" + text.rstrip() + "\n```"


def render_report(
    results: list[ConfigResult],
    *,
    title: str = "AIVRIL2 reproduction report",
    problem_count: int | None = None,
    wall_seconds: float | None = None,
) -> str:
    """The full Markdown report for one sweep."""
    out = io.StringIO()
    out.write(f"# {title}\n\n")
    if problem_count is not None:
        out.write(f"* problems per configuration: **{problem_count}**\n")
    out.write(f"* configurations: **{len(results)}**\n")
    if wall_seconds is not None:
        out.write(f"* sweep wall clock: **{wall_seconds:.0f} s**\n")
    out.write("\n## Table 1 — pass-rate summary\n\n")
    out.write(_code_block(render_table1(results)))
    verilog_results = [r for r in results if r.language is Language.VERILOG]
    if verilog_results:
        out.write("\n\n## Table 2 — state-of-the-art comparison (Verilog)\n\n")
        out.write(_code_block(render_table2(results)))
    out.write("\n\n## Figure 3 — latency breakdown\n\n")
    out.write(_code_block(render_figure3(results)))
    out.write("\n\n## Per-configuration detail\n\n")
    out.write(
        "| Model | Language | base S | base F | AIVRIL2 S | AIVRIL2 F | "
        "dF% | syn cycles | fun cycles | avg latency (s) |\n"
    )
    out.write("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
    for result in results:
        delta = result.delta_functional_pct
        out.write(
            f"| {result.model_display} | {result.language.value} "
            f"| {result.baseline_syntax_pct:.2f} "
            f"| {result.baseline_functional_pct:.2f} "
            f"| {result.aivril_syntax_pct:.2f} "
            f"| {result.aivril_functional_pct:.2f} "
            f"| {'N/A' if delta is None else f'{delta:.2f}'} "
            f"| {result.mean_syntax_iterations:.2f} "
            f"| {result.mean_functional_iterations:.2f} "
            f"| {result.aivril_latency_avg.total:.2f} |\n"
        )
    out.write("\n")
    return out.getvalue()


def write_report(results: list[ConfigResult], path: str, **kwargs) -> None:
    """Render and save the report."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_report(results, **kwargs))
