"""Text renderers for Table 1 and Table 2."""

from __future__ import annotations

from repro.eda.toolchain import Language
from repro.eval.literature import LITERATURE, headline_improvement
from repro.eval.runner import ConfigResult


def _fmt(value: float | None, *, digits: int = 2) -> str:
    if value is None:
        return "N/A"
    return f"{value:.{digits}f}"


def _pair(results: list[ConfigResult], model: str) -> dict[Language, ConfigResult]:
    return {r.language: r for r in results if r.model == model}


def render_table1(results: list[ConfigResult]) -> str:
    """Table 1: pass-rate summary with the Δ_F improvement columns.

    Expects one :class:`ConfigResult` per (model, language); models appear
    in first-seen order, baseline rows first then AIVRIL2 rows, as in the
    paper.
    """
    models: list[str] = []
    for result in results:
        if result.model not in models:
            models.append(result.model)
    header = (
        f"{'Technology':<32} | {'V pass@1_S':>10} {'V pass@1_F':>10} "
        f"{'V dF%':>8} | {'VH pass@1_S':>11} {'VH pass@1_F':>11} {'VH dF%':>8}"
    )
    rule = "-" * len(header)
    lines = [header, rule]

    def row(label, vs, vf, vd, hs, hf, hd):
        lines.append(
            f"{label:<32} | {vs:>10} {vf:>10} {vd:>8} | {hs:>11} {hf:>11} "
            f"{hd:>8}"
        )

    for model in models:
        pair = _pair(results, model)
        verilog = pair.get(Language.VERILOG)
        vhdl = pair.get(Language.VHDL)
        display = (verilog or vhdl).model_display
        row(
            display,
            _fmt(verilog.baseline_syntax_pct) if verilog else "-",
            _fmt(verilog.baseline_functional_pct) if verilog else "-",
            "-",
            _fmt(vhdl.baseline_syntax_pct) if vhdl else "-",
            _fmt(vhdl.baseline_functional_pct) if vhdl else "-",
            "-",
        )
    lines.append(rule)
    verilog_deltas: list[float] = []
    vhdl_deltas: list[float] = []
    vhdl_has_na = False
    for model in models:
        pair = _pair(results, model)
        verilog = pair.get(Language.VERILOG)
        vhdl = pair.get(Language.VHDL)
        display = (verilog or vhdl).model_display
        v_delta = verilog.delta_functional_pct if verilog else None
        h_delta = vhdl.delta_functional_pct if vhdl else None
        if verilog and v_delta is not None:
            verilog_deltas.append(v_delta)
        if vhdl:
            if h_delta is None:
                vhdl_has_na = True
            else:
                vhdl_deltas.append(h_delta)
        row(
            f"AIVRIL2 ({display})",
            _fmt(verilog.aivril_syntax_pct) if verilog else "-",
            _fmt(verilog.aivril_functional_pct) if verilog else "-",
            _fmt(v_delta) if verilog else "-",
            _fmt(vhdl.aivril_syntax_pct) if vhdl else "-",
            _fmt(vhdl.aivril_functional_pct) if vhdl else "-",
            _fmt(h_delta) if vhdl else "-",
        )
    lines.append(rule)
    verilog_avg = (
        _fmt(sum(verilog_deltas) / len(verilog_deltas))
        if verilog_deltas
        else "-"
    )
    if vhdl_deltas:
        vhdl_avg = _fmt(sum(vhdl_deltas) / len(vhdl_deltas))
        if vhdl_has_na:
            vhdl_avg = ">> " + vhdl_avg  # the paper's '≫' for the N/A case
    else:
        vhdl_avg = "-"
    row("Average dF", "", "", verilog_avg, "", "", vhdl_avg)
    return "\n".join(lines)


def render_table2(results: list[ConfigResult]) -> str:
    """Table 2: comparison with published techniques (Verilog only)."""
    verilog = {
        r.model: r for r in results if r.language is Language.VERILOG
    }
    header = f"{'Technology':<34} {'Model License':<15} {'pass@1_F (%)':>12}"
    rule = "-" * len(header)
    lines = [header, rule]
    for entry in LITERATURE:
        value = entry.pass1_functional_pct
        note = ""
        if entry.measured_model and entry.measured_model in verilog:
            measured = verilog[entry.measured_model].baseline_functional_pct
            note = f"  (measured: {measured:.2f})"
        lines.append(
            f"{entry.technology:<34} {entry.license:<15} {value:>12.2f}{note}"
        )
    lines.append(rule)
    best = 0.0
    for model, result in verilog.items():
        value = result.aivril_functional_pct
        best = max(best, value)
        license_label = "Open Source" if model == "llama3-70b" else "Closed Source"
        lines.append(
            f"{'AIVRIL2 (' + result.model_display + ')':<34} "
            f"{license_label:<15} {value:>12.2f}"
        )
    if best:
        lines.append(rule)
        lines.append(
            f"Best AIVRIL2 vs ChipNemo-13B: {headline_improvement(best):.1f}x "
            "(paper: 3.4x)"
        )
    return "\n".join(lines)
