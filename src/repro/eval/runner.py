"""The experiment runner: sweeps (model × language × framework) over the suite.

For each configuration it measures, per problem:

* **baseline** — one zero-shot generation; syntax pass = the RTL compiles on
  its own, functional pass = the RTL passes the suite's golden testbench;
* **AIVRIL2** — a full two-loop pipeline run; the same two judgments are
  applied to the *final* RTL, plus loop-iteration counts and the modeled
  latency breakdown.

Functional correctness is always judged by the suite's hidden golden
testbench (the VerilogEval protocol), never by the pipeline's own testbench.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, run_baseline
from repro.core.result import LatencyBreakdown
from repro.designs.model import TOP_NAME
from repro.designs.tbgen import PASS_MESSAGE
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.evalsuite.suite import Suite, build_suite
from repro.llm.profiles import CapabilityProfile, PROFILES
from repro.llm.synthetic import SyntheticDesignLLM


@dataclass
class ProblemRecord:
    """Measurements for one problem under one configuration."""

    pid: str
    baseline_syntax_ok: bool = False
    baseline_functional_ok: bool = False
    baseline_latency: float = 0.0
    aivril_syntax_ok: bool = False
    aivril_functional_ok: bool = False
    aivril_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    syntax_iterations: int = 0
    functional_iterations: int = 0
    wall_seconds: float = 0.0


@dataclass
class ConfigResult:
    """Aggregated results for one (model, language) configuration."""

    model: str
    model_display: str
    language: Language
    records: list[ProblemRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def _pct(self, predicate) -> float:
        if not self.records:
            return 0.0
        return 100.0 * sum(1 for r in self.records if predicate(r)) / self.total

    @property
    def baseline_syntax_pct(self) -> float:
        return self._pct(lambda r: r.baseline_syntax_ok)

    @property
    def baseline_functional_pct(self) -> float:
        return self._pct(lambda r: r.baseline_functional_ok)

    @property
    def aivril_syntax_pct(self) -> float:
        return self._pct(lambda r: r.aivril_syntax_ok)

    @property
    def aivril_functional_pct(self) -> float:
        return self._pct(lambda r: r.aivril_functional_ok)

    @property
    def delta_functional_pct(self) -> float | None:
        """Δ_F of Table 1: relative improvement over the baseline (percent).

        ``None`` when the baseline never passed (the paper prints N/A for
        Llama3-70B VHDL).
        """
        base = self.baseline_functional_pct
        if base == 0.0:
            return None
        return 100.0 * (self.aivril_functional_pct - base) / base

    @property
    def baseline_latency_avg(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.baseline_latency for r in self.records) / self.total

    @property
    def aivril_latency_avg(self) -> LatencyBreakdown:
        total = LatencyBreakdown()
        for record in self.records:
            total.add(record.aivril_latency)
        return total.scaled(1.0 / self.total) if self.records else total

    @property
    def mean_syntax_iterations(self) -> float:
        """Average syntax-loop cycles *to converge* (the paper's metric).

        Only runs that entered the loop and ended syntax-clean count;
        non-converging runs have no convergence cycle count.
        """
        entered = [
            r for r in self.records
            if r.syntax_iterations > 0 and r.aivril_syntax_ok
        ]
        if not entered:
            return 0.0
        return sum(r.syntax_iterations for r in entered) / len(entered)

    @property
    def mean_functional_iterations(self) -> float:
        """Average functional-loop cycles to converge (see above)."""
        entered = [
            r for r in self.records
            if r.functional_iterations > 0 and r.aivril_functional_ok
        ]
        if not entered:
            return 0.0
        return sum(r.functional_iterations for r in entered) / len(entered)


class ExperimentRunner:
    """Runs the paper's evaluation protocol."""

    def __init__(
        self,
        suite: Suite | None = None,
        *,
        max_syntax_iterations: int = 6,
        max_functional_iterations: int = 6,
        testbench_first: bool = True,
        freeze_testbench: bool = True,
        testbench_quality: str = "full",
    ):
        self.suite = suite or build_suite()
        self.max_syntax_iterations = max_syntax_iterations
        self.max_functional_iterations = max_functional_iterations
        self.testbench_first = testbench_first
        self.freeze_testbench = freeze_testbench
        self.testbench_quality = testbench_quality

    # ------------------------------------------------------------------

    def run_config(
        self, profile: CapabilityProfile, language: Language
    ) -> ConfigResult:
        """Baseline + AIVRIL2 sweep for one model/language pair."""
        toolchain = Toolchain()
        llm = SyntheticDesignLLM(
            profile, self.suite, testbench_quality=self.testbench_quality
        )
        pipeline = Aivril2Pipeline(
            llm,
            toolchain,
            PipelineConfig(
                language=language,
                max_syntax_iterations=self.max_syntax_iterations,
                max_functional_iterations=self.max_functional_iterations,
                testbench_first=self.testbench_first,
                freeze_testbench=self.freeze_testbench,
            ),
        )
        result = ConfigResult(
            model=profile.name,
            model_display=profile.display_name,
            language=language,
        )
        for problem in self.suite:
            started = _time.perf_counter()
            record = ProblemRecord(pid=problem.pid)

            baseline = run_baseline(llm, problem.prompt, language)
            record.baseline_latency = baseline.latency_seconds
            record.baseline_syntax_ok = self._compiles(
                baseline.rtl, language, toolchain
            )
            record.baseline_functional_ok = self._passes_golden(
                problem, baseline.rtl, language, toolchain
            )

            run = pipeline.run(problem.prompt)
            record.aivril_latency = run.latency
            record.syntax_iterations = run.syntax_iterations
            record.functional_iterations = run.functional_iterations
            record.aivril_syntax_ok = self._compiles(
                run.rtl, language, toolchain
            )
            record.aivril_functional_ok = self._passes_golden(
                problem, run.rtl, language, toolchain
            )
            record.wall_seconds = _time.perf_counter() - started
            result.records.append(record)
        return result

    def run_all(
        self,
        profiles: list[CapabilityProfile] | None = None,
        languages: tuple[Language, ...] = (Language.VERILOG, Language.VHDL),
    ) -> list[ConfigResult]:
        """The full Table 1 sweep (3 models × 2 languages by default)."""
        profiles = profiles if profiles is not None else PROFILES
        results = []
        for profile in profiles:
            for language in languages:
                results.append(self.run_config(profile, language))
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def _compiles(rtl: str, language: Language, toolchain: Toolchain) -> bool:
        """pass@1_S judgment: the generated design unit compiles on its own."""
        files = [HdlFile(f"{TOP_NAME}{language.file_extension}", rtl, language)]
        return toolchain.compile(files, TOP_NAME).ok

    @staticmethod
    def _passes_golden(
        problem, rtl: str, language: Language, toolchain: Toolchain
    ) -> bool:
        """pass@1_F judgment: the suite's golden testbench passes."""
        files = [
            HdlFile(f"{TOP_NAME}{language.file_extension}", rtl, language),
            HdlFile(
                f"tb{language.file_extension}",
                problem.golden_tb[language],
                language,
            ),
        ]
        result = toolchain.simulate(files, "tb")
        return result.ok and any(
            PASS_MESSAGE in line for line in result.output_lines
        )
