"""The experiment runner: sweeps (model × language × framework) over the suite.

For each configuration it measures, per problem:

* **baseline** — one zero-shot generation; syntax pass = the RTL compiles on
  its own, functional pass = the RTL passes the suite's golden testbench;
* **AIVRIL2** — a full two-loop pipeline run; the same two judgments are
  applied to the *final* RTL, plus loop-iteration counts and the modeled
  latency breakdown.

Functional correctness is always judged by the suite's hidden golden
testbench (the VerilogEval protocol), never by the pipeline's own testbench.

Execution model
---------------

Each (model, language, problem) triple is a *pure task*: its outcome depends
only on the deterministic defect plan, never on which other problems ran
before it or on which process it ran in. The runner therefore dispatches the
work-list through :class:`~repro.exec.engine.ExecutionEngine` — serially by
default (``workers=1``, exactly the historical behavior), or across worker
processes with ``workers=N``. Results are merged by problem order, so the
produced :class:`ConfigResult` is record-for-record identical either way
(``tests/test_exec_differential.py`` enforces this).

A task that fails (raise, per-task timeout, worker crash) degrades to an
**error record** — ``ProblemRecord.error`` is set, the pid is preserved, and
the sweep continues. Error records are excluded from every percentage and
latency average and reported separately.
"""

from __future__ import annotations

import logging
import time as _time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, run_baseline
from repro.core.result import LatencyBreakdown
from repro.designs.model import TOP_NAME
from repro.designs.tbgen import PASS_MESSAGE
from repro.eda.toolchain import (
    CacheStats,
    HdlFile,
    Language,
    Toolchain,
    ToolchainCache,
)
from repro.evalsuite.suite import Suite, build_suite
from repro.exec.engine import ExecutionEngine
from repro.exec.progress import (
    ProgressEvent,
    SweepMetrics,
    attach_metrics,
    progress_adapter,
)
from repro.exec.task import Task, TaskOutcome
from repro.llm.profiles import CapabilityProfile, PROFILES
from repro.llm.synthetic import SyntheticDesignLLM
from repro.obs import (
    EventBus,
    NullSink,
    Tracer,
    configure_spool,
    configure_tracing,
    get_spool,
    get_tracer,
    set_spool,
    set_tracer,
    snapshot_now,
)

log = logging.getLogger(__name__)


@dataclass
class ProblemRecord:
    """Measurements for one problem under one configuration.

    A non-empty ``error`` marks a record whose measurement could not be
    taken (task raised / timed out / its worker crashed); such records keep
    their pid but carry no valid judgments and are excluded from the
    aggregate statistics.
    """

    pid: str
    baseline_syntax_ok: bool = False
    baseline_functional_ok: bool = False
    baseline_latency: float = 0.0
    aivril_syntax_ok: bool = False
    aivril_functional_ok: bool = False
    aivril_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    syntax_iterations: int = 0
    functional_iterations: int = 0
    wall_seconds: float = 0.0
    error: str = ""


@dataclass
class ConfigResult:
    """Aggregated results for one (model, language) configuration."""

    model: str
    model_display: str
    language: Language
    records: list[ProblemRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def evaluated(self) -> list[ProblemRecord]:
        """Records that actually ran (error records excluded)."""
        return [r for r in self.records if not r.error]

    @property
    def error_records(self) -> list[ProblemRecord]:
        return [r for r in self.records if r.error]

    @property
    def error_count(self) -> int:
        return len(self.error_records)

    def _pct(self, predicate) -> float:
        evaluated = self.evaluated
        if not evaluated:
            return 0.0
        return 100.0 * sum(1 for r in evaluated if predicate(r)) / len(evaluated)

    @property
    def baseline_syntax_pct(self) -> float:
        return self._pct(lambda r: r.baseline_syntax_ok)

    @property
    def baseline_functional_pct(self) -> float:
        return self._pct(lambda r: r.baseline_functional_ok)

    @property
    def aivril_syntax_pct(self) -> float:
        return self._pct(lambda r: r.aivril_syntax_ok)

    @property
    def aivril_functional_pct(self) -> float:
        return self._pct(lambda r: r.aivril_functional_ok)

    @property
    def delta_functional_pct(self) -> float | None:
        """Δ_F of Table 1: relative improvement over the baseline (percent).

        ``None`` when the baseline never passed (the paper prints N/A for
        Llama3-70B VHDL) — including the degenerate empty/all-error case.
        """
        base = self.baseline_functional_pct
        if base == 0.0:
            return None
        return 100.0 * (self.aivril_functional_pct - base) / base

    @property
    def baseline_latency_avg(self) -> float:
        evaluated = self.evaluated
        if not evaluated:
            return 0.0
        return sum(r.baseline_latency for r in evaluated) / len(evaluated)

    @property
    def aivril_latency_avg(self) -> LatencyBreakdown:
        evaluated = self.evaluated
        total = LatencyBreakdown()
        for record in evaluated:
            total.add(record.aivril_latency)
        return total.scaled(1.0 / len(evaluated)) if evaluated else total

    @property
    def mean_syntax_iterations(self) -> float:
        """Average syntax-loop cycles *to converge* (the paper's metric).

        Only runs that entered the loop and ended syntax-clean count;
        non-converging runs have no convergence cycle count.
        """
        entered = [
            r for r in self.evaluated
            if r.syntax_iterations > 0 and r.aivril_syntax_ok
        ]
        if not entered:
            return 0.0
        return sum(r.syntax_iterations for r in entered) / len(entered)

    @property
    def mean_functional_iterations(self) -> float:
        """Average functional-loop cycles to converge (see above)."""
        entered = [
            r for r in self.evaluated
            if r.functional_iterations > 0 and r.aivril_functional_ok
        ]
        if not entered:
            return 0.0
        return sum(r.functional_iterations for r in entered) / len(entered)


# ---------------------------------------------------------------------------
# per-problem task machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunnerSettings:
    """Everything a worker needs to reconstruct the experiment context."""

    max_syntax_iterations: int = 6
    max_functional_iterations: int = 6
    testbench_first: bool = True
    freeze_testbench: bool = True
    testbench_quality: str = "full"
    use_cache: bool = True
    cache_size: int = 512
    #: when set, worker processes attach a JSONL tracer to this file
    trace_path: str | None = None
    #: when set, worker processes spool registry snapshots to this file
    spool_path: str | None = None


@dataclass
class _TaskPayload:
    """What one problem task ships back: the record + cache counters."""

    record: ProblemRecord
    cache_delta: CacheStats


class _TaskContext:
    """Per-process experiment state: the suite plus lazily-built configs.

    One context serves every (profile, language) configuration of a sweep;
    the toolchain/LLM/pipeline triple is built once per configuration per
    process and reused across that process's share of the problems — the
    same objects a serial sweep shares across the whole suite.
    """

    def __init__(self, suite: Suite, settings: RunnerSettings):
        self.suite = suite
        self.settings = settings
        self._problems = {p.pid: p for p in suite.problems}
        self._configs: dict[
            tuple[str, Language],
            tuple[SyntheticDesignLLM, Aivril2Pipeline, Toolchain],
        ] = {}

    def _config(self, profile: CapabilityProfile, language: Language):
        key = (profile.name, language)
        if key not in self._configs:
            settings = self.settings
            cache = (
                ToolchainCache(maxsize=settings.cache_size)
                if settings.use_cache else None
            )
            toolchain = Toolchain(cache=cache)
            llm = SyntheticDesignLLM(
                profile, self.suite,
                testbench_quality=settings.testbench_quality,
            )
            pipeline = Aivril2Pipeline(
                llm,
                toolchain,
                PipelineConfig(
                    language=language,
                    max_syntax_iterations=settings.max_syntax_iterations,
                    max_functional_iterations=settings.max_functional_iterations,
                    testbench_first=settings.testbench_first,
                    freeze_testbench=settings.freeze_testbench,
                ),
            )
            self._configs[key] = (llm, pipeline, toolchain)
        return self._configs[key]

    def run_problem(
        self, profile: CapabilityProfile, language: Language, pid: str
    ) -> _TaskPayload:
        """Measure one problem under one configuration (a pure task)."""
        llm, pipeline, toolchain = self._config(profile, language)
        problem = self._problems[pid]
        stats_before = toolchain.cache_stats.snapshot()
        started = _time.perf_counter()
        record = ProblemRecord(pid=problem.pid)

        with get_tracer().span(
            "task.problem",
            key=f"{profile.name}/{language.value}/{pid}",
            model=profile.name,
            language=language.value,
            problem=pid,
        ) as span:
            baseline = run_baseline(llm, problem.prompt, language)
            record.baseline_latency = baseline.latency_seconds
            record.baseline_syntax_ok = _compiles(
                baseline.rtl, language, toolchain
            )
            record.baseline_functional_ok = _passes_golden(
                problem, baseline.rtl, language, toolchain
            )

            run = pipeline.run(problem.prompt)
            record.aivril_latency = run.latency
            record.syntax_iterations = run.syntax_iterations
            record.functional_iterations = run.functional_iterations
            record.aivril_syntax_ok = _compiles(run.rtl, language, toolchain)
            record.aivril_functional_ok = _passes_golden(
                problem, run.rtl, language, toolchain
            )
            record.wall_seconds = _time.perf_counter() - started
            cache_delta = toolchain.cache_stats.delta(stats_before)
            span.set_attrs(
                baseline_syntax_ok=record.baseline_syntax_ok,
                baseline_functional_ok=record.baseline_functional_ok,
                aivril_syntax_ok=record.aivril_syntax_ok,
                aivril_functional_ok=record.aivril_functional_ok,
                syntax_iterations=record.syntax_iterations,
                functional_iterations=record.functional_iterations,
                latency_generation=run.latency.generation_llm,
                latency_syntax=run.latency.syntax_loop,
                latency_functional=run.latency.functional_loop,
                prompt_tokens=run.tokens.prompt_tokens,
                completion_tokens=run.tokens.completion_tokens,
                cache_hits=cache_delta.hits,
                cache_misses=cache_delta.misses,
            )
        return _TaskPayload(record=record, cache_delta=cache_delta)


def _compiles(rtl: str, language: Language, toolchain: Toolchain) -> bool:
    """pass@1_S judgment: the generated design unit compiles on its own."""
    files = [HdlFile(f"{TOP_NAME}{language.file_extension}", rtl, language)]
    return toolchain.compile(files, TOP_NAME).ok


def _passes_golden(
    problem, rtl: str, language: Language, toolchain: Toolchain
) -> bool:
    """pass@1_F judgment: the suite's golden testbench passes."""
    files = [
        HdlFile(f"{TOP_NAME}{language.file_extension}", rtl, language),
        HdlFile(
            f"tb{language.file_extension}",
            problem.golden_tb[language],
            language,
        ),
    ]
    result = toolchain.simulate(files, "tb")
    return result.ok and any(
        PASS_MESSAGE in line for line in result.output_lines
    )


#: process-local context, installed by :func:`_init_worker` (suites hold
#: non-picklable callables, so workers inherit it through fork rather than
#: receiving it over a pipe)
_CONTEXT: _TaskContext | None = None


def _init_worker(suite: Suite, settings: RunnerSettings) -> None:
    global _CONTEXT
    _CONTEXT = _TaskContext(suite, settings)
    # idempotent: under fork the inherited tracer already targets this path
    configure_tracing(settings.trace_path)
    if settings.spool_path is not None:
        # spooling needs a live registry even when span tracing is off;
        # a NullSink tracer keeps counters without writing spans anywhere
        if not get_tracer().enabled:
            set_tracer(Tracer(NullSink()))
        configure_spool(settings.spool_path)


def _run_problem(
    profile: CapabilityProfile, language: Language, pid: str
) -> _TaskPayload:
    if _CONTEXT is None:
        raise RuntimeError("worker context not initialized")
    return _CONTEXT.run_problem(profile, language, pid)


def _task_entry(
    profile: CapabilityProfile, language: Language, pid: str
) -> _TaskPayload:
    # stable, picklable entry point; the indirection keeps `_run_problem`
    # late-bound so fault-injection tests can swap it per-sweep
    return _run_problem(profile, language, pid)


# ---------------------------------------------------------------------------


class ExperimentRunner:
    """Runs the paper's evaluation protocol.

    Parameters beyond the protocol knobs:

    * ``workers`` — process count for the sweep (1 = serial, the default);
    * ``use_cache`` — toolchain result memoization (on by default; results
      are equal either way, only the wall-clock changes);
    * ``task_timeout`` / ``task_retries`` — per-problem fault budget when
      running in parallel (a hung or crashed worker costs one retry, then
      degrades to an error record instead of killing the sweep);
    * ``progress`` — callback receiving ``(ProgressEvent, SweepMetrics)``
      as tasks finish;
    * ``trace_path`` — when set, the sweep records a JSONL span trace to
      this file (see :mod:`repro.obs`); worker processes append to the
      same file, and ``repro trace summarize`` reads it back;
    * ``spool_path`` — when set, every process spools periodic metrics
      snapshots to this file; ``repro obs export`` merges and renders
      them (see :mod:`repro.obs.live`);
    * ``bus`` — optional externally owned :class:`~repro.obs.EventBus`;
      subscribers attached before the run (e.g. ``repro top``'s
      :class:`~repro.obs.LiveView`) observe the sweep live.
    """

    def __init__(
        self,
        suite: Suite | None = None,
        *,
        max_syntax_iterations: int = 6,
        max_functional_iterations: int = 6,
        testbench_first: bool = True,
        freeze_testbench: bool = True,
        testbench_quality: str = "full",
        workers: int = 1,
        use_cache: bool = True,
        cache_size: int = 512,
        task_timeout: float | None = None,
        task_retries: int = 1,
        progress: Callable[[ProgressEvent, SweepMetrics], None] | None = None,
        trace_path: str | None = None,
        spool_path: str | None = None,
        bus: EventBus | None = None,
    ):
        self.suite = suite or build_suite()
        self.max_syntax_iterations = max_syntax_iterations
        self.max_functional_iterations = max_functional_iterations
        self.testbench_first = testbench_first
        self.freeze_testbench = freeze_testbench
        self.testbench_quality = testbench_quality
        self.workers = workers
        self.use_cache = use_cache
        self.cache_size = cache_size
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.progress = progress
        self.trace_path = str(trace_path) if trace_path else None
        self.spool_path = str(spool_path) if spool_path else None
        self.bus = bus
        #: metrics of the most recent sweep (populated by every run)
        self.metrics = SweepMetrics()

    @property
    def _settings(self) -> RunnerSettings:
        return RunnerSettings(
            max_syntax_iterations=self.max_syntax_iterations,
            max_functional_iterations=self.max_functional_iterations,
            testbench_first=self.testbench_first,
            freeze_testbench=self.freeze_testbench,
            testbench_quality=self.testbench_quality,
            use_cache=self.use_cache,
            cache_size=self.cache_size,
            trace_path=self.trace_path,
            spool_path=self.spool_path,
        )

    # ------------------------------------------------------------------

    def run_config(
        self, profile: CapabilityProfile, language: Language
    ) -> ConfigResult:
        """Baseline + AIVRIL2 sweep for one model/language pair."""
        return self._run_configs([(profile, language)])[0]

    def run_all(
        self,
        profiles: list[CapabilityProfile] | None = None,
        languages: tuple[Language, ...] = (Language.VERILOG, Language.VHDL),
    ) -> list[ConfigResult]:
        """The full Table 1 sweep (3 models × 2 languages by default).

        All configurations share one work-list, so with ``workers=N`` the
        fan-out covers the whole (profile × language × problem) cube.
        """
        profiles = profiles if profiles is not None else PROFILES
        configs = [
            (profile, language)
            for profile in profiles
            for language in languages
        ]
        return self._run_configs(configs)

    # ------------------------------------------------------------------

    def _run_configs(
        self, configs: list[tuple[CapabilityProfile, Language]]
    ) -> list[ConfigResult]:
        tasks = []
        for profile, language in configs:
            for problem in self.suite:
                tasks.append(Task(
                    index=len(tasks),
                    key=f"{profile.name}/{language.value}/{problem.pid}",
                    fn=_task_entry,
                    args=(profile, language, problem.pid),
                ))
        metrics = SweepMetrics(total=len(tasks))
        self.metrics = metrics

        previous = get_tracer()
        previous_spool = get_spool()
        if self.trace_path is not None:
            # each sweep starts a fresh trace file, so one summary maps to
            # exactly one sweep
            open(self.trace_path, "w").close()
            configure_tracing(self.trace_path)
        if self.spool_path is not None:
            # likewise a fresh spool file per sweep; spooling needs a live
            # registry in the parent too, even when span tracing is off
            open(self.spool_path, "w").close()
            if not get_tracer().enabled:
                set_tracer(Tracer(NullSink()))
            configure_spool(self.spool_path)
        tracer = get_tracer()

        # one stream, composed consumers: aggregation first, then payload
        # folding, then the trace recorder, then the user's renderer (which
        # therefore always sees fully-updated metrics)
        bus = self.bus if self.bus is not None else EventBus()
        attach_metrics(bus, metrics)
        bus.subscribe(lambda event: self._fold_payload(event, metrics))
        if tracer.enabled:
            bus.subscribe(lambda event: _record_trace_event(tracer, event))
        if self.progress is not None:
            bus.subscribe(progress_adapter(self.progress, metrics))

        engine = ExecutionEngine(
            workers=self.workers,
            timeout=self.task_timeout,
            retries=self.task_retries,
            bus=bus,
            initializer=_init_worker,
            initargs=(self.suite, self._settings),
        )
        try:
            tracer.write_meta(
                workers=self.workers,
                tasks=len(tasks),
                configs=len(configs),
                problems=len(self.suite),
                use_cache=self.use_cache,
            )
            with tracer.span(
                "sweep.run",
                workers=self.workers,
                tasks=len(tasks),
                configs=len(configs),
            ):
                outcomes = engine.run(tasks)
        finally:
            tracer.flush_metrics()
            snapshot_now(force=True)
            set_tracer(previous)
            set_spool(previous_spool)

        results = []
        cursor = 0
        span = len(self.suite)
        for profile, language in configs:
            result = ConfigResult(
                model=profile.name,
                model_display=profile.display_name,
                language=language,
            )
            for problem, outcome in zip(
                self.suite, outcomes[cursor:cursor + span]
            ):
                result.records.append(self._to_record(problem.pid, outcome))
            cursor += span
            results.append(result)
        return results

    @staticmethod
    def _to_record(pid: str, outcome: TaskOutcome) -> ProblemRecord:
        if outcome.ok:
            return outcome.value.record
        reason = outcome.error.strip().splitlines()
        summary = reason[-1] if reason else outcome.status
        return ProblemRecord(
            pid=pid, error=f"{outcome.status}: {summary}"
        )

    # the pass@1 judgments remain reachable as static helpers (e.g. the
    # multi-sample pass@k harness scores candidates with them directly)
    _compiles = staticmethod(_compiles)
    _passes_golden = staticmethod(_passes_golden)

    @staticmethod
    def _fold_payload(event: ProgressEvent, metrics: SweepMetrics) -> None:
        """Fold the runner-specific task payload (cache counters, modeled
        per-stage latency) into the sweep metrics — the half of the
        aggregation that :meth:`SweepMetrics.observe_event` cannot do
        because it does not understand ``_TaskPayload``."""
        outcome = event.outcome
        if outcome is not None and outcome.ok:
            payload: _TaskPayload = outcome.value
            metrics.cache_hits += payload.cache_delta.hits
            metrics.cache_misses += payload.cache_delta.misses
            latency = payload.record.aivril_latency
            metrics.stage_seconds["generation"] += latency.generation_llm
            metrics.stage_seconds["syntax"] += latency.syntax_loop
            metrics.stage_seconds["functional"] += latency.functional_loop


def _record_trace_event(tracer, event: ProgressEvent) -> None:
    """Re-emit one engine progress event as a trace event record."""
    tracer.event(
        event.kind,
        key=event.key,
        done=event.done,
        total=event.total,
        attempts=event.attempts,
        seconds=event.seconds,
        level=event.level,
    )
