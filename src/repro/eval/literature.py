"""Published pass@1 numbers for Table 2 (Verilog functional pass rates).

These are the comparison rows the paper reports from the literature; like
the paper, we cite them as published rather than rerunning closed systems.
The AIVRIL2 rows of Table 2 are *measured* by our harness and merged in by
:func:`repro.eval.tables.render_table2`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiteratureEntry:
    """One published comparison row of Table 2."""

    technology: str
    license: str  # "Open Source" | "Closed Source"
    pass1_functional_pct: float
    #: marks rows that are also baselines measured by our harness
    measured_model: str = ""


#: Table 2 rows, in the paper's order (Verilog only)
LITERATURE: list[LiteratureEntry] = [
    LiteratureEntry("Llama3-70B", "Open Source", 37.82, "llama3-70b"),
    LiteratureEntry("CodeGen-16B", "Open Source", 41.9),
    LiteratureEntry("CodeV-CodeQwen", "Open Source", 53.2),
    LiteratureEntry("ChipNemo-13B", "Closed Source", 22.4),
    LiteratureEntry("ChipNemo-70B", "Closed Source", 27.6),
    LiteratureEntry("CodeGen-16B-Verilog-SFT", "Closed Source", 28.8),
    LiteratureEntry("RTLFixer", "Closed Source", 36.8),
    LiteratureEntry("VeriAssist", "Closed Source", 50.5),
    LiteratureEntry("GPT-4o", "Closed Source", 51.29, "gpt-4o"),
    LiteratureEntry("Claude 3.5 Sonnet", "Closed Source", 60.23,
                    "claude-3.5-sonnet"),
    LiteratureEntry("AIVRIL", "Closed Source", 67.3),
]

#: the comparison the paper headlines: AIVRIL2 (Claude) vs ChipNemo-13B
HEADLINE_BASELINE = "ChipNemo-13B"


def headline_improvement(aivril2_best_pct: float) -> float:
    """The paper's 3.4x claim: best AIVRIL2 over ChipNemo-13B."""
    chipnemo = next(
        e for e in LITERATURE if e.technology == HEADLINE_BASELINE
    )
    return aivril2_best_pct / chipnemo.pass1_functional_pct
