"""Multi-sample pass@k experiment (extension beyond the paper's k = 1).

The paper evaluates with the unbiased pass@k estimator at k = 1 and one
sample per problem. This module generalizes to n samples — each sample is
an independent draw from the model's output distribution (the synthetic
LLM's ``variant`` mechanism re-ranks its defect plan with the same marginal
rates, modeling temperature sampling) — and reports the pass@k curve, which
is the standard way to compare single-shot quality against best-of-n.

The interesting headline: AIVRIL2 at k = 1 beats the raw baseline even at
k = n, i.e. one verified generation is worth more than many unverified
tries — the strongest form of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.pipeline import Aivril2Pipeline, run_baseline
from repro.eda.toolchain import Language, Toolchain
from repro.eval.passk import mean_pass_at_k
from repro.eval.runner import ExperimentRunner
from repro.evalsuite.suite import Suite
from repro.llm.profiles import CapabilityProfile
from repro.llm.synthetic import SyntheticDesignLLM


@dataclass
class SamplingResult:
    """pass@k curves for one (model, language)."""

    model: str
    language: Language
    samples: int
    #: per-problem correct counts, baseline and AIVRIL2
    baseline_correct: dict[str, int] = field(default_factory=dict)
    aivril_correct: dict[str, int] = field(default_factory=dict)

    def baseline_pass_at(self, k: int) -> float:
        return 100.0 * mean_pass_at_k(
            [(self.samples, c) for c in self.baseline_correct.values()], k
        )

    def aivril_pass_at(self, k: int) -> float:
        return 100.0 * mean_pass_at_k(
            [(self.samples, c) for c in self.aivril_correct.values()], k
        )


def run_sampling_experiment(
    profile: CapabilityProfile,
    language: Language,
    suite: Suite,
    *,
    samples: int = 5,
    include_aivril: bool = True,
) -> SamplingResult:
    """n independent samples per problem; counts golden-testbench passes."""
    if samples < 1:
        raise ValueError("need at least one sample")
    result = SamplingResult(
        model=profile.name, language=language, samples=samples
    )
    toolchain = Toolchain()
    for problem in suite:
        result.baseline_correct[problem.pid] = 0
        result.aivril_correct[problem.pid] = 0
    for sample in range(samples):
        llm = SyntheticDesignLLM(profile, suite, variant=sample)
        pipeline = Aivril2Pipeline(
            llm, toolchain, PipelineConfig(language=language)
        )
        for problem in suite:
            baseline = run_baseline(llm, problem.prompt, language)
            if ExperimentRunner._passes_golden(
                problem, baseline.rtl, language, toolchain
            ):
                result.baseline_correct[problem.pid] += 1
            if include_aivril:
                run = pipeline.run(problem.prompt)
                if ExperimentRunner._passes_golden(
                    problem, run.rtl, language, toolchain
                ):
                    result.aivril_correct[problem.pid] += 1
    return result


def render_passk_curve(result: SamplingResult, ks: list[int] | None = None) -> str:
    """A small table of pass@k values for baseline vs AIVRIL2."""
    ks = ks or [k for k in (1, 2, 3, 5, 8) if k <= result.samples]
    header = f"{'k':>3} | {'baseline pass@k':>16} | {'AIVRIL2 pass@k':>15}"
    lines = [
        f"pass@k over {result.samples} samples "
        f"({result.model}, {result.language.value})",
        header,
        "-" * len(header),
    ]
    for k in ks:
        lines.append(
            f"{k:>3} | {result.baseline_pass_at(k):>15.2f}% "
            f"| {result.aivril_pass_at(k):>14.2f}%"
        )
    lines.append(
        "one verified AIVRIL2 sample (k=1) vs best-of-n baseline "
        f"(k={result.samples}): "
        f"{result.aivril_pass_at(1):.2f}% vs "
        f"{result.baseline_pass_at(result.samples):.2f}%"
    )
    return "\n".join(lines)
