"""The unbiased pass@k estimator of Chen et al. (2021), used by the paper.

For one problem with *n* samples of which *c* are correct::

    pass@k = 1 - C(n - c, k) / C(n, k)

The suite-level metric is the mean over problems. With n = k = 1 (the
paper's setting) this reduces to the plain success fraction, but the full
estimator is provided for completeness and reuse.
"""

from __future__ import annotations

import math
from typing import Iterable


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased estimate of P(at least one of k samples passes).

    Raises ``ValueError`` on inconsistent counts (c > n, k > n, negatives).
    """
    if n <= 0:
        raise ValueError(f"need at least one sample, got n={n}")
    if not 0 <= c <= n:
        raise ValueError(f"correct count c={c} out of range 0..{n}")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range 1..{n}")
    if n - c < k:
        return 1.0
    # the numerically stable product form of 1 - C(n-c, k) / C(n, k)
    value = 1.0
    for i in range(n - c + 1, n + 1):
        value *= 1.0 - k / i
    return 1.0 - value


def mean_pass_at_k(counts: Iterable[tuple[int, int]], k: int) -> float:
    """Suite-level pass@k: mean of per-problem estimates.

    ``counts`` yields (n, c) pairs, one per problem.
    """
    values = [pass_at_k(n, c, k) for n, c in counts]
    if not values:
        raise ValueError("no problems supplied")
    return sum(values) / len(values)
