"""Figure 3 renderer: average latency breakdown across optimization loops.

Renders a text bar chart (the harness runs in terminals) with the same
series the paper plots: per configuration, the baseline latency next to the
AIVRIL2 latency split into generation, Syntax-Optimization-loop, and
Functional-Optimization-loop components. EDA tool execution time is included
in the loop components, as the paper's caption specifies.
"""

from __future__ import annotations

from repro.eval.runner import ConfigResult

_BAR_SCALE_CHARS_PER_SECOND = 1.6


def _bar(seconds: float, symbol: str) -> str:
    return symbol * max(1, round(seconds * _BAR_SCALE_CHARS_PER_SECOND)) if (
        seconds > 0.05
    ) else ""


def render_figure3(results: list[ConfigResult]) -> str:
    """One panel per configuration: baseline bar and stacked AIVRIL2 bar."""
    lines = [
        "Average latency breakdown across optimization loops",
        "(g = generation, s = syntax loop incl. EDA, f = functional loop "
        "incl. EDA)",
        "",
    ]
    for result in results:
        label = f"{result.model_display} / {result.language.value}"
        baseline = result.baseline_latency_avg
        breakdown = result.aivril_latency_avg
        lines.append(f"{label}")
        lines.append(
            f"  baseline {baseline:6.2f}s |{_bar(baseline, '=')}"
        )
        stacked = (
            _bar(breakdown.generation_llm, "g")
            + _bar(breakdown.syntax_loop, "s")
            + _bar(breakdown.functional_loop, "f")
        )
        lines.append(
            f"  AIVRIL2  {breakdown.total:6.2f}s |{stacked}"
        )
        lines.append(
            f"           gen {breakdown.generation_llm:.2f}s, "
            f"syntax {breakdown.syntax_loop:.2f}s "
            f"(llm {breakdown.syntax_llm:.2f} + eda {breakdown.syntax_tool:.2f}), "
            f"functional {breakdown.functional_loop:.2f}s "
            f"(llm {breakdown.functional_llm:.2f} + eda "
            f"{breakdown.functional_tool:.2f})"
        )
        ratio = breakdown.total / baseline if baseline else float("inf")
        lines.append(
            f"           overhead {ratio:.1f}x | mean cycles: syntax "
            f"{result.mean_syntax_iterations:.2f}, functional "
            f"{result.mean_functional_iterations:.2f}"
        )
        lines.append("")
    worst = max(
        (r.aivril_latency_avg.total for r in results), default=0.0
    )
    lines.append(
        f"Worst-case average AIVRIL2 latency: {worst:.2f}s "
        "(paper: <= 42 s, worst at 39.29 s for Llama3-70B VHDL)"
    )
    return "\n".join(lines)
