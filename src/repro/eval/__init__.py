"""Evaluation harness: pass@k, experiment runner, table/figure renderers.

Regenerates every quantitative artifact of the paper:

* **Table 1** — baseline vs AIVRIL2 pass@1 (syntax and functional) for all
  three models in both languages, with the Δ_F improvement column;
* **Table 2** — comparison with published state-of-the-art numbers
  (literature rows are data, AIVRIL2 rows are measured);
* **Figure 3** — the average latency breakdown across the optimization
  loops, from the deterministic latency model.
"""

from repro.eval.passk import pass_at_k
from repro.eval.runner import ConfigResult, ExperimentRunner, ProblemRecord
from repro.eval.tables import render_table1, render_table2
from repro.eval.figures import render_figure3

__all__ = [
    "pass_at_k",
    "ConfigResult",
    "ExperimentRunner",
    "ProblemRecord",
    "render_table1",
    "render_table2",
    "render_figure3",
]
