"""The 156-problem benchmark suite (VerilogEval-Human analog, dual-language).

Problems are produced by family generators (:mod:`repro.evalsuite.generators`)
from language-neutral definitions, realized into Verilog and VHDL reference
implementations plus golden testbenches, and validated for integrity: every
reference passes its golden testbench, every syntax mutation breaks the
compile, every functional mutation compiles but fails the testbench.
"""

from repro.evalsuite.problem import Problem
from repro.evalsuite.suite import Suite, build_suite

__all__ = ["Problem", "Suite", "build_suite"]
