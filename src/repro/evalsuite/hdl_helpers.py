"""Shared HDL skeleton emitters used by the problem-family generators.

These build the boilerplate of reference implementations — module/entity
headers with the standard clock/reset convention — so family generators only
supply the interesting body text, once per language.
"""

from __future__ import annotations

from repro.designs.model import DesignSpec, TOP_NAME


def v_port_decl(name: str, width: int, direction: str, *, reg: bool = False) -> str:
    kind = {"in": "input", "out": "output"}[direction]
    reg_text = " reg" if reg else ""
    if width == 1:
        return f"{kind}{reg_text} {name}"
    return f"{kind}{reg_text} [{width - 1}:0] {name}"


def v_module(
    spec: DesignSpec,
    body: str,
    *,
    reg_outputs: set[str] | None = None,
) -> str:
    """Verilog module skeleton: header from the spec, body supplied."""
    reg_outputs = reg_outputs or set()
    decls = []
    if spec.clocked:
        decls.append("input clk")
        if spec.has_reset:
            decls.append("input rst")
    for port in spec.ports:
        decls.append(
            v_port_decl(
                port.name,
                port.width,
                port.direction,
                reg=port.name in reg_outputs,
            )
        )
    header = f"module {TOP_NAME}(\n    " + ",\n    ".join(decls) + "\n);"
    return f"{header}\n{body.rstrip()}\nendmodule\n"


def vh_type(width: int, kind: str = "std_logic_vector") -> str:
    if width == 1:
        return "std_logic"
    return f"{kind}({width - 1} downto 0)"


def vh_entity(
    spec: DesignSpec,
    arch_decls: str,
    arch_body: str,
) -> str:
    """VHDL entity+architecture skeleton: header from the spec, body supplied."""
    ports = []
    if spec.clocked:
        ports.append("clk : in std_logic")
        if spec.has_reset:
            ports.append("rst : in std_logic")
    for port in spec.ports:
        direction = {"in": "in", "out": "out"}[port.direction]
        ports.append(f"{port.name} : {direction} {vh_type(port.width)}")
    port_text = ";\n        ".join(ports)
    decls = arch_decls.rstrip()
    decls_block = f"\n{decls}" if decls else ""
    return (
        "library ieee;\n"
        "use ieee.std_logic_1164.all;\n"
        "use ieee.numeric_std.all;\n"
        "\n"
        f"entity {TOP_NAME} is\n"
        "    port (\n"
        f"        {port_text}\n"
        "    );\n"
        "end entity;\n"
        "\n"
        f"architecture rtl of {TOP_NAME} is{decls_block}\n"
        "begin\n"
        f"{arch_body.rstrip()}\n"
        "end architecture;\n"
    )


def v_clocked_always(body: str, *, reset_body: str = "", has_reset: bool = True) -> str:
    """A standard synchronous-process skeleton in Verilog."""
    if has_reset and reset_body:
        return (
            "    always @(posedge clk) begin\n"
            "        if (rst) begin\n"
            f"{_indent(reset_body, 12)}\n"
            "        end else begin\n"
            f"{_indent(body, 12)}\n"
            "        end\n"
            "    end"
        )
    return (
        "    always @(posedge clk) begin\n"
        f"{_indent(body, 8)}\n"
        "    end"
    )


def vh_clocked_process(
    body: str, *, reset_body: str = "", has_reset: bool = True,
    sensitivity: str = "clk",
) -> str:
    """A standard synchronous-process skeleton in VHDL."""
    if has_reset and reset_body:
        inner = (
            "        if rising_edge(clk) then\n"
            "            if rst = '1' then\n"
            f"{_indent(reset_body, 16)}\n"
            "            else\n"
            f"{_indent(body, 16)}\n"
            "            end if;\n"
            "        end if;"
        )
    else:
        inner = (
            "        if rising_edge(clk) then\n"
            f"{_indent(body, 12)}\n"
            "        end if;"
        )
    return (
        f"    process({sensitivity})\n"
        "    begin\n"
        f"{inner}\n"
        "    end process;"
    )


def _indent(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line.strip() for line in text.strip().splitlines())
