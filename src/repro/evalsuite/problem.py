"""Realized benchmark problems.

A :class:`Problem` is a :class:`~repro.designs.model.ProblemDefinition` plus
everything derived from it: golden testbench text per language and mutation
catalogs keyed by language. The golden testbench is the *suite's* secret
judge (like VerilogEval's reference testbenches); the pipeline's self-
generated testbench is produced separately by the Code Agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.designs.model import CombModel, DesignSpec, ProblemDefinition, SeqModel
from repro.designs.mutations import Mutation
from repro.designs.tbgen import make_testbench
from repro.eda.toolchain import Language


@dataclass
class Problem:
    """One realized benchmark problem, ready for experiments."""

    pid: str
    family: str
    spec: DesignSpec
    prompt: str
    model: CombModel | SeqModel
    reference: dict[Language, str]
    golden_tb: dict[Language, str]
    syntax_mutations: dict[Language, list[Mutation]]
    functional_mutations: dict[Language, list[Mutation]]

    @property
    def clocked(self) -> bool:
        return self.spec.clocked

    @staticmethod
    def realize(definition: ProblemDefinition) -> "Problem":
        golden = {
            language: make_testbench(
                definition.spec,
                definition.model,
                language,
                definition.pid,
                extra_vectors=definition.extra_vectors,
                random_cycles=definition.random_cycles,
                reset_outputs=definition.reset_outputs,
            )
            for language in Language
        }
        return Problem(
            pid=definition.pid,
            family=definition.family,
            spec=definition.spec,
            prompt=definition.prompt,
            model=definition.model,
            reference={
                Language.VERILOG: definition.reference_verilog,
                Language.VHDL: definition.reference_vhdl,
            },
            golden_tb=golden,
            syntax_mutations={
                Language.VERILOG: list(definition.syntax_mutations_verilog),
                Language.VHDL: list(definition.syntax_mutations_vhdl),
            },
            functional_mutations={
                Language.VERILOG: list(definition.functional_mutations_verilog),
                Language.VHDL: list(definition.functional_mutations_vhdl),
            },
        )
