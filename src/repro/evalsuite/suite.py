"""Suite assembly.

``build_suite()`` realizes every family generator's definitions into
:class:`~repro.evalsuite.problem.Problem` objects, in a canonical order, and
checks the global invariants (count, unique ids). The full suite has
exactly 156 problems — the size of VerilogEval-Human, which the paper uses
for both its Verilog and VHDL experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.evalsuite.generators import all_definitions
from repro.evalsuite.problem import Problem

#: the benchmark count of VerilogEval-Human
EXPECTED_PROBLEM_COUNT = 156


@dataclass
class Suite:
    """An ordered collection of realized problems."""

    problems: list[Problem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self):
        return iter(self.problems)

    def get(self, pid: str) -> Problem:
        for problem in self.problems:
            if problem.pid == pid:
                return problem
        raise KeyError(f"no problem {pid!r} in the suite")

    @property
    def families(self) -> dict[str, list[Problem]]:
        grouped: dict[str, list[Problem]] = {}
        for problem in self.problems:
            grouped.setdefault(problem.family, []).append(problem)
        return grouped

    def subset(self, pids: list[str]) -> "Suite":
        return Suite(problems=[self.get(pid) for pid in pids])

    def head(self, count: int) -> "Suite":
        return Suite(problems=self.problems[:count])


@lru_cache(maxsize=1)
def _cached_suite() -> Suite:
    definitions = all_definitions()
    problems = [Problem.realize(d) for d in definitions]
    pids = [p.pid for p in problems]
    duplicates = {pid for pid in pids if pids.count(pid) > 1}
    if duplicates:
        raise RuntimeError(f"duplicate problem ids: {sorted(duplicates)}")
    return Suite(problems=problems)


def build_suite(*, strict_count: bool = True) -> Suite:
    """Build (and cache) the full suite.

    With ``strict_count`` the builder insists on exactly 156 problems so an
    accidentally dropped family cannot silently shrink the evaluation.
    """
    suite = _cached_suite()
    if strict_count and len(suite) != EXPECTED_PROBLEM_COUNT:
        raise RuntimeError(
            f"suite has {len(suite)} problems; expected "
            f"{EXPECTED_PROBLEM_COUNT} (VerilogEval-Human size)"
        )
    return suite
