"""Suite integrity validation.

For each problem and language this module can verify the three contracts
the experiments rely on:

1. the reference implementation compiles cleanly and **passes** its golden
   testbench;
2. every *syntax* mutation produces a compile **error**;
3. every *functional* mutation compiles **cleanly** but **fails** the golden
   testbench.

Running all of it over 156 problems × 2 languages takes a little while, so
the full sweep lives in the test suite / CI; :func:`validate_problem` is the
unit of work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.model import TOP_NAME
from repro.designs.mutations import MutationError, apply_mutation
from repro.designs.tbgen import PASS_MESSAGE
from repro.eda.toolchain import HdlFile, Language, Toolchain
from repro.evalsuite.problem import Problem


@dataclass
class ValidationReport:
    """Findings for one problem in one language."""

    pid: str
    language: Language
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def _files(problem: Problem, language: Language, rtl: str) -> list[HdlFile]:
    ext = language.file_extension
    return [
        HdlFile(f"{TOP_NAME}{ext}", rtl, language),
        HdlFile(f"tb{ext}", problem.golden_tb[language], language),
    ]


def run_golden_tb(
    problem: Problem, language: Language, rtl: str, toolchain: Toolchain
) -> tuple[bool, str]:
    """Simulate *rtl* against the problem's golden TB; returns (passed, log)."""
    result = toolchain.simulate(_files(problem, language, rtl), "tb")
    passed = result.ok and any(
        PASS_MESSAGE in line for line in result.output_lines
    )
    return passed, result.log


def validate_problem(
    problem: Problem,
    language: Language,
    toolchain: Toolchain | None = None,
) -> ValidationReport:
    """Check all three contracts for one problem/language pair."""
    toolchain = toolchain or Toolchain()
    report = ValidationReport(pid=problem.pid, language=language)
    reference = problem.reference[language]

    compile_result = toolchain.compile(
        _files(problem, language, reference), "tb"
    )
    if not compile_result.ok:
        report.issues.append(
            "reference fails to compile:\n" + compile_result.log
        )
        return report
    passed, log = run_golden_tb(problem, language, reference, toolchain)
    if not passed:
        report.issues.append("reference fails its golden testbench:\n" + log)
        return report

    for mutation in problem.syntax_mutations[language]:
        try:
            mutated = apply_mutation(reference, mutation)
        except MutationError as exc:
            report.issues.append(f"syntax mutation anchor problem: {exc}")
            continue
        result = toolchain.compile(_files(problem, language, mutated), "tb")
        if result.ok:
            report.issues.append(
                f"syntax mutation {mutation.description!r} compiles cleanly "
                "(it must produce a compile error)"
            )

    for mutation in problem.functional_mutations[language]:
        try:
            mutated = apply_mutation(reference, mutation)
        except MutationError as exc:
            report.issues.append(f"functional mutation anchor problem: {exc}")
            continue
        result = toolchain.compile(_files(problem, language, mutated), "tb")
        if not result.ok:
            report.issues.append(
                f"functional mutation {mutation.description!r} does not "
                "compile (it must only change behaviour):\n" + result.log
            )
            continue
        passed, __ = run_golden_tb(problem, language, mutated, toolchain)
        if passed:
            report.issues.append(
                f"functional mutation {mutation.description!r} passes the "
                "golden testbench (it must be detectable)"
            )
    return report


def validate_suite(
    problems,
    languages=(Language.VERILOG, Language.VHDL),
) -> list[ValidationReport]:
    """Validate many problems; returns only reports with issues."""
    toolchain = Toolchain()
    failures = []
    for problem in problems:
        for language in languages:
            report = validate_problem(problem, language, toolchain)
            if not report.ok:
                failures.append(report)
    return failures
