"""Family: multiplexers and demultiplexers."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "mux"


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="mux2_1bit",
            family=FAMILY,
            prompt=(
                "Implement a 2-to-1 multiplexer for single bits: when sel is "
                "0 output a, when sel is 1 output b."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"), ("sel", 1, "in"), ("y", 1, "out")
            ),
            v_body="    assign y = sel ? b : a;",
            vh_body="    y <= b when sel = '1' else a;",
            fn=lambda i: {"y": i["b"] if i["sel"] else i["a"]},
            v_functional=[
                functional("selection inverted", "sel ? b : a", "sel ? a : b"),
            ],
            vh_functional=[
                functional(
                    "selection inverted",
                    "b when sel = '1' else a",
                    "a when sel = '1' else b",
                ),
            ],
        )
    )
    for width in (4, 8):
        problems.append(
            comb_problem(
                pid=f"mux2_{width}bit",
                family=FAMILY,
                prompt=(
                    f"Implement a {width}-bit wide 2-to-1 multiplexer: when "
                    "sel is 0 output a, when sel is 1 output b."
                ),
                port_specs=ports(
                    ("a", width, "in"), ("b", width, "in"),
                    ("sel", 1, "in"), ("y", width, "out"),
                ),
                v_body="    assign y = sel ? b : a;",
                vh_body="    y <= b when sel = '1' else a;",
                fn=lambda i: {"y": i["b"] if i["sel"] else i["a"]},
                v_functional=[
                    functional("selection inverted", "sel ? b : a", "sel ? a : b"),
                ],
                vh_functional=[
                    functional(
                        "selection inverted",
                        "b when sel = '1' else a",
                        "a when sel = '1' else b",
                    ),
                ],
            )
        )
    problems.append(
        comb_problem(
            pid="mux4_2bit",
            family=FAMILY,
            prompt=(
                "Implement a 4-to-1 multiplexer with 2-bit data inputs "
                "a, b, c, d selected by the 2-bit sel: 00->a, 01->b, "
                "10->c, 11->d."
            ),
            port_specs=ports(
                ("a", 2, "in"), ("b", 2, "in"), ("c", 2, "in"), ("d", 2, "in"),
                ("sel", 2, "in"), ("y", 2, "out"),
            ),
            v_body=(
                "    reg [1:0] y_r;\n"
                "    always @(*) begin\n"
                "        case (sel)\n"
                "            2'b00: y_r = a;\n"
                "            2'b01: y_r = b;\n"
                "            2'b10: y_r = c;\n"
                "            default: y_r = d;\n"
                "        endcase\n"
                "    end\n"
                "    assign y = y_r;"
            ),
            vh_body=(
                "    with sel select\n"
                '        y <= a when "00",\n'
                '             b when "01",\n'
                '             c when "10",\n'
                "             d when others;"
            ),
            fn=lambda i: {
                "y": [i["a"], i["b"], i["c"], i["d"]][i["sel"]]
            },
            v_functional=[
                functional(
                    "inputs b and c swapped in the selection",
                    "2'b01: y_r = b;\n            2'b10: y_r = c;",
                    "2'b01: y_r = c;\n            2'b10: y_r = b;",
                ),
            ],
            vh_functional=[
                functional(
                    "inputs b and c swapped in the selection",
                    'b when "01",\n             c when "10",',
                    'c when "01",\n             b when "10",',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mux8_1bit",
            family=FAMILY,
            prompt=(
                "Implement an 8-to-1 multiplexer: output y equals bit "
                "sel of the 8-bit data input d (sel is 3 bits)."
            ),
            port_specs=ports(
                ("d", 8, "in"), ("sel", 3, "in"), ("y", 1, "out")
            ),
            v_body="    assign y = d[sel];",
            vh_body="    y <= d(to_integer(unsigned(sel)));",
            fn=lambda i: {"y": (i["d"] >> i["sel"]) & 1},
            v_functional=[
                functional(
                    "uses only the low select bit",
                    "d[sel]",
                    "d[sel[0]]",
                ),
            ],
            vh_functional=[
                functional(
                    "uses only the low two select bits",
                    "d(to_integer(unsigned(sel)))",
                    "d(to_integer(unsigned(sel(1 downto 0))))",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="demux4",
            family=FAMILY,
            prompt=(
                "Implement a 1-to-4 demultiplexer: route the input bit d to "
                "output bit y[sel] (sel is 2 bits); all other bits of y are 0."
            ),
            port_specs=ports(
                ("d", 1, "in"), ("sel", 2, "in"), ("y", 4, "out")
            ),
            v_body=(
                "    assign y = d << sel;"
            ),
            vh_body=(
                "    process(d, sel)\n"
                "    begin\n"
                '        y <= "0000";\n'
                "        y(to_integer(unsigned(sel))) <= d;\n"
                "    end process;"
            ),
            fn=lambda i: {"y": i["d"] << i["sel"]},
            v_functional=[
                functional(
                    "routes the inverted input",
                    "assign y = d << sel;",
                    "assign y = ~d << sel;",
                ),
            ],
            vh_functional=[
                functional(
                    "inactive outputs driven high",
                    '        y <= "0000";',
                    '        y <= "1111";',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mux_priority",
            family=FAMILY,
            prompt=(
                "Implement a priority selector: if hi_en is 1 output hi, "
                "else if lo_en is 1 output lo, otherwise output zero "
                "(all data is 4 bits wide)."
            ),
            port_specs=ports(
                ("hi", 4, "in"), ("lo", 4, "in"),
                ("hi_en", 1, "in"), ("lo_en", 1, "in"), ("y", 4, "out"),
            ),
            v_body=(
                "    assign y = hi_en ? hi : (lo_en ? lo : 4'b0000);"
            ),
            vh_body=(
                "    y <= hi when hi_en = '1' else\n"
                "         lo when lo_en = '1' else\n"
                '         "0000";'
            ),
            fn=lambda i: {
                "y": i["hi"] if i["hi_en"] else (i["lo"] if i["lo_en"] else 0)
            },
            v_functional=[
                functional(
                    "priority order reversed",
                    "hi_en ? hi : (lo_en ? lo : 4'b0000)",
                    "lo_en ? lo : (hi_en ? hi : 4'b0000)",
                ),
            ],
            vh_functional=[
                functional(
                    "priority order reversed",
                    "hi when hi_en = '1' else\n         lo when lo_en = '1' else",
                    "lo when lo_en = '1' else\n         hi when hi_en = '1' else",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mux4_1bit",
            family=FAMILY,
            prompt=(
                "Implement a 4-to-1 multiplexer for single bits using a "
                "2-bit select: 00->a, 01->b, 10->c, 11->d."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"), ("c", 1, "in"), ("d", 1, "in"),
                ("sel", 2, "in"), ("y", 1, "out"),
            ),
            v_body=(
                "    assign y = sel[1] ? (sel[0] ? d : c)\n"
                "                      : (sel[0] ? b : a);"
            ),
            vh_body=(
                '    y <= a when sel = "00" else\n'
                '         b when sel = "01" else\n'
                '         c when sel = "10" else\n'
                "         d;"
            ),
            fn=lambda i: {"y": [i["a"], i["b"], i["c"], i["d"]][i["sel"]]},
            v_functional=[
                functional(
                    "select bits swapped",
                    "sel[1] ? (sel[0] ? d : c)\n                      : (sel[0] ? b : a)",
                    "sel[0] ? (sel[1] ? d : c)\n                      : (sel[1] ? b : a)",
                ),
            ],
            vh_functional=[
                functional(
                    "codes 01 and 10 swapped",
                    'b when sel = "01" else\n         c when sel = "10" else',
                    'c when sel = "01" else\n         b when sel = "10" else',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mux16_1bit",
            family=FAMILY,
            prompt=(
                "Implement a 16-to-1 multiplexer: y equals bit sel of the "
                "16-bit data input d (sel is 4 bits)."
            ),
            port_specs=ports(
                ("d", 16, "in"), ("sel", 4, "in"), ("y", 1, "out")
            ),
            v_body="    assign y = d[sel];",
            vh_body="    y <= d(to_integer(unsigned(sel)));",
            fn=lambda i: {"y": (i["d"] >> i["sel"]) & 1},
            v_functional=[
                functional(
                    "uses only three select bits",
                    "d[sel]",
                    "d[sel[2:0]]",
                ),
            ],
            vh_functional=[
                functional(
                    "uses only three select bits",
                    "d(to_integer(unsigned(sel)))",
                    "d(to_integer(unsigned(sel(2 downto 0))))",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mux2_bus_invert",
            family=FAMILY,
            prompt=(
                "Implement a conditional inverter: when inv is 1 output the "
                "bitwise complement of the 4-bit input a, otherwise output "
                "a unchanged."
            ),
            port_specs=ports(
                ("a", 4, "in"), ("inv", 1, "in"), ("y", 4, "out")
            ),
            v_body="    assign y = inv ? ~a : a;",
            vh_body="    y <= not a when inv = '1' else a;",
            fn=lambda i: {"y": (i["a"] ^ 0xF) if i["inv"] else i["a"]},
            v_functional=[
                functional("condition inverted", "inv ? ~a : a", "inv ? a : ~a"),
            ],
            vh_functional=[
                functional(
                    "condition inverted",
                    "not a when inv = '1' else a",
                    "a when inv = '1' else not a",
                ),
            ],
        )
    )
    return problems
