"""Problem-family generators.

Each module exposes a ``generate() -> list[ProblemDefinition]`` function; the
registry below fixes the family order (and therefore problem numbering)
used by the suite builder.
"""

from repro.evalsuite.generators import (
    accum,
    arith,
    codes,
    counters,
    decode,
    edges,
    fsm,
    gates,
    mux,
    registers,
    shift_comb,
    shiftreg,
    structural,
    vector_ops,
)

#: family modules in canonical order
FAMILY_MODULES = [
    gates,
    vector_ops,
    mux,
    decode,
    arith,
    shift_comb,
    codes,
    registers,
    counters,
    shiftreg,
    edges,
    fsm,
    accum,
    structural,
]


def all_definitions():
    """Every problem definition in canonical order."""
    definitions = []
    for module in FAMILY_MODULES:
        definitions.extend(module.generate())
    return definitions
