"""Family: vector (multi-bit) combinational operations.

Bitwise operations on vectors, reductions, bit reversal, nibble swap,
popcount, parity — the vector-manipulation slice of VerilogEval-Human
(vector100r, popcount255-style tasks at laptop-friendly widths).
"""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "vector_ops"


def _bitwise(pid, width, prompt, v_op, vh_op, fn, v_alt, vh_alt):
    v_expr = f"a {v_op} b"
    vh_expr = f"a {vh_op} b"
    return comb_problem(
        pid=pid,
        family=FAMILY,
        prompt=prompt,
        port_specs=ports(("a", width, "in"), ("b", width, "in"), ("y", width, "out")),
        v_body=f"    assign y = {v_expr};",
        vh_body=f"    y <= {vh_expr};",
        fn=lambda i: {"y": fn(i["a"], i["b"])},
        v_functional=[
            functional(f"wrong bitwise operator", v_expr, f"a {v_alt} b"),
            functional("second operand ignored", f"{v_expr};", f"a {v_op} a;"),
        ],
        vh_functional=[
            functional(f"wrong bitwise operator", vh_expr, f"a {vh_alt} b"),
            functional("second operand ignored", f"{vh_expr};", f"a {vh_op} a;"),
        ],
    )


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="vec_xnor8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit bitwise XNOR: y[i] = NOT(a[i] XOR b[i]) "
                "for every bit position i."
            ),
            port_specs=ports(("a", 8, "in"), ("b", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = ~(a ^ b);",
            vh_body="    y <= a xnor b;",
            fn=lambda i: {"y": (i["a"] ^ i["b"]) ^ 0xFF},
            v_functional=[
                functional("missing inversion (XOR)", "~(a ^ b)", "(a ^ b)"),
            ],
            vh_functional=[
                functional("missing inversion (XOR)", "a xnor b", "a xor b"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_nand6",
            family=FAMILY,
            prompt=(
                "Implement a 6-bit bitwise NAND: y[i] = NOT(a[i] AND b[i])."
            ),
            port_specs=ports(("a", 6, "in"), ("b", 6, "in"), ("y", 6, "out")),
            v_body="    assign y = ~(a & b);",
            vh_body="    y <= a nand b;",
            fn=lambda i: {"y": (i["a"] & i["b"]) ^ 0x3F},
            v_functional=[
                functional("missing inversion (AND)", "~(a & b)", "(a & b)"),
            ],
            vh_functional=[
                functional("missing inversion (AND)", "a nand b", "a and b"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_nor6",
            family=FAMILY,
            prompt=(
                "Implement a 6-bit bitwise NOR: y[i] = NOT(a[i] OR b[i])."
            ),
            port_specs=ports(("a", 6, "in"), ("b", 6, "in"), ("y", 6, "out")),
            v_body="    assign y = ~(a | b);",
            vh_body="    y <= a nor b;",
            fn=lambda i: {"y": (i["a"] | i["b"]) ^ 0x3F},
            v_functional=[
                functional("missing inversion (OR)", "~(a | b)", "(a | b)"),
            ],
            vh_functional=[
                functional("missing inversion (OR)", "a nor b", "a or b"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_andnot8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit bit-clear operation: y = a AND (NOT b) "
                "— each bit of b clears the corresponding bit of a."
            ),
            port_specs=ports(("a", 8, "in"), ("b", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = a & ~b;",
            vh_body="    y <= a and (not b);",
            fn=lambda i: {"y": i["a"] & (i["b"] ^ 0xFF)},
            v_functional=[
                functional("mask not inverted", "a & ~b", "a & b"),
            ],
            vh_functional=[
                functional("mask not inverted", "a and (not b)", "a and b"),
            ],
        )
    )
    for width in (4, 8):
        problems.append(
            _bitwise(
                f"vec_and{width}", width,
                f"Implement a {width}-bit bitwise AND: y[i] = a[i] AND b[i] "
                f"for every bit position i.",
                "&", "and", lambda a, b: a & b, "|", "or",
            )
        )
        problems.append(
            _bitwise(
                f"vec_or{width}", width,
                f"Implement a {width}-bit bitwise OR: y[i] = a[i] OR b[i] "
                f"for every bit position i.",
                "|", "or", lambda a, b: a | b, "&", "and",
            )
        )
        problems.append(
            _bitwise(
                f"vec_xor{width}", width,
                f"Implement a {width}-bit bitwise XOR: y[i] = a[i] XOR b[i] "
                f"for every bit position i.",
                "^", "xor", lambda a, b: a ^ b, "|", "or",
            )
        )
    problems.append(
        comb_problem(
            pid="vec_not8",
            family=FAMILY,
            prompt="Implement an 8-bit bitwise inverter: y = NOT a.",
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = ~a;",
            vh_body="    y <= not a;",
            fn=lambda i: {"y": i["a"] ^ 0xFF},
            v_functional=[
                functional("missing inversion", "assign y = ~a;", "assign y = a;")
            ],
            vh_functional=[
                functional("missing inversion", "y <= not a;", "y <= a;")
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_reverse8",
            family=FAMILY,
            prompt=(
                "Reverse the bit order of an 8-bit input: y[7] = a[0], "
                "y[6] = a[1], ..., y[0] = a[7]."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body=(
                "    assign y = {a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]};"
            ),
            vh_body=(
                "    y <= a(0) & a(1) & a(2) & a(3) & a(4) & a(5) & a(6) & a(7);"
            ),
            fn=lambda i: {
                "y": int(format(i["a"], "08b")[::-1], 2)
            },
            v_functional=[
                functional(
                    "two lanes swapped in the reversal",
                    "{a[0], a[1], a[2]",
                    "{a[1], a[0], a[2]",
                ),
                functional(
                    "not reversed at all",
                    "{a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]}",
                    "{a[7], a[6], a[5], a[4], a[3], a[2], a[1], a[0]}",
                ),
            ],
            vh_functional=[
                functional(
                    "two lanes swapped in the reversal",
                    "a(0) & a(1) & a(2)",
                    "a(1) & a(0) & a(2)",
                ),
                functional(
                    "not reversed at all",
                    "a(0) & a(1) & a(2) & a(3) & a(4) & a(5) & a(6) & a(7)",
                    "a(7) & a(6) & a(5) & a(4) & a(3) & a(2) & a(1) & a(0)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_swap_nibbles",
            family=FAMILY,
            prompt=(
                "Swap the two nibbles of an 8-bit input: y[7:4] = a[3:0] and "
                "y[3:0] = a[7:4]."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = {a[3:0], a[7:4]};",
            vh_body="    y <= a(3 downto 0) & a(7 downto 4);",
            fn=lambda i: {
                "y": ((i["a"] & 0x0F) << 4) | ((i["a"] >> 4) & 0x0F)
            },
            v_functional=[
                functional(
                    "nibbles not swapped",
                    "{a[3:0], a[7:4]}",
                    "{a[7:4], a[3:0]}",
                ),
            ],
            vh_functional=[
                functional(
                    "nibbles not swapped",
                    "a(3 downto 0) & a(7 downto 4)",
                    "a(7 downto 4) & a(3 downto 0)",
                ),
            ],
        )
    )
    for op, v_red, fn in (
        ("and", "&", lambda a: 1 if a == 0x3F else 0),
        ("or", "|", lambda a: 0 if a == 0 else 1),
        ("xor", "^", lambda a: bin(a).count("1") & 1),
    ):
        vh_terms = f" {op} ".join(f"a({i})" for i in range(6))
        v_expr = f"{v_red}a"
        problems.append(
            comb_problem(
                pid=f"vec_reduce_{op}",
                family=FAMILY,
                prompt=(
                    f"Compute the {op.upper()}-reduction of a 6-bit input: "
                    f"y = a[5] {op.upper()} a[4] {op.upper()} ... {op.upper()} a[0]."
                ),
                port_specs=ports(("a", 6, "in"), ("y", 1, "out")),
                v_body=f"    assign y = {v_expr};",
                vh_body=f"    y <= {vh_terms};",
                fn=lambda i, fn=fn: {"y": fn(i["a"])},
                v_functional=[
                    functional(
                        "reduction over the wrong bits (bit 5 dropped)",
                        f"assign y = {v_expr};",
                        f"assign y = {v_red}a[4:0];",
                    ),
                ],
                vh_functional=[
                    functional(
                        "reduction over the wrong bits (bit 5 dropped)",
                        f"a(5)",
                        f"a(4)",
                    ),
                ],
            )
        )
    problems.append(
        comb_problem(
            pid="vec_popcount8",
            family=FAMILY,
            prompt=(
                "Count the number of set bits ('population count') of an "
                "8-bit input a; output the count on the 4-bit output y."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 4, "out")),
            v_body=(
                "    assign y = a[0] + a[1] + a[2] + a[3]"
                " + a[4] + a[5] + a[6] + a[7];"
            ),
            vh_decls=(""),
            vh_body=(
                "    process(a)\n"
                "        variable cnt : unsigned(3 downto 0);\n"
                "    begin\n"
                "        cnt := (others => '0');\n"
                "        for i in 0 to 7 loop\n"
                "            if a(i) = '1' then\n"
                "                cnt := cnt + 1;\n"
                "            end if;\n"
                "        end loop;\n"
                "        y <= std_logic_vector(cnt);\n"
                "    end process;"
            ),
            fn=lambda i: {"y": bin(i["a"]).count("1")},
            v_functional=[
                functional(
                    "bit 7 not counted",
                    " + a[7];",
                    ";",
                ),
                functional(
                    "bit 0 counted twice instead of bit 1",
                    "a[0] + a[1]",
                    "a[0] + a[0]",
                ),
            ],
            vh_functional=[
                functional(
                    "bit 7 not counted (loop bound off by one)",
                    "for i in 0 to 7 loop",
                    "for i in 0 to 6 loop",
                ),
                functional(
                    "counts zeros instead of ones",
                    "if a(i) = '1' then",
                    "if a(i) = '0' then",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_parity8",
            family=FAMILY,
            prompt=(
                "Compute the even-parity bit of an 8-bit input: y is the XOR "
                "of all eight bits of a."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 1, "out")),
            v_body="    assign y = ^a;",
            vh_body=(
                "    y <= a(7) xor a(6) xor a(5) xor a(4) xor a(3) xor a(2)"
                " xor a(1) xor a(0);"
            ),
            fn=lambda i: {"y": bin(i["a"]).count("1") & 1},
            v_functional=[
                functional("inverted parity", "assign y = ^a;", "assign y = ~^a;"),
            ],
            vh_functional=[
                functional(
                    "bit 0 excluded from the parity",
                    " xor a(0);",
                    ";",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_zext",
            family=FAMILY,
            prompt=(
                "Zero-extend a 4-bit input to 8 bits: y[3:0] = a and "
                "y[7:4] = 0."
            ),
            port_specs=ports(("a", 4, "in"), ("y", 8, "out")),
            v_body="    assign y = {4'b0000, a};",
            vh_body='    y <= "0000" & a;',
            fn=lambda i: {"y": i["a"]},
            v_functional=[
                functional(
                    "extends with ones instead of zeros",
                    "{4'b0000, a}",
                    "{4'b1111, a}",
                ),
            ],
            vh_functional=[
                functional(
                    "extends with ones instead of zeros",
                    '"0000" & a',
                    '"1111" & a',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_sext",
            family=FAMILY,
            prompt=(
                "Sign-extend a 4-bit two's-complement input to 8 bits: "
                "y[3:0] = a and y[7:4] replicates a[3]."
            ),
            port_specs=ports(("a", 4, "in"), ("y", 8, "out")),
            v_body="    assign y = {{4{a[3]}}, a};",
            vh_body=(
                "    y <= a(3) & a(3) & a(3) & a(3) & a;"
            ),
            fn=lambda i: {
                "y": i["a"] | (0xF0 if i["a"] & 0x8 else 0)
            },
            v_functional=[
                functional(
                    "replicates the wrong bit (a[0])",
                    "{{4{a[3]}}, a}",
                    "{{4{a[0]}}, a}",
                ),
            ],
            vh_functional=[
                functional(
                    "replicates the wrong bit (a(0))",
                    "a(3) & a(3) & a(3) & a(3) & a",
                    "a(0) & a(0) & a(0) & a(0) & a",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_concat",
            family=FAMILY,
            prompt=(
                "Concatenate two 4-bit inputs into an 8-bit output: "
                "y = {a, b} with a in the upper nibble."
            ),
            port_specs=ports(("a", 4, "in"), ("b", 4, "in"), ("y", 8, "out")),
            v_body="    assign y = {a, b};",
            vh_body="    y <= a & b;",
            fn=lambda i: {"y": (i["a"] << 4) | i["b"]},
            v_functional=[
                functional("operands swapped", "{a, b}", "{b, a}"),
            ],
            vh_functional=[
                functional("operands swapped", "y <= a & b;", "y <= b & a;"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="vec_split",
            family=FAMILY,
            prompt=(
                "Split an 8-bit input into nibbles: hi = a[7:4] and "
                "lo = a[3:0]."
            ),
            port_specs=ports(("a", 8, "in"), ("hi", 4, "out"), ("lo", 4, "out")),
            v_body=(
                "    assign hi = a[7:4];\n"
                "    assign lo = a[3:0];"
            ),
            vh_body=(
                "    hi <= a(7 downto 4);\n"
                "    lo <= a(3 downto 0);"
            ),
            fn=lambda i: {"hi": i["a"] >> 4, "lo": i["a"] & 0xF},
            v_functional=[
                functional("hi takes the low nibble", "hi = a[7:4]", "hi = a[3:0]"),
            ],
            vh_functional=[
                functional(
                    "hi takes the low nibble",
                    "hi <= a(7 downto 4)",
                    "hi <= a(3 downto 0)",
                ),
            ],
        )
    )
    return problems
