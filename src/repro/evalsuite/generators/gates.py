"""Family: basic logic gates (1-bit combinational).

Mirrors VerilogEval-Human's gate tasks (andgate, norgate, xnorgate, ...).
Mechanized over a gate table: each entry supplies the expression in both
languages, the Python model, and an operator-swap functional defect.
"""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "gates"


def _two_input(pid, prompt, v_expr, vh_expr, fn, v_swap, vh_swap):
    return comb_problem(
        pid=pid,
        family=FAMILY,
        prompt=prompt,
        port_specs=ports(("a", 1, "in"), ("b", 1, "in"), ("y", 1, "out")),
        v_body=f"    assign y = {v_expr};",
        vh_body=f"    y <= {vh_expr};",
        fn=lambda i: {"y": fn(i["a"], i["b"])},
        v_functional=[
            functional(f"wrong gate: {v_swap[2]}", v_swap[0], v_swap[1]),
            functional(
                "duplicated operand: second input ignored",
                v_expr,
                v_expr.replace("b", "a"),
            ),
        ],
        vh_functional=[
            functional(f"wrong gate: {vh_swap[2]}", vh_swap[0], vh_swap[1]),
            functional(
                "duplicated operand: second input ignored",
                vh_expr,
                vh_expr.replace("b", "a"),
            ),
        ],
    )


def _three_input(pid, prompt, v_expr, vh_expr, fn, v_swap, vh_swap):
    return comb_problem(
        pid=pid,
        family=FAMILY,
        prompt=prompt,
        port_specs=ports(
            ("a", 1, "in"), ("b", 1, "in"), ("c", 1, "in"), ("y", 1, "out")
        ),
        v_body=f"    assign y = {v_expr};",
        vh_body=f"    y <= {vh_expr};",
        fn=lambda i: {"y": fn(i["a"], i["b"], i["c"])},
        v_functional=[
            functional(f"wrong gate: {v_swap[2]}", v_swap[0], v_swap[1]),
            functional(
                "third input ignored",
                v_expr,
                v_expr.replace("c", "a"),
            ),
        ],
        vh_functional=[
            functional(f"wrong gate: {vh_swap[2]}", vh_swap[0], vh_swap[1]),
            functional(
                "third input ignored",
                vh_expr,
                vh_expr.replace("c", "a"),
            ),
        ],
    )


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="gates_buf",
            family=FAMILY,
            prompt=(
                "Build a circuit with one input a and one output y that "
                "behaves like a wire: y must always equal a."
            ),
            port_specs=ports(("a", 1, "in"), ("y", 1, "out")),
            v_body="    assign y = a;",
            vh_body="    y <= a;",
            fn=lambda i: {"y": i["a"]},
            v_functional=[
                functional("inverted output", "assign y = a;", "assign y = ~a;")
            ],
            vh_functional=[
                functional("inverted output", "y <= a;", "y <= not a;")
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="gates_not",
            family=FAMILY,
            prompt=(
                "Implement a NOT gate (inverter): output y is the logical "
                "complement of input a."
            ),
            port_specs=ports(("a", 1, "in"), ("y", 1, "out")),
            v_body="    assign y = ~a;",
            vh_body="    y <= not a;",
            fn=lambda i: {"y": i["a"] ^ 1},
            v_functional=[
                functional("missing inversion", "assign y = ~a;", "assign y = a;")
            ],
            vh_functional=[
                functional("missing inversion", "y <= not a;", "y <= a;")
            ],
        )
    )
    problems.append(
        _two_input(
            "gates_and",
            "Implement a 2-input AND gate: y = a AND b.",
            "a & b", "a and b",
            lambda a, b: a & b,
            ("a & b", "a | b", "AND replaced by OR"),
            ("a and b", "a or b", "AND replaced by OR"),
        )
    )
    problems.append(
        _two_input(
            "gates_or",
            "Implement a 2-input OR gate with inputs a, b and output y = a OR b.",
            "a | b", "a or b",
            lambda a, b: a | b,
            ("a | b", "a & b", "OR replaced by AND"),
            ("a or b", "a and b", "OR replaced by AND"),
        )
    )
    problems.append(
        _two_input(
            "gates_xor",
            "Implement a 2-input XOR gate: y = a XOR b.",
            "a ^ b", "a xor b",
            lambda a, b: a ^ b,
            ("a ^ b", "a | b", "XOR replaced by OR"),
            ("a xor b", "a or b", "XOR replaced by OR"),
        )
    )
    problems.append(
        _two_input(
            "gates_nand",
            "Implement a 2-input NAND gate: y = NOT(a AND b).",
            "~(a & b)", "a nand b",
            lambda a, b: (a & b) ^ 1,
            ("~(a & b)", "(a & b)", "missing output inversion"),
            ("a nand b", "a and b", "missing output inversion"),
        )
    )
    problems.append(
        _two_input(
            "gates_nor",
            "Implement a 2-input NOR gate: y = NOT(a OR b).",
            "~(a | b)", "a nor b",
            lambda a, b: (a | b) ^ 1,
            ("~(a | b)", "(a | b)", "missing output inversion"),
            ("a nor b", "a or b", "missing output inversion"),
        )
    )
    problems.append(
        _two_input(
            "gates_xnor",
            "Implement a 2-input XNOR gate: y = NOT(a XOR b).",
            "~(a ^ b)", "a xnor b",
            lambda a, b: (a ^ b) ^ 1,
            ("~(a ^ b)", "(a ^ b)", "missing output inversion"),
            ("a xnor b", "a xor b", "missing output inversion"),
        )
    )
    problems.append(
        _two_input(
            "gates_andnot",
            "Implement y = a AND (NOT b): the output is high only when a is "
            "high and b is low.",
            "a & ~b", "a and (not b)",
            lambda a, b: a & (b ^ 1),
            ("a & ~b", "a & b", "missing inversion on b"),
            ("a and (not b)", "a and b", "missing inversion on b"),
        )
    )
    problems.append(
        _two_input(
            "gates_ornot",
            "Implement y = a OR (NOT b): the output is low only when a is "
            "low and b is high.",
            "a | ~b", "a or (not b)",
            lambda a, b: a | (b ^ 1),
            ("a | ~b", "a | b", "missing inversion on b"),
            ("a or (not b)", "a or b", "missing inversion on b"),
        )
    )
    problems.append(
        _three_input(
            "gates_and3",
            "Implement a 3-input AND gate: y = a AND b AND c.",
            "a & b & c", "a and b and c",
            lambda a, b, c: a & b & c,
            ("a & b & c", "a & b | c", "last AND replaced by OR"),
            ("a and b and c", "a and b or c", "last AND replaced by OR"),
        )
    )
    problems.append(
        _three_input(
            "gates_or3",
            "Implement a 3-input OR gate: y = a OR b OR c.",
            "a | b | c", "a or b or c",
            lambda a, b, c: a | b | c,
            ("a | b | c", "a | b & c", "last OR replaced by AND"),
            ("a or b or c", "a or b and c", "last OR replaced by AND"),
        )
    )
    problems.append(
        _three_input(
            "gates_xor3",
            "Implement a 3-input XOR (odd parity): y = a XOR b XOR c.",
            "a ^ b ^ c", "a xor b xor c",
            lambda a, b, c: a ^ b ^ c,
            ("a ^ b ^ c", "a ^ b ^ ~c", "extra inversion on c"),
            ("a xor b xor c", "a xor b xor (not c)", "extra inversion on c"),
        )
    )
    problems.append(
        _three_input(
            "gates_majority",
            "Implement a 3-input majority gate: y is high when at least two "
            "of a, b, c are high.",
            "(a & b) | (a & c) | (b & c)",
            "(a and b) or (a and c) or (b and c)",
            lambda a, b, c: 1 if a + b + c >= 2 else 0,
            (
                "(a & b) | (a & c) | (b & c)",
                "(a & b) | (a & c) | (b | c)",
                "last minterm uses OR",
            ),
            (
                "(a and b) or (a and c) or (b and c)",
                "(a and b) or (a and c) or (b or c)",
                "last minterm uses OR",
            ),
        )
    )
    problems.append(
        _three_input(
            "gates_nand3",
            "Implement a 3-input NAND gate: y = NOT(a AND b AND c).",
            "~(a & b & c)", "not (a and b and c)",
            lambda a, b, c: (a & b & c) ^ 1,
            ("~(a & b & c)", "(a & b & c)", "missing output inversion"),
            ("not (a and b and c)", "(a and b and c)", "missing output inversion"),
        )
    )
    problems.append(
        _three_input(
            "gates_nor3",
            "Implement a 3-input NOR gate: y = NOT(a OR b OR c).",
            "~(a | b | c)", "not (a or b or c)",
            lambda a, b, c: (a | b | c) ^ 1,
            ("~(a | b | c)", "(a | b | c)", "missing output inversion"),
            ("not (a or b or c)", "(a or b or c)", "missing output inversion"),
        )
    )
    problems.append(
        _three_input(
            "gates_xnor3",
            "Implement a 3-input XNOR (even parity): y = NOT(a XOR b XOR c).",
            "~(a ^ b ^ c)", "not (a xor b xor c)",
            lambda a, b, c: (a ^ b ^ c) ^ 1,
            ("~(a ^ b ^ c)", "(a ^ b ^ c)", "missing output inversion"),
            ("not (a xor b xor c)", "(a xor b xor c)", "missing output inversion"),
        )
    )
    problems.append(
        comb_problem(
            pid="gates_and4",
            family=FAMILY,
            prompt=(
                "Implement a 4-input AND gate with inputs a, b, c, d and "
                "output y."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"), ("c", 1, "in"),
                ("d", 1, "in"), ("y", 1, "out"),
            ),
            v_body="    assign y = a & b & c & d;",
            vh_body="    y <= a and b and c and d;",
            fn=lambda i: {"y": i["a"] & i["b"] & i["c"] & i["d"]},
            v_functional=[
                functional(
                    "last input ORed in",
                    "a & b & c & d",
                    "a & b & c | d",
                ),
            ],
            vh_functional=[
                functional(
                    "last input ORed in",
                    "a and b and c and d",
                    "a and b and c or d",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="gates_aoi22",
            family=FAMILY,
            prompt=(
                "Implement an AND-OR-INVERT (AOI22) cell with inputs a, b, "
                "c, d and output y: y = NOT((a AND b) OR (c AND d))."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"), ("c", 1, "in"),
                ("d", 1, "in"), ("y", 1, "out"),
            ),
            v_body="    assign y = ~((a & b) | (c & d));",
            vh_body="    y <= not ((a and b) or (c and d));",
            fn=lambda i: {
                "y": ((i["a"] & i["b"]) | (i["c"] & i["d"])) ^ 1
            },
            v_functional=[
                functional(
                    "missing final inversion",
                    "~((a & b) | (c & d))",
                    "((a & b) | (c & d))",
                ),
                functional(
                    "second AND term replaced by OR",
                    "(c & d)",
                    "(c | d)",
                ),
            ],
            vh_functional=[
                functional(
                    "missing final inversion",
                    "not ((a and b) or (c and d))",
                    "((a and b) or (c and d))",
                ),
                functional(
                    "second AND term replaced by OR",
                    "(c and d)",
                    "(c or d)",
                ),
            ],
        )
    )
    return problems
