"""Family: finite-state machines.

Sequence detectors are generated mechanically from the pattern (a Moore FSM
whose states encode the longest matched prefix, with overlap), exactly the
kind of task the paper's Fig. 2 walks through. A few hand-built machines
(traffic light, 2-way arbiter) round out the family.
"""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "fsm"


def _prefix_automaton(pattern: str) -> list[tuple[int, int]]:
    """KMP-style next-state table: state = matched prefix length.

    Returns, for each state 0..len-1, the next state on input 0 and 1.
    Reaching len(pattern) signals a detection; the automaton then continues
    from the longest proper suffix (overlapping detection).
    """

    def advance(prefix: str, bit: str) -> int:
        candidate = prefix + bit
        while candidate:
            if pattern.startswith(candidate):
                return len(candidate)
            candidate = candidate[1:]
        return 0

    table = []
    for length in range(len(pattern)):
        prefix = pattern[:length]
        table.append((advance(prefix, "0"), advance(prefix, "1")))
    return table


def _detector(pattern: str) -> "ProblemDefinition":
    from repro.designs.model import ProblemDefinition  # noqa: F401 (doc type)

    n = len(pattern)
    state_bits = max(1, (n + 1 - 1).bit_length())
    table = _prefix_automaton(pattern)
    # transitions out of the accepting state: as if from the longest proper
    # suffix of the pattern that is also a prefix
    def accept_next(bit: str) -> int:
        suffix = pattern[1:]
        candidate = suffix + bit
        while candidate:
            if pattern.startswith(candidate) and len(candidate) <= n:
                if len(candidate) == n:
                    return n
                return len(candidate)
            candidate = candidate[1:]
        return 0

    full_table = table + [(accept_next("0"), accept_next("1"))]

    # Verilog case body
    v_cases = []
    for state, (n0, n1) in enumerate(full_table):
        v_cases.append(
            f"{state_bits}'d{state}: state <= d ? "
            f"{state_bits}'d{n1} : {state_bits}'d{n0};"
        )
    v_case_text = "\n".join(v_cases)
    v_body = (
        f"    reg [{state_bits - 1}:0] state;\n"
        + v_clocked_always(
            "case (state)\n" + v_case_text + "\ndefault: state <= "
            f"{state_bits}'d0;\nendcase",
            reset_body=f"state <= {state_bits}'d0;",
        )
        + f"\n    assign found = (state == {state_bits}'d{n});"
    )

    vh_cases = []
    for state, (n0, n1) in enumerate(full_table):
        vh_cases.append(
            f"when {state} =>\n"
            f"if d = '1' then\nstate <= {n1};\nelse\nstate <= {n0};\nend if;"
        )
    vh_case_text = "\n".join(vh_cases)
    vh_body = (
        vh_clocked_process(
            "case state is\n" + vh_case_text + "\nwhen others =>\nstate <= 0;"
            "\nend case;",
            reset_body="state <= 0;",
        )
        + f"\n    found <= '1' when state = {n} else '0';"
    )

    def step(s, i, table=tuple(full_table)):
        next_state = table[s][1] if i["d"] else table[s][0]
        return next_state, {"found": 1 if next_state == n else 0}

    pid = f"fsm_detect{pattern}"
    return seq_problem(
        pid=pid,
        family=FAMILY,
        prompt=(
            f"Implement a Moore FSM that detects the serial bit pattern "
            f"{pattern} on input d (MSB first, overlapping occurrences "
            "count): output found is 1 in the cycle after the final "
            "pattern bit arrives; rst returns the FSM to its idle state."
        ),
        port_specs=ports(("d", 1, "in"), ("found", 1, "out")),
        v_body=v_body,
        vh_decls="    signal state : integer range 0 to 15;",
        vh_body=vh_body,
        reset=lambda: 0,
        step=step,
        v_functional=[
            functional(
                "accepting state compared one too low",
                f"(state == {state_bits}'d{n})",
                f"(state == {state_bits}'d{n - 1})",
            ),
        ],
        vh_functional=[
            functional(
                "accepting state compared one too low",
                f"when state = {n} else",
                f"when state = {n - 1} else",
            ),
        ],
        random_cycles=40,
    )


def generate():
    problems = [
        _detector("101"),
        _detector("110"),
        _detector("1001"),
        _detector("0110"),
        _detector("111"),
        _detector("010"),
        _detector("1011"),
        _detector("0011"),
        _detector("100"),
        _detector("11010"),
    ]
    problems.append(_traffic_light())
    problems.append(_arbiter2())
    problems.append(_two_phase())
    problems.append(_start_stop())
    return problems


def _traffic_light():
    # green 4 cycles -> yellow 2 cycles -> red 4 cycles -> green ...
    GREEN, YELLOW, RED = 0, 1, 2

    def step(s, i):
        state, timer = s
        timer += 1
        if state == GREEN and timer == 4:
            state, timer = YELLOW, 0
        elif state == YELLOW and timer == 2:
            state, timer = RED, 0
        elif state == RED and timer == 4:
            state, timer = GREEN, 0
        lights = {GREEN: 0b001, YELLOW: 0b010, RED: 0b100}[state]
        return (state, timer), {"lights": lights}

    return seq_problem(
        pid="fsm_traffic",
        family=FAMILY,
        prompt=(
            "Implement a traffic-light controller cycling green (4 "
            "cycles), yellow (2 cycles), red (4 cycles) forever. Output "
            "lights is one-hot: bit0 green, bit1 yellow, bit2 red. rst "
            "restarts in green with the timer cleared."
        ),
        port_specs=ports(("lights", 3, "out")),
        v_body=(
            "    reg [1:0] state;\n"
            "    reg [2:0] timer;\n"
            + v_clocked_always(
                "timer <= timer + 3'd1;\n"
                "case (state)\n"
                "2'd0: if (timer == 3'd3) begin state <= 2'd1; timer <= 3'd0; end\n"
                "2'd1: if (timer == 3'd1) begin state <= 2'd2; timer <= 3'd0; end\n"
                "default: if (timer == 3'd3) begin state <= 2'd0; timer <= 3'd0; end\n"
                "endcase",
                reset_body="state <= 2'd0;\ntimer <= 3'd0;",
            )
            + "\n    assign lights = (state == 2'd0) ? 3'b001 :\n"
            "                    (state == 2'd1) ? 3'b010 : 3'b100;"
        ),
        vh_decls=(
            "    signal state : integer range 0 to 2;\n"
            "    signal timer : unsigned(2 downto 0);"
        ),
        vh_body=(
            vh_clocked_process(
                "timer <= timer + 1;\n"
                "case state is\n"
                "when 0 =>\n"
                "if timer = 3 then\nstate <= 1;\ntimer <= \"000\";\nend if;\n"
                "when 1 =>\n"
                "if timer = 1 then\nstate <= 2;\ntimer <= \"000\";\nend if;\n"
                "when others =>\n"
                "if timer = 3 then\nstate <= 0;\ntimer <= \"000\";\nend if;\n"
                "end case;",
                reset_body="state <= 0;\ntimer <= \"000\";",
            )
            + '\n    lights <= "001" when state = 0 else\n'
            '              "010" when state = 1 else\n'
            '              "100";'
        ),
        reset=lambda: (0, 0),
        step=step,
        v_functional=[
            functional(
                "yellow lasts 4 cycles",
                "2'd1: if (timer == 3'd1)",
                "2'd1: if (timer == 3'd3)",
            ),
        ],
        vh_functional=[
            functional(
                "yellow lasts 4 cycles",
                "if timer = 1 then\n                state <= 2;",
                "if timer = 3 then\n                state <= 2;",
            ),
        ],
        random_cycles=30,
    )


def _arbiter2():
    def step(s, i):
        # fixed priority: req0 wins; grants are registered
        g0 = 1 if i["req0"] else 0
        g1 = 1 if (i["req1"] and not i["req0"]) else 0
        return s, {"gnt0": g0, "gnt1": g1}

    return seq_problem(
        pid="fsm_arbiter2",
        family=FAMILY,
        prompt=(
            "Implement a registered fixed-priority 2-way arbiter: on each "
            "rising edge, grant gnt0 when req0 is high; grant gnt1 only "
            "when req1 is high and req0 is low; grants are mutually "
            "exclusive and registered; rst clears both grants."
        ),
        port_specs=ports(
            ("req0", 1, "in"), ("req1", 1, "in"),
            ("gnt0", 1, "out"), ("gnt1", 1, "out"),
        ),
        v_reg_outputs={"gnt0", "gnt1"},
        v_body=v_clocked_always(
            "gnt0 <= req0;\ngnt1 <= req1 & ~req0;",
            reset_body="gnt0 <= 1'b0;\ngnt1 <= 1'b0;",
        ),
        vh_body=vh_clocked_process(
            "gnt0 <= req0;\ngnt1 <= req1 and (not req0);",
            reset_body="gnt0 <= '0';\ngnt1 <= '0';",
        ),
        reset=lambda: 0,
        step=step,
        v_functional=[
            functional(
                "grants not mutually exclusive",
                "gnt1 <= req1 & ~req0;",
                "gnt1 <= req1;",
            ),
        ],
        vh_functional=[
            functional(
                "grants not mutually exclusive",
                "gnt1 <= req1 and (not req0);",
                "gnt1 <= req1;",
            ),
        ],
    )


def _two_phase():
    def step(s, i):
        nxt = s ^ 1 if i["go"] else s
        return nxt, {"phase_a": 1 if nxt == 0 else 0,
                     "phase_b": 1 if nxt == 1 else 0}

    return seq_problem(
        pid="fsm_twophase",
        family=FAMILY,
        prompt=(
            "Implement a two-phase generator: a 1-bit state toggles on "
            "rising edges where go is high; phase_a is high in state 0 "
            "and phase_b in state 1 (exactly one is high each cycle); "
            "rst returns to state 0."
        ),
        port_specs=ports(
            ("go", 1, "in"), ("phase_a", 1, "out"), ("phase_b", 1, "out")
        ),
        v_body=(
            "    reg state;\n"
            + v_clocked_always(
                "if (go) state <= ~state;",
                reset_body="state <= 1'b0;",
            )
            + "\n    assign phase_a = ~state;\n    assign phase_b = state;"
        ),
        vh_decls="    signal state : std_logic;",
        vh_body=(
            vh_clocked_process(
                "if go = '1' then\nstate <= not state;\nend if;",
                reset_body="state <= '0';",
            )
            + "\n    phase_a <= not state;\n    phase_b <= state;"
        ),
        reset=lambda: 0,
        step=step,
        v_functional=[
            functional(
                "phases overlap (both track state)",
                "assign phase_a = ~state;",
                "assign phase_a = state;",
            ),
        ],
        vh_functional=[
            functional(
                "phases overlap (both track state)",
                "phase_a <= not state;",
                "phase_a <= state;",
            ),
        ],
    )


def _start_stop():
    def step(s, i):
        if i["stop"]:
            running = 0
        elif i["start"]:
            running = 1
        else:
            running = s
        return running, {"running": running}

    return seq_problem(
        pid="fsm_startstop",
        family=FAMILY,
        prompt=(
            "Implement a start/stop controller: output running goes high "
            "on a rising edge where start is 1 and low where stop is 1 "
            "(stop wins if both are high); otherwise it holds; rst clears "
            "running."
        ),
        port_specs=ports(
            ("start", 1, "in"), ("stop", 1, "in"), ("running", 1, "out")
        ),
        v_reg_outputs={"running"},
        v_body=v_clocked_always(
            "if (stop) running <= 1'b0;\n"
            "else if (start) running <= 1'b1;",
            reset_body="running <= 1'b0;",
        ),
        vh_body=vh_clocked_process(
            "if stop = '1' then\n"
            "running <= '0';\n"
            "elsif start = '1' then\n"
            "running <= '1';\n"
            "end if;",
            reset_body="running <= '0';",
        ),
        reset=lambda: 0,
        step=step,
        v_functional=[
            functional(
                "start wins over stop (priority swapped)",
                "if (stop) running <= 1'b0;\n        else if (start) running <= 1'b1;",
                "if (start) running <= 1'b1;\n        else if (stop) running <= 1'b0;",
            ),
        ],
        vh_functional=[
            functional(
                "start wins over stop (priority swapped)",
                "if stop = '1' then\n            running <= '0';\n"
                "            elsif start = '1' then\n            running <= '1';",
                "if start = '1' then\n            running <= '1';\n"
                "            elsif stop = '1' then\n            running <= '0';",
            ),
        ],
    )
