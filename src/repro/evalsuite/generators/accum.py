"""Family: accumulation datapaths (running sums, max trackers, histories)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "accum"


def generate():
    problems = []
    problems.append(
        seq_problem(
            pid="accumulator8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit accumulator: on each rising edge where "
                "en is high, add the 4-bit input d to the running 8-bit "
                "total (wrapping); rst clears the total."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("en", 1, "in"), ("total", 8, "out")
            ),
            v_reg_outputs={"total"},
            v_body=v_clocked_always(
                "if (en) total <= total + {4'b0000, d};",
                reset_body="total <= 8'd0;",
            ),
            vh_decls="    signal acc : unsigned(7 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if en = '1' then\n"
                    "acc <= acc + resize(unsigned(d), 8);\n"
                    "end if;",
                    reset_body="acc <= (others => '0');",
                )
                + "\n    total <= std_logic_vector(acc);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (s + (i["d"] if i["en"] else 0)) & 0xFF,
                {"total": (s + (i["d"] if i["en"] else 0)) & 0xFF},
            ),
            v_functional=[
                functional(
                    "adds twice the input",
                    "total + {4'b0000, d}",
                    "total + {3'b000, d, 1'b0}",
                ),
            ],
            vh_functional=[
                functional(
                    "enable ignored",
                    "if en = '1' then\n                acc <= acc + "
                    "resize(unsigned(d), 8);\n            end if;",
                    "acc <= acc + resize(unsigned(d), 8);",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="running_max4",
            family=FAMILY,
            prompt=(
                "Track the maximum 4-bit value seen so far: on each rising "
                "edge, if d exceeds the stored maximum, replace it; rst "
                "clears the maximum to 0."
            ),
            port_specs=ports(("d", 4, "in"), ("max_val", 4, "out")),
            v_reg_outputs={"max_val"},
            v_body=v_clocked_always(
                "if (d > max_val) max_val <= d;",
                reset_body="max_val <= 4'd0;",
            ),
            vh_decls="    signal best : unsigned(3 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if unsigned(d) > best then\n"
                    "best <= unsigned(d);\n"
                    "end if;",
                    reset_body="best <= (others => '0');",
                )
                + "\n    max_val <= std_logic_vector(best);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                max(s, i["d"]),
                {"max_val": max(s, i["d"])},
            ),
            v_functional=[
                functional(
                    "tracks the minimum instead",
                    "if (d > max_val) max_val <= d;",
                    "if (d < max_val) max_val <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "tracks the minimum instead",
                    "if unsigned(d) > best then",
                    "if unsigned(d) < best then",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="ones_counter",
            family=FAMILY,
            prompt=(
                "Count cycles where the input bit is high: an 8-bit "
                "counter increments on each rising edge where d is 1 "
                "(wrapping); rst clears it."
            ),
            port_specs=ports(("d", 1, "in"), ("count", 8, "out")),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "if (d) count <= count + 8'd1;",
                reset_body="count <= 8'd0;",
            ),
            vh_decls="    signal cnt : unsigned(7 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if d = '1' then\ncnt <= cnt + 1;\nend if;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (s + i["d"]) & 0xFF,
                {"count": (s + i["d"]) & 0xFF},
            ),
            v_functional=[
                functional(
                    "counts zero cycles instead",
                    "if (d) count",
                    "if (!d) count",
                ),
            ],
            vh_functional=[
                functional(
                    "counts zero cycles instead",
                    "if d = '1' then",
                    "if d = '0' then",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="parity_accum",
            family=FAMILY,
            prompt=(
                "Maintain the running parity of a serial bit stream: "
                "parity flips on each rising edge where d is 1; rst "
                "clears it to 0 (even)."
            ),
            port_specs=ports(("d", 1, "in"), ("parity", 1, "out")),
            v_reg_outputs={"parity"},
            v_body=v_clocked_always(
                "parity <= parity ^ d;",
                reset_body="parity <= 1'b0;",
            ),
            vh_body=vh_clocked_process(
                "parity <= parity xor d;",
                reset_body="parity <= '0';",
            ),
            reset=lambda: 0,
            step=lambda s, i: (s ^ i["d"], {"parity": s ^ i["d"]}),
            v_functional=[
                functional(
                    "latches d instead of accumulating",
                    "parity <= parity ^ d;",
                    "parity <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "latches d instead of accumulating",
                    "parity <= parity xor d;",
                    "parity <= d;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="running_min4",
            family=FAMILY,
            prompt=(
                "Track the minimum 4-bit value seen since reset: on each "
                "rising edge, if d is below the stored minimum, replace "
                "it; rst sets the minimum to 15."
            ),
            port_specs=ports(("d", 4, "in"), ("min_val", 4, "out")),
            v_reg_outputs={"min_val"},
            v_body=v_clocked_always(
                "if (d < min_val) min_val <= d;",
                reset_body="min_val <= 4'd15;",
            ),
            vh_decls="    signal best : unsigned(3 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if unsigned(d) < best then\n"
                    "best <= unsigned(d);\n"
                    "end if;",
                    reset_body="best <= (others => '1');",
                )
                + "\n    min_val <= std_logic_vector(best);"
            ),
            reset=lambda: 15,
            step=lambda s, i: (
                min(s, i["d"]),
                {"min_val": min(s, i["d"])},
            ),
            v_functional=[
                functional(
                    "tracks the maximum instead",
                    "if (d < min_val) min_val <= d;",
                    "if (d > min_val) min_val <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "tracks the maximum instead",
                    "if unsigned(d) < best then",
                    "if unsigned(d) > best then",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="history4",
            family=FAMILY,
            prompt=(
                "Record the last four values of a serial input: q[0] is "
                "the most recent bit of d, q[3] the oldest; rst clears "
                "the history."
            ),
            port_specs=ports(("d", 1, "in"), ("q", 4, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "q <= {q[2:0], d};",
                reset_body="q <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "q <= q(2 downto 0) & d;",
                reset_body="q <= \"0000\";",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                ((s << 1) | i["d"]) & 0xF,
                {"q": ((s << 1) | i["d"]) & 0xF},
            ),
            v_functional=[
                functional(
                    "newest bit enters at the MSB",
                    "{q[2:0], d}",
                    "{d, q[3:1]}",
                ),
            ],
            vh_functional=[
                functional(
                    "newest bit enters at the MSB",
                    "q(2 downto 0) & d",
                    "d & q(3 downto 1)",
                ),
            ],
        )
    )
    return problems
