"""Family: shift registers (SIPO, PISO, bidirectional, LFSR, shift_ena)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "shiftreg"


def generate():
    problems = []
    problems.append(
        seq_problem(
            pid="sipo8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit serial-in parallel-out shift register: "
                "on each rising edge the register shifts left by one and "
                "the serial input sin enters at the LSB; rst clears it."
            ),
            port_specs=ports(("sin", 1, "in"), ("q", 8, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "q <= {q[6:0], sin};",
                reset_body="q <= 8'd0;",
            ),
            vh_body=vh_clocked_process(
                "q <= q(6 downto 0) & sin;",
                reset_body="q <= (others => '0');",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                ((s << 1) | i["sin"]) & 0xFF,
                {"q": ((s << 1) | i["sin"]) & 0xFF},
            ),
            v_functional=[
                functional(
                    "shifts right instead",
                    "{q[6:0], sin}",
                    "{sin, q[7:1]}",
                ),
            ],
            vh_functional=[
                functional(
                    "shifts right instead",
                    "q(6 downto 0) & sin",
                    "sin & q(7 downto 1)",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="siso4",
            family=FAMILY,
            prompt=(
                "Implement a 4-stage serial-in serial-out delay line: "
                "sout is sin delayed by exactly four clock cycles; rst "
                "clears the pipeline."
            ),
            port_specs=ports(("sin", 1, "in"), ("sout", 1, "out")),
            v_body=(
                "    reg [3:0] sr;\n"
                + v_clocked_always(
                    "sr <= {sr[2:0], sin};",
                    reset_body="sr <= 4'd0;",
                )
                + "\n    assign sout = sr[3];"
            ),
            vh_decls="    signal sr : std_logic_vector(3 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "sr <= sr(2 downto 0) & sin;",
                    reset_body="sr <= (others => '0');",
                )
                + "\n    sout <= sr(3);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                ((s << 1) | i["sin"]) & 0xF,
                {"sout": (((s << 1) | i["sin"]) >> 3) & 1},
            ),
            v_functional=[
                functional("taps one stage early", "sout = sr[3]", "sout = sr[2]"),
            ],
            vh_functional=[
                functional(
                    "taps one stage early",
                    "sout <= sr(3);",
                    "sout <= sr(2);",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="piso8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit parallel-in serial-out register: when "
                "load is high at a rising edge the register takes d; "
                "otherwise it shifts left, emitting the MSB on sout and "
                "filling the LSB with 0. sout always shows the register "
                "MSB; rst clears the register."
            ),
            port_specs=ports(
                ("d", 8, "in"), ("load", 1, "in"), ("sout", 1, "out")
            ),
            v_body=(
                "    reg [7:0] sr;\n"
                + v_clocked_always(
                    "if (load) sr <= d;\n"
                    "else sr <= {sr[6:0], 1'b0};",
                    reset_body="sr <= 8'd0;",
                )
                + "\n    assign sout = sr[7];"
            ),
            vh_decls="    signal sr : std_logic_vector(7 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if load = '1' then\n"
                    "sr <= d;\n"
                    "else\n"
                    "sr <= sr(6 downto 0) & '0';\n"
                    "end if;",
                    reset_body="sr <= (others => '0');",
                )
                + "\n    sout <= sr(7);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                i["d"] if i["load"] else (s << 1) & 0xFF,
                {"sout": ((i["d"] if i["load"] else (s << 1) & 0xFF) >> 7) & 1},
            ),
            # load a zero pattern, then shift long enough for fill bits to
            # reach the serial output
            extra_cycles=(
                [{"d": 0, "load": 1}] + [{"d": 0, "load": 0}] * 10
                + [{"d": 0xA5, "load": 1}] + [{"d": 0, "load": 0}] * 10
            ),
            v_functional=[
                functional(
                    "fills with one instead of zero",
                    "{sr[6:0], 1'b0}",
                    "{sr[6:0], 1'b1}",
                ),
                functional("taps the LSB", "sout = sr[7]", "sout = sr[0]"),
            ],
            vh_functional=[
                functional(
                    "taps the LSB",
                    "sout <= sr(7);",
                    "sout <= sr(0);",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="shift_lr4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit bidirectional shift register: on "
                "enabled rising edges it shifts left (LSB filled with sin) "
                "when dir is 0 and right (MSB filled with sin) when dir "
                "is 1; rst clears it."
            ),
            port_specs=ports(
                ("sin", 1, "in"), ("dir", 1, "in"), ("en", 1, "in"),
                ("q", 4, "out"),
            ),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) begin\n"
                "if (dir) q <= {sin, q[3:1]};\n"
                "else q <= {q[2:0], sin};\n"
                "end",
                reset_body="q <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\n"
                "if dir = '1' then\n"
                "q <= sin & q(3 downto 1);\n"
                "else\n"
                "q <= q(2 downto 0) & sin;\n"
                "end if;\n"
                "end if;",
                reset_body="q <= \"0000\";",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (
                    ((i["sin"] << 3) | (s >> 1)) if i["dir"]
                    else (((s << 1) | i["sin"]) & 0xF)
                ) if i["en"] else s,
                {"q": (
                    ((i["sin"] << 3) | (s >> 1)) if i["dir"]
                    else (((s << 1) | i["sin"]) & 0xF)
                ) if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "direction control inverted",
                    "if (dir) q <= {sin, q[3:1]};",
                    "if (!dir) q <= {sin, q[3:1]};",
                ),
            ],
            vh_functional=[
                functional(
                    "direction control inverted",
                    "if dir = '1' then",
                    "if dir = '0' then",
                ),
            ],
        )
    )
    # LFSR x^4 + x^3 + 1, Fibonacci form, taps 3 and 2 (0-indexed bits)
    def lfsr4_next(s: int) -> int:
        feedback = ((s >> 3) ^ (s >> 2)) & 1
        return ((s << 1) | feedback) & 0xF

    problems.append(
        seq_problem(
            pid="lfsr4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit Fibonacci LFSR for x^4 + x^3 + 1: reset "
                "loads 0001; on each rising edge the register shifts left "
                "and the new LSB is q[3] XOR q[2]."
            ),
            port_specs=ports(("q", 4, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "q <= {q[2:0], q[3] ^ q[2]};",
                reset_body="q <= 4'b0001;",
            ),
            vh_body=vh_clocked_process(
                "q <= q(2 downto 0) & (q(3) xor q(2));",
                reset_body="q <= \"0001\";",
            ),
            reset=lambda: 1,
            step=lambda s, i: (lfsr4_next(s), {"q": lfsr4_next(s)}),
            v_functional=[
                functional(
                    "wrong tap (q[1] instead of q[2])",
                    "q[3] ^ q[2]",
                    "q[3] ^ q[1]",
                ),
            ],
            vh_functional=[
                functional(
                    "wrong tap (q(1) instead of q(2))",
                    "q(3) xor q(2)",
                    "q(3) xor q(1)",
                ),
            ],
        )
    )

    def lfsr8_next(s: int) -> int:
        feedback = ((s >> 7) ^ (s >> 5) ^ (s >> 4) ^ (s >> 3)) & 1
        return ((s << 1) | feedback) & 0xFF

    problems.append(
        seq_problem(
            pid="lfsr8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit Fibonacci LFSR with taps at bits 7, 5, "
                "4, 3: reset loads 00000001; each rising edge shifts left "
                "with the XOR of the taps entering at the LSB."
            ),
            port_specs=ports(("q", 8, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "q <= {q[6:0], q[7] ^ q[5] ^ q[4] ^ q[3]};",
                reset_body="q <= 8'b00000001;",
            ),
            vh_body=vh_clocked_process(
                "q <= q(6 downto 0) & (q(7) xor q(5) xor q(4) xor q(3));",
                reset_body="q <= \"00000001\";",
            ),
            reset=lambda: 1,
            step=lambda s, i: (lfsr8_next(s), {"q": lfsr8_next(s)}),
            v_functional=[
                functional(
                    "tap 3 dropped",
                    "q[7] ^ q[5] ^ q[4] ^ q[3]",
                    "q[7] ^ q[5] ^ q[4]",
                ),
            ],
            vh_functional=[
                functional(
                    "tap 3 dropped",
                    "q(7) xor q(5) xor q(4) xor q(3)",
                    "q(7) xor q(5) xor q(4)",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="rotreg4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit rotating register with parallel load: "
                "load takes priority and stores d; otherwise on enabled "
                "rising edges the register rotates left by one; rst "
                "clears it."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("load", 1, "in"), ("en", 1, "in"),
                ("q", 4, "out"),
            ),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (load) q <= d;\n"
                "else if (en) q <= {q[2:0], q[3]};",
                reset_body="q <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "if load = '1' then\n"
                "q <= d;\n"
                "elsif en = '1' then\n"
                "q <= q(2 downto 0) & q(3);\n"
                "end if;",
                reset_body="q <= \"0000\";",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                i["d"] if i["load"]
                else (((s << 1) | (s >> 3)) & 0xF if i["en"] else s),
                {"q": i["d"] if i["load"]
                 else (((s << 1) | (s >> 3)) & 0xF if i["en"] else s)},
            ),
            v_functional=[
                functional(
                    "rotate drops the wrapped bit (shift instead)",
                    "{q[2:0], q[3]}",
                    "{q[2:0], 1'b0}",
                ),
            ],
            vh_functional=[
                functional(
                    "rotate drops the wrapped bit (shift instead)",
                    "q(2 downto 0) & q(3)",
                    "q(2 downto 0) & '0'",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="sipo4_en",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit serial-in parallel-out shift register "
                "with enable: it shifts left (sin entering at the LSB) "
                "only on rising edges where en is high; rst clears it."
            ),
            port_specs=ports(
                ("sin", 1, "in"), ("en", 1, "in"), ("q", 4, "out")
            ),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) q <= {q[2:0], sin};",
                reset_body="q <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\nq <= q(2 downto 0) & sin;\nend if;",
                reset_body="q <= \"0000\";",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (((s << 1) | i["sin"]) & 0xF) if i["en"] else s,
                {"q": (((s << 1) | i["sin"]) & 0xF) if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "shifts even when disabled",
                    "if (en) q <= {q[2:0], sin};",
                    "q <= {q[2:0], sin};",
                ),
            ],
            vh_functional=[
                functional(
                    "shifts even when disabled",
                    "if en = '1' then\n                q <= q(2 downto 0) & sin;"
                    "\n            end if;",
                    "q <= q(2 downto 0) & sin;",
                ),
            ],
        )
    )
    # the paper's Fig. 2 example: shift_ena pulses for exactly 4 cycles
    problems.append(
        seq_problem(
            pid="shift_ena_pulse",
            family=FAMILY,
            prompt=(
                "Build the shift-enable controller from a shift-and-"
                "compare datapath: after rst is released, assert shift_ena "
                "for exactly the first 4 clock cycles, then keep it 0 "
                "until the next reset (this mirrors the AIVRIL2 paper's "
                "worked example)."
            ),
            port_specs=ports(("shift_ena", 1, "out")),
            v_body=(
                "    reg [2:0] cycles;\n"
                + v_clocked_always(
                    "if (cycles != 3'd4) cycles <= cycles + 3'd1;",
                    reset_body="cycles <= 3'd0;",
                )
                + "\n    assign shift_ena = (cycles < 3'd4);"
            ),
            vh_decls="    signal cycles : unsigned(2 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if cycles /= 4 then\ncycles <= cycles + 1;\nend if;",
                    reset_body="cycles <= (others => '0');",
                )
                + "\n    shift_ena <= '1' when cycles < 4 else '0';"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                s + 1 if s != 4 else s,
                {"shift_ena": 1 if (s + 1 if s != 4 else s) < 4 else 0},
            ),
            v_functional=[
                functional(
                    "enabled for 5 cycles instead of 4 "
                    "(the paper's Fig. 2 defect)",
                    "(cycles < 3'd4)",
                    "(cycles <= 3'd4)",
                ),
            ],
            vh_functional=[
                functional(
                    "enabled for 5 cycles instead of 4 "
                    "(the paper's Fig. 2 defect)",
                    "when cycles < 4",
                    "when cycles <= 4",
                ),
            ],
        )
    )
    return problems
