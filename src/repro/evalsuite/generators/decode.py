"""Family: decoders, encoders, and priority encoders."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "decode"


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="dec2to4",
            family=FAMILY,
            prompt=(
                "Implement a 2-to-4 one-hot decoder: output y has exactly "
                "bit number sel set, all other bits clear."
            ),
            port_specs=ports(("sel", 2, "in"), ("y", 4, "out")),
            v_body="    assign y = 4'b0001 << sel;",
            vh_body=(
                "    with sel select\n"
                '        y <= "0001" when "00",\n'
                '             "0010" when "01",\n'
                '             "0100" when "10",\n'
                '             "1000" when others;'
            ),
            fn=lambda i: {"y": 1 << i["sel"]},
            v_functional=[
                functional(
                    "one-cold instead of one-hot",
                    "4'b0001 << sel",
                    "~(4'b0001 << sel)",
                ),
            ],
            vh_functional=[
                functional(
                    "codes 01 and 10 swapped",
                    '"0010" when "01",\n             "0100" when "10",',
                    '"0100" when "01",\n             "0010" when "10",',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="dec2to4_en",
            family=FAMILY,
            prompt=(
                "Implement a 2-to-4 one-hot decoder with enable: when en is "
                "1, y has bit sel set; when en is 0, y is all zeros."
            ),
            port_specs=ports(("sel", 2, "in"), ("en", 1, "in"), ("y", 4, "out")),
            v_body="    assign y = en ? (4'b0001 << sel) : 4'b0000;",
            vh_body=(
                "    process(sel, en)\n"
                "    begin\n"
                "        if en = '1' then\n"
                '            y <= "0000";\n'
                "            y(to_integer(unsigned(sel))) <= '1';\n"
                "        else\n"
                '            y <= "0000";\n'
                "        end if;\n"
                "    end process;"
            ),
            fn=lambda i: {"y": (1 << i["sel"]) if i["en"] else 0},
            v_functional=[
                functional(
                    "enable polarity inverted",
                    "en ? (4'b0001 << sel) : 4'b0000",
                    "en ? 4'b0000 : (4'b0001 << sel)",
                ),
            ],
            vh_functional=[
                functional(
                    "enable polarity inverted",
                    "if en = '1' then",
                    "if en = '0' then",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="dec3to8",
            family=FAMILY,
            prompt=(
                "Implement a 3-to-8 one-hot decoder: output y (8 bits) has "
                "exactly bit number sel set."
            ),
            port_specs=ports(("sel", 3, "in"), ("y", 8, "out")),
            v_body="    assign y = 8'b00000001 << sel;",
            vh_body=(
                "    process(sel)\n"
                "    begin\n"
                '        y <= "00000000";\n'
                "        y(to_integer(unsigned(sel))) <= '1';\n"
                "    end process;"
            ),
            fn=lambda i: {"y": 1 << i["sel"]},
            v_functional=[
                functional(
                    "decodes sel+1 (shift by one extra)",
                    "8'b00000001 << sel",
                    "8'b00000010 << sel",
                ),
            ],
            vh_functional=[
                functional(
                    "drives '0' on the selected lane",
                    "y(to_integer(unsigned(sel))) <= '1';",
                    "y(to_integer(unsigned(sel))) <= '0';",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="enc4to2",
            family=FAMILY,
            prompt=(
                "Implement a 4-to-2 binary encoder for one-hot inputs: "
                "y is the index of the single set bit of d "
                "(d is guaranteed one-hot; for non-one-hot inputs the "
                "highest set bit wins, and zero input gives y = 0)."
            ),
            port_specs=ports(("d", 4, "in"), ("y", 2, "out")),
            v_body=(
                "    assign y = d[3] ? 2'd3 :\n"
                "               d[2] ? 2'd2 :\n"
                "               d[1] ? 2'd1 : 2'd0;"
            ),
            vh_body=(
                '    y <= "11" when d(3) = \'1\' else\n'
                '         "10" when d(2) = \'1\' else\n'
                '         "01" when d(1) = \'1\' else\n'
                '         "00";'
            ),
            fn=lambda i: {
                "y": 3 if i["d"] & 8 else 2 if i["d"] & 4 else 1 if i["d"] & 2 else 0
            },
            v_functional=[
                functional(
                    "indices 2 and 3 swapped",
                    "d[3] ? 2'd3 :\n               d[2] ? 2'd2 :",
                    "d[3] ? 2'd2 :\n               d[2] ? 2'd3 :",
                ),
            ],
            vh_functional=[
                functional(
                    "indices 2 and 3 swapped",
                    '"11" when d(3) = \'1\' else\n         "10" when d(2)',
                    '"10" when d(3) = \'1\' else\n         "11" when d(2)',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="prienc4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit priority encoder: y is the index of the "
                "highest set bit of d, and valid is 1 when any bit of d is "
                "set (y = 0 when d = 0)."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("y", 2, "out"), ("valid", 1, "out")
            ),
            v_body=(
                "    assign y = d[3] ? 2'd3 :\n"
                "               d[2] ? 2'd2 :\n"
                "               d[1] ? 2'd1 : 2'd0;\n"
                "    assign valid = |d;"
            ),
            vh_body=(
                '    y <= "11" when d(3) = \'1\' else\n'
                '         "10" when d(2) = \'1\' else\n'
                '         "01" when d(1) = \'1\' else\n'
                '         "00";\n'
                "    valid <= d(3) or d(2) or d(1) or d(0);"
            ),
            fn=lambda i: {
                "y": 3 if i["d"] & 8 else 2 if i["d"] & 4 else 1 if i["d"] & 2 else 0,
                "valid": 1 if i["d"] else 0,
            },
            v_functional=[
                functional(
                    "priority runs low-to-high",
                    "d[3] ? 2'd3 :\n               d[2] ? 2'd2 :\n"
                    "               d[1] ? 2'd1 : 2'd0",
                    "d[1] ? 2'd1 :\n               d[2] ? 2'd2 :\n"
                    "               d[3] ? 2'd3 : 2'd0",
                ),
                functional("valid stuck high", "assign valid = |d;",
                           "assign valid = 1'b1;"),
            ],
            vh_functional=[
                functional(
                    "valid ignores bit 0",
                    "valid <= d(3) or d(2) or d(1) or d(0);",
                    "valid <= d(3) or d(2) or d(1);",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="prienc8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit priority encoder: y (3 bits) is the "
                "index of the highest set bit of d; y = 0 when d = 0."
            ),
            port_specs=ports(("d", 8, "in"), ("y", 3, "out")),
            v_body=(
                "    reg [2:0] y_r;\n"
                "    integer i;\n"
                "    always @(*) begin\n"
                "        y_r = 3'd0;\n"
                "        for (i = 0; i < 8; i = i + 1)\n"
                "            if (d[i]) y_r = i[2:0];\n"
                "    end\n"
                "    assign y = y_r;"
            ),
            vh_body=(
                "    process(d)\n"
                "        variable idx : unsigned(2 downto 0);\n"
                "    begin\n"
                '        idx := "000";\n'
                "        for i in 0 to 7 loop\n"
                "            if d(i) = '1' then\n"
                "                idx := to_unsigned(i, 3);\n"
                "            end if;\n"
                "        end loop;\n"
                "        y <= std_logic_vector(idx);\n"
                "    end process;"
            ),
            fn=lambda i: {"y": i["d"].bit_length() - 1 if i["d"] else 0},
            v_functional=[
                functional(
                    "loop misses the top bit",
                    "for (i = 0; i < 8; i = i + 1)",
                    "for (i = 0; i < 7; i = i + 1)",
                ),
            ],
            vh_functional=[
                functional(
                    "loop misses the top bit",
                    "for i in 0 to 7 loop",
                    "for i in 0 to 6 loop",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="onehot_check",
            family=FAMILY,
            prompt=(
                "Check whether a 4-bit input is one-hot: output y is 1 when "
                "exactly one bit of d is set, else 0."
            ),
            port_specs=ports(("d", 4, "in"), ("y", 1, "out")),
            v_body=(
                "    wire [2:0] count;\n"
                "    assign count = d[0] + d[1] + d[2] + d[3];\n"
                "    assign y = (count == 3'd1);"
            ),
            vh_body=(
                "    process(d)\n"
                "        variable cnt : unsigned(2 downto 0);\n"
                "    begin\n"
                '        cnt := "000";\n'
                "        for i in 0 to 3 loop\n"
                "            if d(i) = '1' then\n"
                "                cnt := cnt + 1;\n"
                "            end if;\n"
                "        end loop;\n"
                "        if cnt = 1 then\n"
                "            y <= '1';\n"
                "        else\n"
                "            y <= '0';\n"
                "        end if;\n"
                "    end process;"
            ),
            fn=lambda i: {"y": 1 if bin(i["d"]).count("1") == 1 else 0},
            v_functional=[
                functional(
                    "accepts zero or one bits",
                    "(count == 3'd1)",
                    "(count <= 3'd1)",
                ),
            ],
            vh_functional=[
                functional(
                    "accepts zero or one bits",
                    "if cnt = 1 then",
                    "if cnt <= 1 then",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="dec4to16",
            family=FAMILY,
            prompt=(
                "Implement a 4-to-16 one-hot decoder: the 16-bit output y "
                "has exactly bit number sel set."
            ),
            port_specs=ports(("sel", 4, "in"), ("y", 16, "out")),
            v_body="    assign y = 16'd1 << sel;",
            vh_body=(
                "    process(sel)\n"
                "    begin\n"
                "        y <= (others => '0');\n"
                "        y(to_integer(unsigned(sel))) <= '1';\n"
                "    end process;"
            ),
            fn=lambda i: {"y": 1 << i["sel"]},
            v_functional=[
                functional(
                    "decodes sel+1",
                    "16'd1 << sel",
                    "16'd2 << sel",
                ),
            ],
            vh_functional=[
                functional(
                    "inactive lanes driven high",
                    "y <= (others => '0');",
                    "y <= (others => '1');",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="thermometer4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit thermometer decoder: for a 3-bit input "
                "n (0..4 meaningful), the n lowest bits of y are 1 and the "
                "rest 0 (n >= 4 gives all ones)."
            ),
            port_specs=ports(("n", 3, "in"), ("y", 4, "out")),
            v_body=(
                "    assign y = (n >= 3'd4) ? 4'b1111 :\n"
                "               ((4'b0001 << n) - 4'd1);"
            ),
            vh_body=(
                "    process(n)\n"
                "    begin\n"
                '        y <= "0000";\n'
                "        for i in 0 to 3 loop\n"
                "            if i < to_integer(unsigned(n)) then\n"
                "                y(i) <= '1';\n"
                "            end if;\n"
                "        end loop;\n"
                "    end process;"
            ),
            fn=lambda i: {"y": (1 << min(i["n"], 4)) - 1},
            v_functional=[
                functional(
                    "one level short",
                    "((4'b0001 << n) - 4'd1)",
                    "((4'b0001 << n) >> 1)",
                ),
            ],
            vh_functional=[
                functional(
                    "one level short",
                    "if i < to_integer(unsigned(n)) then",
                    "if i + 1 < to_integer(unsigned(n)) then",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="seven_seg",
            family=FAMILY,
            prompt=(
                "Implement a hexadecimal seven-segment decoder: map the "
                "4-bit input digit to segments seg[6:0] = gfedcba, active "
                "high, using the standard hex segment patterns "
                "(0 -> 0111111, 1 -> 0000110, ..., F -> 1110001)."
            ),
            port_specs=ports(("digit", 4, "in"), ("seg", 7, "out")),
            v_body=(
                "    reg [6:0] seg_r;\n"
                "    always @(*) begin\n"
                "        case (digit)\n"
                "            4'h0: seg_r = 7'b0111111;\n"
                "            4'h1: seg_r = 7'b0000110;\n"
                "            4'h2: seg_r = 7'b1011011;\n"
                "            4'h3: seg_r = 7'b1001111;\n"
                "            4'h4: seg_r = 7'b1100110;\n"
                "            4'h5: seg_r = 7'b1101101;\n"
                "            4'h6: seg_r = 7'b1111101;\n"
                "            4'h7: seg_r = 7'b0000111;\n"
                "            4'h8: seg_r = 7'b1111111;\n"
                "            4'h9: seg_r = 7'b1101111;\n"
                "            4'hA: seg_r = 7'b1110111;\n"
                "            4'hB: seg_r = 7'b1111100;\n"
                "            4'hC: seg_r = 7'b0111001;\n"
                "            4'hD: seg_r = 7'b1011110;\n"
                "            4'hE: seg_r = 7'b1111001;\n"
                "            default: seg_r = 7'b1110001;\n"
                "        endcase\n"
                "    end\n"
                "    assign seg = seg_r;"
            ),
            vh_body=(
                "    with digit select\n"
                '        seg <= "0111111" when "0000",\n'
                '               "0000110" when "0001",\n'
                '               "1011011" when "0010",\n'
                '               "1001111" when "0011",\n'
                '               "1100110" when "0100",\n'
                '               "1101101" when "0101",\n'
                '               "1111101" when "0110",\n'
                '               "0000111" when "0111",\n'
                '               "1111111" when "1000",\n'
                '               "1101111" when "1001",\n'
                '               "1110111" when "1010",\n'
                '               "1111100" when "1011",\n'
                '               "0111001" when "1100",\n'
                '               "1011110" when "1101",\n'
                '               "1111001" when "1110",\n'
                '               "1110001" when others;'
            ),
            fn=lambda i: {
                "seg": [
                    0b0111111, 0b0000110, 0b1011011, 0b1001111,
                    0b1100110, 0b1101101, 0b1111101, 0b0000111,
                    0b1111111, 0b1101111, 0b1110111, 0b1111100,
                    0b0111001, 0b1011110, 0b1111001, 0b1110001,
                ][i["digit"]]
            },
            v_functional=[
                functional(
                    "wrong pattern for digit 2",
                    "4'h2: seg_r = 7'b1011011;",
                    "4'h2: seg_r = 7'b1011010;",
                ),
                functional(
                    "patterns for 6 and 7 swapped",
                    "4'h6: seg_r = 7'b1111101;\n            4'h7: seg_r = 7'b0000111;",
                    "4'h6: seg_r = 7'b0000111;\n            4'h7: seg_r = 7'b1111101;",
                ),
            ],
            vh_functional=[
                functional(
                    "wrong pattern for digit 2",
                    '"1011011" when "0010",',
                    '"1011010" when "0010",',
                ),
            ],
        )
    )
    return problems
