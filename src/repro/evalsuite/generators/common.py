"""Shared builders for problem-family generators."""

from __future__ import annotations

from typing import Callable

from repro.designs.model import (
    CombModel,
    DesignSpec,
    PortSpec,
    ProblemDefinition,
    SeqModel,
)
from repro.designs.mutations import Mutation, functional, syntax
from repro.evalsuite.hdl_helpers import v_module, vh_entity


def ports(*specs: tuple[str, int, str]) -> tuple[PortSpec, ...]:
    """Terse port construction: ports(("a", 4, "in"), ("y", 4, "out"))."""
    return tuple(PortSpec(name, width, direction) for name, width, direction in specs)


def comb_problem(
    *,
    pid: str,
    family: str,
    prompt: str,
    port_specs: tuple[PortSpec, ...],
    v_body: str,
    vh_body: str,
    fn: Callable[[dict[str, int]], dict[str, int]],
    vh_decls: str = "",
    v_syntax: list[Mutation] | None = None,
    vh_syntax: list[Mutation] | None = None,
    v_functional: list[Mutation] | None = None,
    vh_functional: list[Mutation] | None = None,
    v_reg_outputs: set[str] | None = None,
    extra_vectors: list[dict[str, int]] | None = None,
) -> ProblemDefinition:
    """Build a combinational problem from per-language body text."""
    spec = DesignSpec(name=pid, ports=port_specs, clocked=False)
    return ProblemDefinition(
        pid=pid,
        family=family,
        spec=spec,
        prompt=prompt,
        reference_verilog=v_module(spec, v_body, reg_outputs=v_reg_outputs),
        reference_vhdl=vh_entity(spec, vh_decls, vh_body),
        model=CombModel(fn),
        syntax_mutations_verilog=v_syntax or default_verilog_syntax(),
        syntax_mutations_vhdl=vh_syntax or default_vhdl_syntax(),
        functional_mutations_verilog=v_functional or [],
        functional_mutations_vhdl=vh_functional or [],
        extra_vectors=extra_vectors or [],
    )


def seq_problem(
    *,
    pid: str,
    family: str,
    prompt: str,
    port_specs: tuple[PortSpec, ...],
    v_body: str,
    vh_body: str,
    reset: Callable[[], object],
    step: Callable[[object, dict[str, int]], tuple[object, dict[str, int]]],
    vh_decls: str = "",
    v_syntax: list[Mutation] | None = None,
    vh_syntax: list[Mutation] | None = None,
    v_functional: list[Mutation] | None = None,
    vh_functional: list[Mutation] | None = None,
    v_reg_outputs: set[str] | None = None,
    random_cycles: int = 24,
    extra_cycles: list[dict[str, int]] | None = None,
    reset_outputs: dict[str, int] | None = None,
) -> ProblemDefinition:
    """Build a sequential (clk + sync rst) problem from per-language body text.

    ``extra_cycles`` are directed stimulus cycles inserted right after reset
    (before the default stimulus); ``reset_outputs`` adds a post-reset check
    so wrong-reset-value defects stay observable.
    """
    spec = DesignSpec(name=pid, ports=port_specs, clocked=True, has_reset=True)
    return ProblemDefinition(
        pid=pid,
        family=family,
        spec=spec,
        prompt=prompt,
        reference_verilog=v_module(spec, v_body, reg_outputs=v_reg_outputs),
        reference_vhdl=vh_entity(spec, vh_decls, vh_body),
        model=SeqModel(reset=reset, step=step),
        syntax_mutations_verilog=v_syntax or default_verilog_syntax(),
        syntax_mutations_vhdl=vh_syntax or default_vhdl_syntax(),
        functional_mutations_verilog=v_functional or [],
        functional_mutations_vhdl=vh_functional or [],
        random_cycles=random_cycles,
        extra_vectors=extra_cycles or [],
        reset_outputs=reset_outputs,
    )


# --------------------------------------------------------------------------
# default syntax-defect catalogs
#
# These anchors exist in every skeleton emitted by hdl_helpers, so families
# can rely on them without crafting anchors of their own.
# --------------------------------------------------------------------------


def default_verilog_syntax() -> list[Mutation]:
    return [
        syntax(
            "misspelled 'endmodule' keyword",
            "endmodule",
            "endmodul",
        ),
        syntax(
            "misspelled 'module' keyword in the header",
            "module top_module",
            "modul top_module",
        ),
    ]


def default_vhdl_syntax() -> list[Mutation]:
    return [
        syntax(
            "missing 'is' in entity declaration",
            "entity top_module is",
            "entity top_module",
        ),
        syntax(
            "misspelled 'architecture' keyword",
            "architecture rtl of",
            "architecure rtl of",
        ),
    ]


def op_swap_verilog(find: str, replace: str, what: str) -> Mutation:
    return functional(f"wrong operator: {what}", find, replace)


def op_swap_vhdl(find: str, replace: str, what: str) -> Mutation:
    return functional(f"wrong operator: {what}", find, replace)
