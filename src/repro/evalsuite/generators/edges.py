"""Family: edge detection, synchronizers, pulse shaping."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "edges"


def _debounce_step(s, i):
    """Python model of the 3-cycle debouncer (state = (run, last, state))."""
    run, last, state = s
    d = i["d"]
    if d == last:
        new_run = run + 1 if run != 2 else run
        new_state = d if run >= 2 else state
    else:
        new_run = 0
        new_state = state
    return (new_run, d, new_state), {"q": new_state}


def generate():
    problems = []
    problems.append(
        seq_problem(
            pid="edge_rise",
            family=FAMILY,
            prompt=(
                "Detect rising edges of a slow input: pulse is 1 for "
                "exactly one cycle when d was 0 on the previous cycle and "
                "is 1 now (registered output; rst clears the history)."
            ),
            port_specs=ports(("d", 1, "in"), ("pulse", 1, "out")),
            v_reg_outputs={"pulse"},
            v_body=(
                "    reg prev;\n"
                + v_clocked_always(
                    "prev <= d;\npulse <= d & ~prev;",
                    reset_body="prev <= 1'b0;\npulse <= 1'b0;",
                )
            ),
            vh_decls="    signal prev : std_logic;",
            vh_body=vh_clocked_process(
                "prev <= d;\npulse <= d and (not prev);",
                reset_body="prev <= '0';\npulse <= '0';",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["d"], i["d"] & (s[0] ^ 1)),
                {"pulse": i["d"] & (s[0] ^ 1)},
            ),
            v_functional=[
                functional(
                    "detects falling edges instead",
                    "pulse <= d & ~prev;",
                    "pulse <= ~d & prev;",
                ),
            ],
            vh_functional=[
                functional(
                    "detects falling edges instead",
                    "pulse <= d and (not prev);",
                    "pulse <= (not d) and prev;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="edge_fall",
            family=FAMILY,
            prompt=(
                "Detect falling edges of an input: pulse is 1 for exactly "
                "one cycle when d was 1 on the previous cycle and is 0 now."
            ),
            port_specs=ports(("d", 1, "in"), ("pulse", 1, "out")),
            v_reg_outputs={"pulse"},
            v_body=(
                "    reg prev;\n"
                + v_clocked_always(
                    "prev <= d;\npulse <= ~d & prev;",
                    reset_body="prev <= 1'b0;\npulse <= 1'b0;",
                )
            ),
            vh_decls="    signal prev : std_logic;",
            vh_body=vh_clocked_process(
                "prev <= d;\npulse <= (not d) and prev;",
                reset_body="prev <= '0';\npulse <= '0';",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["d"], (i["d"] ^ 1) & s[0]),
                {"pulse": (i["d"] ^ 1) & s[0]},
            ),
            v_functional=[
                functional(
                    "detects rising edges instead",
                    "pulse <= ~d & prev;",
                    "pulse <= d & ~prev;",
                ),
            ],
            vh_functional=[
                functional(
                    "detects rising edges instead",
                    "pulse <= (not d) and prev;",
                    "pulse <= d and (not prev);",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="edge_any",
            family=FAMILY,
            prompt=(
                "Detect any edge of an input: pulse is 1 for one cycle "
                "whenever d differs from its value on the previous cycle."
            ),
            port_specs=ports(("d", 1, "in"), ("pulse", 1, "out")),
            v_reg_outputs={"pulse"},
            v_body=(
                "    reg prev;\n"
                + v_clocked_always(
                    "prev <= d;\npulse <= d ^ prev;",
                    reset_body="prev <= 1'b0;\npulse <= 1'b0;",
                )
            ),
            vh_decls="    signal prev : std_logic;",
            vh_body=vh_clocked_process(
                "prev <= d;\npulse <= d xor prev;",
                reset_body="prev <= '0';\npulse <= '0';",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["d"], i["d"] ^ s[0]),
                {"pulse": i["d"] ^ s[0]},
            ),
            v_functional=[
                functional(
                    "level detector (XNOR) instead of edge",
                    "pulse <= d ^ prev;",
                    "pulse <= ~(d ^ prev);",
                ),
            ],
            vh_functional=[
                functional(
                    "level detector (XNOR) instead of edge",
                    "pulse <= d xor prev;",
                    "pulse <= d xnor prev;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="sync2ff",
            family=FAMILY,
            prompt=(
                "Implement a two-stage synchronizer: q is the asynchronous "
                "input d passed through two flip-flops in series (so q is "
                "d delayed by two cycles); rst clears both stages."
            ),
            port_specs=ports(("d", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=(
                "    reg meta;\n"
                + v_clocked_always(
                    "meta <= d;\nq <= meta;",
                    reset_body="meta <= 1'b0;\nq <= 1'b0;",
                )
            ),
            vh_decls="    signal meta : std_logic;",
            vh_body=vh_clocked_process(
                "meta <= d;\nq <= meta;",
                reset_body="meta <= '0';\nq <= '0';",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["d"], s[0]),
                {"q": s[0]},
            ),
            v_functional=[
                functional(
                    "single stage only",
                    "meta <= d;\n            q <= meta;",
                    "meta <= d;\n            q <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "single stage only",
                    "meta <= d;\n            q <= meta;",
                    "meta <= d;\n            q <= d;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="toggle_on_press",
            family=FAMILY,
            prompt=(
                "Toggle an output on each rising edge of a button input: "
                "q flips state on every cycle where btn was 0 and is now "
                "1; rst clears q."
            ),
            port_specs=ports(("btn", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=(
                "    reg prev;\n"
                + v_clocked_always(
                    "prev <= btn;\nif (btn & ~prev) q <= ~q;",
                    reset_body="prev <= 1'b0;\nq <= 1'b0;",
                )
            ),
            vh_decls="    signal prev : std_logic;",
            vh_body=vh_clocked_process(
                "prev <= btn;\n"
                "if btn = '1' and prev = '0' then\n"
                "q <= not q;\n"
                "end if;",
                reset_body="prev <= '0';\nq <= '0';",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["btn"], s[1] ^ (i["btn"] & (s[0] ^ 1))),
                {"q": s[1] ^ (i["btn"] & (s[0] ^ 1))},
            ),
            v_functional=[
                functional(
                    "toggles on level, not edge",
                    "if (btn & ~prev) q <= ~q;",
                    "if (btn) q <= ~q;",
                ),
            ],
            vh_functional=[
                functional(
                    "toggles on level, not edge",
                    "if btn = '1' and prev = '0' then",
                    "if btn = '1' then",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="debounce3",
            family=FAMILY,
            prompt=(
                "Implement a 3-cycle debouncer: the output q changes to "
                "the value of d only after d has held that value for three "
                "consecutive rising edges; otherwise q keeps its previous "
                "value; rst clears everything."
            ),
            port_specs=ports(("d", 1, "in"), ("q", 1, "out")),
            v_body=(
                "    reg [1:0] run;\n"
                "    reg last;\n"
                "    reg state;\n"
                + v_clocked_always(
                    "if (d == last) begin\n"
                    "if (run != 2'd2) run <= run + 2'd1;\n"
                    "if (run >= 2'd2) state <= d;\n"
                    "end else begin\n"
                    "run <= 2'd0;\n"
                    "end\n"
                    "last <= d;",
                    reset_body="run <= 2'd0;\nlast <= 1'b0;\nstate <= 1'b0;",
                )
                + "\n    assign q = state;"
            ),
            vh_decls=(
                "    signal run : unsigned(1 downto 0);\n"
                "    signal last : std_logic;\n"
                "    signal state : std_logic;"
            ),
            vh_body=(
                vh_clocked_process(
                    "if d = last then\n"
                    "if run /= 2 then\n"
                    "run <= run + 1;\n"
                    "end if;\n"
                    "if run >= 2 then\n"
                    "state <= d;\n"
                    "end if;\n"
                    "else\n"
                    "run <= \"00\";\n"
                    "end if;\n"
                    "last <= d;",
                    reset_body="run <= \"00\";\nlast <= '0';\nstate <= '0';",
                )
                + "\n    q <= state;"
            ),
            reset=lambda: (0, 0, 0),  # (run, last, state)
            step=lambda s, i: _debounce_step(s, i),
            v_functional=[
                functional(
                    "accepts after two stable cycles",
                    "if (run >= 2'd2) state <= d;",
                    "if (run >= 2'd1) state <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "accepts after two stable cycles",
                    "if run >= 2 then",
                    "if run >= 1 then",
                ),
            ],
            random_cycles=40,
        )
    )
    problems.append(
        seq_problem(
            pid="stretch4",
            family=FAMILY,
            prompt=(
                "Stretch single-cycle pulses to four cycles: whenever d is "
                "1, the output stays 1 for that cycle and the following "
                "three cycles (retriggerable); rst clears it."
            ),
            port_specs=ports(("d", 1, "in"), ("q", 1, "out")),
            v_body=(
                "    reg [1:0] remain;\n"
                + v_clocked_always(
                    "if (d) remain <= 2'd3;\n"
                    "else if (remain != 2'd0) remain <= remain - 2'd1;",
                    reset_body="remain <= 2'd0;",
                )
                + "\n    reg held;\n"
                + v_clocked_always(
                    "held <= d | (remain != 2'd0);",
                    reset_body="held <= 1'b0;",
                )
                + "\n    assign q = held;"
            ),
            vh_decls=(
                "    signal remain : unsigned(1 downto 0);\n"
                "    signal held : std_logic;"
            ),
            vh_body=(
                vh_clocked_process(
                    "if d = '1' then\n"
                    "remain <= \"11\";\n"
                    "elsif remain /= 0 then\n"
                    "remain <= remain - 1;\n"
                    "end if;",
                    reset_body="remain <= \"00\";",
                )
                + "\n"
                + vh_clocked_process(
                    "if d = '1' or remain /= 0 then\n"
                    "held <= '1';\n"
                    "else\n"
                    "held <= '0';\n"
                    "end if;",
                    reset_body="held <= '0';",
                )
                + "\n    q <= held;"
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (
                    3 if i["d"] else max(s[0] - 1, 0),
                    1 if (i["d"] or s[0] != 0) else 0,
                ),
                {"q": 1 if (i["d"] or s[0] != 0) else 0},
            ),
            v_functional=[
                functional(
                    "stretches to two cycles only",
                    "if (d) remain <= 2'd3;",
                    "if (d) remain <= 2'd1;",
                ),
            ],
            vh_functional=[
                functional(
                    "stretches to two cycles only",
                    "remain <= \"11\";",
                    "remain <= \"01\";",
                ),
            ],
        )
    )
    return problems
