"""Family: flip-flops and registers (synchronous, active-high sync reset)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "registers"


def generate():
    problems = []
    problems.append(
        seq_problem(
            pid="dff",
            family=FAMILY,
            prompt=(
                "Implement a D flip-flop with synchronous active-high "
                "reset: on each rising clock edge, q takes the value of d; "
                "when rst is high at the edge, q is cleared to 0."
            ),
            port_specs=ports(("d", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always("q <= d;", reset_body="q <= 1'b0;"),
            vh_body=vh_clocked_process("q <= d;", reset_body="q <= '0';"),
            reset=lambda: 0,
            step=lambda s, i: (i["d"], {"q": i["d"]}),
            reset_outputs={"q": 0},
            v_functional=[
                functional("captures inverted data", "q <= d;", "q <= ~d;"),
                functional("reset loads 1", "q <= 1'b0;", "q <= 1'b1;"),
            ],
            vh_functional=[
                functional("captures inverted data", "q <= d;", "q <= not d;"),
                functional("reset loads 1", "q <= '0';", "q <= '1';"),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="dff_en",
            family=FAMILY,
            prompt=(
                "Implement a D flip-flop with enable and synchronous "
                "reset: q loads d on a rising edge only when en is high; "
                "otherwise q holds; rst clears q."
            ),
            port_specs=ports(("d", 1, "in"), ("en", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) q <= d;", reset_body="q <= 1'b0;"
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\nq <= d;\nend if;", reset_body="q <= '0';"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                i["d"] if i["en"] else s,
                {"q": i["d"] if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "enable ignored (always loads)",
                    "if (en) q <= d;",
                    "q <= d;",
                ),
                functional(
                    "enable polarity inverted",
                    "if (en) q <= d;",
                    "if (!en) q <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "enable polarity inverted",
                    "if en = '1' then",
                    "if en = '0' then",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="tff",
            family=FAMILY,
            prompt=(
                "Implement a T flip-flop with synchronous reset: q toggles "
                "on each rising edge where t is high, holds otherwise, and "
                "clears when rst is high."
            ),
            port_specs=ports(("t", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (t) q <= ~q;", reset_body="q <= 1'b0;"
            ),
            vh_body=vh_clocked_process(
                "if t = '1' then\nq <= not q;\nend if;",
                reset_body="q <= '0';",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                s ^ i["t"],
                {"q": s ^ i["t"]},
            ),
            v_functional=[
                functional(
                    "toggles every cycle (t ignored)",
                    "if (t) q <= ~q;",
                    "q <= ~q;",
                ),
            ],
            vh_functional=[
                functional(
                    "toggle input inverted",
                    "if t = '1' then",
                    "if t = '0' then",
                ),
            ],
        )
    )
    # VHDL reads an 'out' port q internally? Avoid: use an internal signal.
    # (handled above by our toolchain, but keep references idiomatic)
    problems.append(
        seq_problem(
            pid="register8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit register with synchronous reset: on "
                "each rising edge q loads d; rst clears q to 0."
            ),
            port_specs=ports(("d", 8, "in"), ("q", 8, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always("q <= d;", reset_body="q <= 8'd0;"),
            vh_body=vh_clocked_process(
                "q <= d;", reset_body="q <= (others => '0');"
            ),
            reset=lambda: 0,
            step=lambda s, i: (i["d"], {"q": i["d"]}),
            v_functional=[
                functional("low nibble dropped", "q <= d;", "q <= d & 8'hF0;"),
            ],
            vh_functional=[
                functional(
                    "low nibble dropped",
                    "q <= d;",
                    'q <= d and "11110000";',
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="register8_en",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit register with load enable and "
                "synchronous reset: q loads d on rising edges where en is "
                "high, holds otherwise."
            ),
            port_specs=ports(
                ("d", 8, "in"), ("en", 1, "in"), ("q", 8, "out")
            ),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) q <= d;", reset_body="q <= 8'd0;"
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\nq <= d;\nend if;",
                reset_body="q <= (others => '0');",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                i["d"] if i["en"] else s,
                {"q": i["d"] if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "enable ignored (always loads)",
                    "if (en) q <= d;",
                    "q <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "enable ignored (always loads)",
                    "if en = '1' then\nq <= d;\nend if;",
                    "q <= d;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="register4_clear_set",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit register with priority controls: on a "
                "rising edge, clear (to 0) wins over set (to 15), which "
                "wins over load-from-d; with no control asserted q holds. "
                "rst also clears q."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("clear", 1, "in"), ("set_all", 1, "in"),
                ("load", 1, "in"), ("q", 4, "out"),
            ),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (clear) q <= 4'd0;\n"
                "else if (set_all) q <= 4'b1111;\n"
                "else if (load) q <= d;",
                reset_body="q <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "if clear = '1' then\n"
                "q <= \"0000\";\n"
                "elsif set_all = '1' then\n"
                "q <= \"1111\";\n"
                "elsif load = '1' then\n"
                "q <= d;\n"
                "end if;",
                reset_body="q <= (others => '0');",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                0 if i["clear"] else 15 if i["set_all"] else
                i["d"] if i["load"] else s,
                {"q": 0 if i["clear"] else 15 if i["set_all"] else
                 i["d"] if i["load"] else s},
            ),
            v_functional=[
                functional(
                    "set wins over clear (priority swapped)",
                    "if (clear) q <= 4'd0;\n        else if (set_all) q <= 4'b1111;",
                    "if (set_all) q <= 4'b1111;\n        else if (clear) q <= 4'd0;",
                ),
            ],
            vh_functional=[
                functional(
                    "set wins over clear (priority swapped)",
                    "if clear = '1' then\n            q <= \"0000\";\n"
                    "            elsif set_all = '1' then\n            q <= \"1111\";",
                    "if set_all = '1' then\n            q <= \"1111\";\n"
                    "            elsif clear = '1' then\n            q <= \"0000\";",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="dff_set",
            family=FAMILY,
            prompt=(
                "Implement a D flip-flop with synchronous set: when set is "
                "high at a rising edge, q becomes 1 (set wins over d); "
                "otherwise q takes d; rst clears q."
            ),
            port_specs=ports(("d", 1, "in"), ("set_q", 1, "in"), ("q", 1, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (set_q) q <= 1'b1;\nelse q <= d;",
                reset_body="q <= 1'b0;",
            ),
            vh_body=vh_clocked_process(
                "if set_q = '1' then\nq <= '1';\nelse\nq <= d;\nend if;",
                reset_body="q <= '0';",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                1 if i["set_q"] else i["d"],
                {"q": 1 if i["set_q"] else i["d"]},
            ),
            v_functional=[
                functional(
                    "set drives 0",
                    "if (set_q) q <= 1'b1;",
                    "if (set_q) q <= 1'b0;",
                ),
            ],
            vh_functional=[
                functional(
                    "set drives 0",
                    "if set_q = '1' then\n                q <= '1';",
                    "if set_q = '1' then\n                q <= '0';",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="swap_pair",
            family=FAMILY,
            prompt=(
                "Implement a swapping register pair: two 4-bit registers "
                "r0 (output q0) and r1 (output q1); when swap is high at a "
                "rising edge they exchange values, otherwise r0 loads d "
                "and r1 holds; rst clears both."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("swap", 1, "in"),
                ("q0", 4, "out"), ("q1", 4, "out"),
            ),
            v_reg_outputs={"q0", "q1"},
            v_body=v_clocked_always(
                "if (swap) begin\n"
                "q0 <= q1;\n"
                "q1 <= q0;\n"
                "end else begin\n"
                "q0 <= d;\n"
                "end",
                reset_body="q0 <= 4'd0;\nq1 <= 4'd0;",
            ),
            vh_body=vh_clocked_process(
                "if swap = '1' then\n"
                "q0 <= q1;\n"
                "q1 <= q0;\n"
                "else\n"
                "q0 <= d;\n"
                "end if;",
                reset_body="q0 <= (others => '0');\nq1 <= (others => '0');",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (s[1], s[0]) if i["swap"] else (i["d"], s[1]),
                {"q0": s[1] if i["swap"] else i["d"],
                 "q1": s[0] if i["swap"] else s[1]},
            ),
            v_functional=[
                functional(
                    "swap copies one way only",
                    "q0 <= q1;\n            q1 <= q0;",
                    "q0 <= q1;\n            q1 <= q1;",
                ),
            ],
            vh_functional=[
                functional(
                    "swap copies one way only",
                    "q0 <= q1;\n                q1 <= q0;",
                    "q0 <= q1;\n                q1 <= q1;",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="pipeline2",
            family=FAMILY,
            prompt=(
                "Implement a two-stage pipeline register: q is the 4-bit "
                "input d delayed by exactly two clock cycles; rst clears "
                "both stages."
            ),
            port_specs=ports(("d", 4, "in"), ("q", 4, "out")),
            v_reg_outputs={"q"},
            v_body=(
                "    reg [3:0] stage1;\n"
                + v_clocked_always(
                    "stage1 <= d;\nq <= stage1;",
                    reset_body="stage1 <= 4'd0;\nq <= 4'd0;",
                )
            ),
            vh_decls="    signal stage1 : std_logic_vector(3 downto 0);",
            vh_body=vh_clocked_process(
                "stage1 <= d;\nq <= stage1;",
                reset_body="stage1 <= (others => '0');\nq <= (others => '0');",
            ),
            reset=lambda: (0, 0),
            step=lambda s, i: (
                (i["d"], s[0]),
                {"q": s[0]},
            ),
            v_functional=[
                functional(
                    "only one stage of delay",
                    "stage1 <= d;\n            q <= stage1;",
                    "stage1 <= d;\n            q <= d;",
                ),
            ],
            vh_functional=[
                functional(
                    "only one stage of delay",
                    "stage1 <= d;\n            q <= stage1;",
                    "stage1 <= d;\n            q <= d;",
                ),
            ],
        )
    )
    return problems
