"""Family: structural/hierarchical designs (submodule instantiation).

These exercise the instantiation path of both frontends: the reference
source contains helper modules/entities plus a `top_module` that wires them
together — the style VerilogEval's larger problems use.
"""

from __future__ import annotations

from repro.designs.mutations import functional, syntax
from repro.designs.model import CombModel, DesignSpec, ProblemDefinition
from repro.evalsuite.generators.common import ports

FAMILY = "structural"


def _ripple_adder4() -> ProblemDefinition:
    spec = DesignSpec(
        name="struct_ripple4",
        ports=ports(
            ("a", 4, "in"), ("b", 4, "in"), ("cin", 1, "in"),
            ("sum", 4, "out"), ("cout", 1, "out"),
        ),
        clocked=False,
    )
    reference_verilog = """\
module full_adder(
    input a,
    input b,
    input cin,
    output sum,
    output cout
);
    assign sum = a ^ b ^ cin;
    assign cout = (a & b) | (a & cin) | (b & cin);
endmodule

module top_module(
    input [3:0] a,
    input [3:0] b,
    input cin,
    output [3:0] sum,
    output cout
);
    wire c1, c2, c3;
    full_adder fa0(.a(a[0]), .b(b[0]), .cin(cin), .sum(sum[0]), .cout(c1));
    full_adder fa1(.a(a[1]), .b(b[1]), .cin(c1), .sum(sum[1]), .cout(c2));
    full_adder fa2(.a(a[2]), .b(b[2]), .cin(c2), .sum(sum[2]), .cout(c3));
    full_adder fa3(.a(a[3]), .b(b[3]), .cin(c3), .sum(sum[3]), .cout(cout));
endmodule
"""
    reference_vhdl = """\
library ieee;
use ieee.std_logic_1164.all;

entity full_adder is
    port (
        a : in std_logic;
        b : in std_logic;
        cin : in std_logic;
        sum : out std_logic;
        cout : out std_logic
    );
end entity;

architecture rtl of full_adder is
begin
    sum <= a xor b xor cin;
    cout <= (a and b) or (a and cin) or (b and cin);
end architecture;

library ieee;
use ieee.std_logic_1164.all;

entity top_module is
    port (
        a : in std_logic_vector(3 downto 0);
        b : in std_logic_vector(3 downto 0);
        cin : in std_logic;
        sum : out std_logic_vector(3 downto 0);
        cout : out std_logic
    );
end entity;

architecture rtl of top_module is
    signal c1, c2, c3 : std_logic;
begin
    fa0: entity work.full_adder port map (
        a => a(0), b => b(0), cin => cin, sum => sum(0), cout => c1);
    fa1: entity work.full_adder port map (
        a => a(1), b => b(1), cin => c1, sum => sum(1), cout => c2);
    fa2: entity work.full_adder port map (
        a => a(2), b => b(2), cin => c2, sum => sum(2), cout => c3);
    fa3: entity work.full_adder port map (
        a => a(3), b => b(3), cin => c3, sum => sum(3), cout => cout);
end architecture;
"""
    return ProblemDefinition(
        pid="struct_ripple4",
        family=FAMILY,
        spec=spec,
        prompt=(
            "Build a 4-bit ripple-carry adder structurally: define a "
            "1-bit full-adder module and instantiate it four times, "
            "chaining the carries from cin through to cout."
        ),
        reference_verilog=reference_verilog,
        reference_vhdl=reference_vhdl,
        model=CombModel(
            lambda i: {
                "sum": (i["a"] + i["b"] + i["cin"]) & 0xF,
                "cout": (i["a"] + i["b"] + i["cin"]) >> 4,
            }
        ),
        syntax_mutations_verilog=[
            syntax(
                "instance fa1 missing its semicolon",
                ".sum(sum[1]), .cout(c2));",
                ".sum(sum[1]), .cout(c2))",
            ),
            syntax(
                "misspelled 'endmodule' on the full adder",
                "endmodule\n\nmodule top_module",
                "endmodul\n\nmodule top_module",
            ),
        ],
        syntax_mutations_vhdl=[
            syntax(
                "instance fa1 missing its semicolon",
                "sum => sum(1), cout => c2);",
                "sum => sum(1), cout => c2)",
            ),
            syntax(
                "missing 'is' on the full_adder entity",
                "entity full_adder is",
                "entity full_adder",
            ),
        ],
        functional_mutations_verilog=[
            functional(
                "carry chain broken between stages 1 and 2",
                ".b(b[2]), .cin(c2)",
                ".b(b[2]), .cin(c1)",
            ),
            functional(
                "full-adder carry drops the b&cin term",
                "(a & b) | (a & cin) | (b & cin)",
                "(a & b) | (a & cin)",
            ),
        ],
        functional_mutations_vhdl=[
            functional(
                "carry chain broken between stages 1 and 2",
                "b => b(2), cin => c2",
                "b => b(2), cin => c1",
            ),
            functional(
                "full-adder carry drops the b&cin term",
                "(a and b) or (a and cin) or (b and cin)",
                "(a and b) or (a and cin)",
            ),
        ],
    )


def _mux_tree() -> ProblemDefinition:
    spec = DesignSpec(
        name="struct_muxtree",
        ports=ports(
            ("a", 1, "in"), ("b", 1, "in"), ("c", 1, "in"), ("d", 1, "in"),
            ("sel", 2, "in"), ("y", 1, "out"),
        ),
        clocked=False,
    )
    reference_verilog = """\
module mux2(
    input a,
    input b,
    input sel,
    output y
);
    assign y = sel ? b : a;
endmodule

module top_module(
    input a,
    input b,
    input c,
    input d,
    input [1:0] sel,
    output y
);
    wire lo, hi;
    mux2 m0(.a(a), .b(b), .sel(sel[0]), .y(lo));
    mux2 m1(.a(c), .b(d), .sel(sel[0]), .y(hi));
    mux2 m2(.a(lo), .b(hi), .sel(sel[1]), .y(y));
endmodule
"""
    reference_vhdl = """\
library ieee;
use ieee.std_logic_1164.all;

entity mux2 is
    port (
        a : in std_logic;
        b : in std_logic;
        sel : in std_logic;
        y : out std_logic
    );
end entity;

architecture rtl of mux2 is
begin
    y <= b when sel = '1' else a;
end architecture;

library ieee;
use ieee.std_logic_1164.all;

entity top_module is
    port (
        a : in std_logic;
        b : in std_logic;
        c : in std_logic;
        d : in std_logic;
        sel : in std_logic_vector(1 downto 0);
        y : out std_logic
    );
end entity;

architecture rtl of top_module is
    signal lo, hi : std_logic;
begin
    m0: entity work.mux2 port map (a => a, b => b, sel => sel(0), y => lo);
    m1: entity work.mux2 port map (a => c, b => d, sel => sel(0), y => hi);
    m2: entity work.mux2 port map (a => lo, b => hi, sel => sel(1), y => y);
end architecture;
"""
    return ProblemDefinition(
        pid="struct_muxtree",
        family=FAMILY,
        spec=spec,
        prompt=(
            "Build a 4-to-1 multiplexer structurally from three 2-to-1 "
            "multiplexers: sel=00 selects a, 01 selects b, 10 selects c, "
            "11 selects d."
        ),
        reference_verilog=reference_verilog,
        reference_vhdl=reference_vhdl,
        model=CombModel(
            lambda i: {"y": [i["a"], i["b"], i["c"], i["d"]][i["sel"]]}
        ),
        syntax_mutations_verilog=[
            syntax(
                "instance m1 missing its closing parenthesis",
                ".sel(sel[0]), .y(hi));",
                ".sel(sel[0]), .y(hi);",
            ),
            syntax(
                "misspelled 'module' on the mux2 definition",
                "module mux2",
                "modul mux2",
            ),
        ],
        syntax_mutations_vhdl=[
            syntax(
                "instance m1 missing its semicolon",
                "sel => sel(0), y => hi);",
                "sel => sel(0), y => hi)",
            ),
            syntax(
                "missing 'is' on the mux2 entity",
                "entity mux2 is",
                "entity mux2",
            ),
        ],
        functional_mutations_verilog=[
            functional(
                "second stage selects with the wrong bit",
                ".b(hi), .sel(sel[1])",
                ".b(hi), .sel(sel[0])",
            ),
            functional(
                "mux2 selection inverted",
                "sel ? b : a",
                "sel ? a : b",
            ),
        ],
        functional_mutations_vhdl=[
            functional(
                "second stage selects with the wrong bit",
                "b => hi, sel => sel(1)",
                "b => hi, sel => sel(0)",
            ),
            functional(
                "mux2 selection inverted",
                "y <= b when sel = '1' else a;",
                "y <= a when sel = '1' else b;",
            ),
        ],
    )


def _addsub_struct() -> ProblemDefinition:
    spec = DesignSpec(
        name="struct_addsub4",
        ports=ports(
            ("a", 4, "in"), ("b", 4, "in"), ("sub", 1, "in"),
            ("y", 4, "out"),
        ),
        clocked=False,
    )
    reference_verilog = """\
module adder4(
    input [3:0] x,
    input [3:0] y,
    input cin,
    output [3:0] s
);
    assign s = x + y + cin;
endmodule

module top_module(
    input [3:0] a,
    input [3:0] b,
    input sub,
    output [3:0] y
);
    wire [3:0] b_sel;
    assign b_sel = b ^ {4{sub}};
    adder4 core(.x(a), .y(b_sel), .cin(sub), .s(y));
endmodule
"""
    reference_vhdl = """\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity adder4 is
    port (
        x : in std_logic_vector(3 downto 0);
        y : in std_logic_vector(3 downto 0);
        cin : in std_logic;
        s : out std_logic_vector(3 downto 0)
    );
end entity;

architecture rtl of adder4 is
begin
    s <= std_logic_vector(unsigned(x) + unsigned(y)
         + resize(unsigned(cin), 4));
end architecture;

library ieee;
use ieee.std_logic_1164.all;

entity top_module is
    port (
        a : in std_logic_vector(3 downto 0);
        b : in std_logic_vector(3 downto 0);
        sub : in std_logic;
        y : out std_logic_vector(3 downto 0)
    );
end entity;

architecture rtl of top_module is
    signal b_sel : std_logic_vector(3 downto 0);
begin
    b_sel <= b xor (sub & sub & sub & sub);
    core: entity work.adder4 port map (x => a, y => b_sel, cin => sub, s => y);
end architecture;
"""
    return ProblemDefinition(
        pid="struct_addsub4",
        family=FAMILY,
        spec=spec,
        prompt=(
            "Build a 4-bit adder/subtractor structurally: reuse a 4-bit "
            "adder submodule and compute a - b (when sub is 1) by "
            "inverting b with XOR gates and feeding sub as the carry in; "
            "results wrap modulo 16."
        ),
        reference_verilog=reference_verilog,
        reference_vhdl=reference_vhdl,
        model=CombModel(
            lambda i: {
                "y": (i["a"] + (i["b"] ^ (0xF if i["sub"] else 0)) + i["sub"])
                & 0xF
            }
        ),
        syntax_mutations_verilog=[
            syntax(
                "instance core missing its semicolon",
                ".cin(sub), .s(y));",
                ".cin(sub), .s(y))",
            ),
            syntax(
                "misspelled 'module' on the adder definition",
                "module adder4",
                "modul adder4",
            ),
        ],
        syntax_mutations_vhdl=[
            syntax(
                "instance core missing its semicolon",
                "cin => sub, s => y);",
                "cin => sub, s => y)",
            ),
            syntax(
                "missing 'is' on the adder4 entity",
                "entity adder4 is",
                "entity adder4",
            ),
        ],
        functional_mutations_verilog=[
            functional(
                "carry-in not driven for subtraction",
                ".cin(sub)",
                ".cin(1'b0)",
            ),
            functional(
                "b not inverted for subtraction",
                "b ^ {4{sub}}",
                "b",
            ),
        ],
        functional_mutations_vhdl=[
            functional(
                "carry-in not driven for subtraction",
                "cin => sub, s => y",
                "cin => '0', s => y",
            ),
            functional(
                "b not inverted for subtraction",
                "b xor (sub & sub & sub & sub)",
                "b",
            ),
        ],
    )


def _parity_tree() -> ProblemDefinition:
    spec = DesignSpec(
        name="struct_parity8",
        ports=ports(("d", 8, "in"), ("p", 1, "out")),
        clocked=False,
    )
    reference_verilog = """\
module xor2(
    input a,
    input b,
    output y
);
    assign y = a ^ b;
endmodule

module top_module(
    input [7:0] d,
    output p
);
    wire [3:0] l1;
    wire [1:0] l2;
    xor2 x0(.a(d[0]), .b(d[1]), .y(l1[0]));
    xor2 x1(.a(d[2]), .b(d[3]), .y(l1[1]));
    xor2 x2(.a(d[4]), .b(d[5]), .y(l1[2]));
    xor2 x3(.a(d[6]), .b(d[7]), .y(l1[3]));
    xor2 x4(.a(l1[0]), .b(l1[1]), .y(l2[0]));
    xor2 x5(.a(l1[2]), .b(l1[3]), .y(l2[1]));
    xor2 x6(.a(l2[0]), .b(l2[1]), .y(p));
endmodule
"""
    reference_vhdl = """\
library ieee;
use ieee.std_logic_1164.all;

entity xor2 is
    port (
        a : in std_logic;
        b : in std_logic;
        y : out std_logic
    );
end entity;

architecture rtl of xor2 is
begin
    y <= a xor b;
end architecture;

library ieee;
use ieee.std_logic_1164.all;

entity top_module is
    port (
        d : in std_logic_vector(7 downto 0);
        p : out std_logic
    );
end entity;

architecture rtl of top_module is
    signal l1 : std_logic_vector(3 downto 0);
    signal l2 : std_logic_vector(1 downto 0);
begin
    x0: entity work.xor2 port map (a => d(0), b => d(1), y => l1(0));
    x1: entity work.xor2 port map (a => d(2), b => d(3), y => l1(1));
    x2: entity work.xor2 port map (a => d(4), b => d(5), y => l1(2));
    x3: entity work.xor2 port map (a => d(6), b => d(7), y => l1(3));
    x4: entity work.xor2 port map (a => l1(0), b => l1(1), y => l2(0));
    x5: entity work.xor2 port map (a => l1(2), b => l1(3), y => l2(1));
    x6: entity work.xor2 port map (a => l2(0), b => l2(1), y => p);
end architecture;
"""
    return ProblemDefinition(
        pid="struct_parity8",
        family=FAMILY,
        spec=spec,
        prompt=(
            "Build an 8-bit parity generator structurally: define a "
            "2-input XOR module and compose a balanced XOR tree producing "
            "the parity of d on output p."
        ),
        reference_verilog=reference_verilog,
        reference_vhdl=reference_vhdl,
        model=CombModel(lambda i: {"p": bin(i["d"]).count("1") & 1}),
        syntax_mutations_verilog=[
            syntax(
                "instance x4 missing its semicolon",
                ".b(l1[1]), .y(l2[0]));",
                ".b(l1[1]), .y(l2[0]))",
            ),
            syntax(
                "misspelled 'module' on the xor2 definition",
                "module xor2",
                "modul xor2",
            ),
        ],
        syntax_mutations_vhdl=[
            syntax(
                "instance x4 missing its semicolon",
                "b => l1(1), y => l2(0));",
                "b => l1(1), y => l2(0))",
            ),
            syntax(
                "missing 'is' on the xor2 entity",
                "entity xor2 is",
                "entity xor2",
            ),
        ],
        functional_mutations_verilog=[
            functional(
                "tree wiring duplicates a leaf",
                ".a(l1[2]), .b(l1[3])",
                ".a(l1[2]), .b(l1[2])",
            ),
            functional(
                "xor2 cell is an OR gate",
                "assign y = a ^ b;",
                "assign y = a | b;",
            ),
        ],
        functional_mutations_vhdl=[
            functional(
                "tree wiring duplicates a leaf",
                "a => l1(2), b => l1(3)",
                "a => l1(2), b => l1(2)",
            ),
            functional(
                "xor2 cell is an OR gate",
                "y <= a xor b;",
                "y <= a or b;",
            ),
        ],
    )


def generate():
    return [_ripple_adder4(), _mux_tree(), _addsub_struct(), _parity_tree()]
