"""Family: combinational shifters and rotators."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "shift_comb"


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="shl1_fixed",
            family=FAMILY,
            prompt=(
                "Shift an 8-bit input left by one position: y = a << 1, "
                "with 0 shifted into the LSB."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = a << 1;",
            vh_body="    y <= a(6 downto 0) & '0';",
            fn=lambda i: {"y": (i["a"] << 1) & 0xFF},
            v_functional=[
                functional("shifts right instead", "a << 1", "a >> 1"),
            ],
            vh_functional=[
                functional(
                    "shifts right instead",
                    "a(6 downto 0) & '0'",
                    "'0' & a(7 downto 1)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="shr1_fixed",
            family=FAMILY,
            prompt=(
                "Shift an 8-bit input right by one position: y = a >> 1, "
                "with 0 shifted into the MSB."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = a >> 1;",
            vh_body="    y <= '0' & a(7 downto 1);",
            fn=lambda i: {"y": i["a"] >> 1},
            v_functional=[
                functional("shifts left instead", "a >> 1", "a << 1"),
            ],
            vh_functional=[
                functional(
                    "shifts left instead",
                    "'0' & a(7 downto 1)",
                    "a(6 downto 0) & '0'",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="barrel_shl8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit barrel shifter (left): y = a << amt "
                "where amt is a 3-bit shift amount; zeros fill the LSBs."
            ),
            port_specs=ports(("a", 8, "in"), ("amt", 3, "in"), ("y", 8, "out")),
            v_body="    assign y = a << amt;",
            vh_body=(
                "    y <= std_logic_vector("
                "shift_left(unsigned(a), to_integer(unsigned(amt))));"
            ),
            fn=lambda i: {"y": (i["a"] << i["amt"]) & 0xFF},
            v_functional=[
                functional("shifts right instead", "a << amt", "a >> amt"),
            ],
            vh_functional=[
                functional(
                    "shifts right instead",
                    "shift_left(unsigned(a)",
                    "shift_right(unsigned(a)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="barrel_shr8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit barrel shifter (right, logical): "
                "y = a >> amt where amt is a 3-bit shift amount."
            ),
            port_specs=ports(("a", 8, "in"), ("amt", 3, "in"), ("y", 8, "out")),
            v_body="    assign y = a >> amt;",
            vh_body=(
                "    y <= std_logic_vector("
                "shift_right(unsigned(a), to_integer(unsigned(amt))));"
            ),
            fn=lambda i: {"y": i["a"] >> i["amt"]},
            v_functional=[
                functional("shifts left instead", "a >> amt", "a << amt"),
            ],
            vh_functional=[
                functional(
                    "shifts left instead",
                    "shift_right(unsigned(a)",
                    "shift_left(unsigned(a)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="rotl8",
            family=FAMILY,
            prompt=(
                "Rotate an 8-bit input left by a 3-bit amount: bits shifted "
                "out of the MSB re-enter at the LSB."
            ),
            port_specs=ports(("a", 8, "in"), ("amt", 3, "in"), ("y", 8, "out")),
            v_body=(
                "    wire [15:0] doubled;\n"
                "    assign doubled = {a, a} << amt;\n"
                "    assign y = doubled[15:8];"
            ),
            vh_body=(
                "    y <= std_logic_vector("
                "rotate_left(unsigned(a), to_integer(unsigned(amt))));"
            ),
            fn=lambda i: {
                "y": ((i["a"] << i["amt"]) | (i["a"] >> (8 - i["amt"]))) & 0xFF
                if i["amt"] else i["a"]
            },
            v_functional=[
                functional(
                    "takes the low half (rotation direction wrong)",
                    "doubled[15:8]",
                    "doubled[7:0]",
                ),
            ],
            vh_functional=[
                functional(
                    "rotates right instead",
                    "rotate_left(unsigned(a)",
                    "rotate_right(unsigned(a)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="rotr8",
            family=FAMILY,
            prompt=(
                "Rotate an 8-bit input right by a 3-bit amount: bits "
                "shifted out of the LSB re-enter at the MSB."
            ),
            port_specs=ports(("a", 8, "in"), ("amt", 3, "in"), ("y", 8, "out")),
            v_body=(
                "    wire [15:0] doubled;\n"
                "    assign doubled = {a, a} >> amt;\n"
                "    assign y = doubled[7:0];"
            ),
            vh_body=(
                "    y <= std_logic_vector("
                "rotate_right(unsigned(a), to_integer(unsigned(amt))));"
            ),
            fn=lambda i: {
                "y": ((i["a"] >> i["amt"]) | (i["a"] << (8 - i["amt"]))) & 0xFF
                if i["amt"] else i["a"]
            },
            v_functional=[
                functional(
                    "takes the high half (rotation direction wrong)",
                    "doubled[7:0]",
                    "doubled[15:8]",
                ),
            ],
            vh_functional=[
                functional(
                    "rotates left instead",
                    "rotate_right(unsigned(a)",
                    "rotate_left(unsigned(a)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="shl2_fill1",
            family=FAMILY,
            prompt=(
                "Shift an 8-bit input left by two positions, filling the "
                "two vacated LSBs with ones: y = (a << 2) | 2'b11."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = {a[5:0], 2'b11};",
            vh_body="    y <= a(5 downto 0) & \"11\";",
            fn=lambda i: {"y": ((i["a"] << 2) | 3) & 0xFF},
            v_functional=[
                functional("fills with zeros", "{a[5:0], 2'b11}", "{a[5:0], 2'b00}"),
            ],
            vh_functional=[
                functional(
                    "fills with zeros",
                    "a(5 downto 0) & \"11\"",
                    "a(5 downto 0) & \"00\"",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="asr8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit arithmetic right shift by a 3-bit "
                "amount: y = a >>> amt, replicating the sign bit a[7]."
            ),
            port_specs=ports(("a", 8, "in"), ("amt", 3, "in"), ("y", 8, "out")),
            v_body=(
                "    wire signed [7:0] sa;\n"
                "    assign sa = a;\n"
                "    assign y = sa >>> amt;"
            ),
            vh_body=(
                "    process(a, amt)\n"
                "        variable v : std_logic_vector(7 downto 0);\n"
                "    begin\n"
                "        v := a;\n"
                "        for i in 0 to 7 loop\n"
                "            if i < to_integer(unsigned(amt)) then\n"
                "                v := v(7) & v(7 downto 1);\n"
                "            end if;\n"
                "        end loop;\n"
                "        y <= v;\n"
                "    end process;"
            ),
            fn=lambda i: {
                "y": ((i["a"] | (0xFF00 if i["a"] & 0x80 else 0)) >> i["amt"]) & 0xFF
            },
            v_functional=[
                functional(
                    "logical instead of arithmetic shift",
                    "sa >>> amt",
                    "sa >> amt",
                ),
            ],
            vh_functional=[
                functional(
                    "fills with zero instead of the sign bit",
                    "v := v(7) & v(7 downto 1);",
                    "v := '0' & v(7 downto 1);",
                ),
            ],
        )
    )
    return problems
