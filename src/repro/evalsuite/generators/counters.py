"""Family: counters (binary, modulo, up/down, loadable, ring, Johnson)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import ports, seq_problem
from repro.evalsuite.hdl_helpers import v_clocked_always, vh_clocked_process

FAMILY = "counters"


def _vh_unsigned_counter_decls(width: int) -> str:
    return f"    signal cnt : unsigned({width - 1} downto 0);"


def generate():
    problems = []
    for width in (4, 8):
        problems.append(
            seq_problem(
                pid=f"counter{width}",
                family=FAMILY,
                prompt=(
                    f"Implement a {width}-bit binary up-counter with "
                    "synchronous reset and enable: count increments on "
                    "rising edges where en is high, wraps at the maximum, "
                    "and clears when rst is high."
                ),
                port_specs=ports(("en", 1, "in"), ("count", width, "out")),
                v_reg_outputs={"count"},
                v_body=v_clocked_always(
                    f"if (en) count <= count + {width}'d1;",
                    reset_body=f"count <= {width}'d0;",
                ),
                vh_decls=_vh_unsigned_counter_decls(width),
                vh_body=(
                    vh_clocked_process(
                        "if en = '1' then\ncnt <= cnt + 1;\nend if;",
                        reset_body="cnt <= (others => '0');",
                    )
                    + "\n    count <= std_logic_vector(cnt);"
                ),
                reset=lambda: 0,
                step=lambda s, i, w=width: (
                    (s + i["en"]) & ((1 << w) - 1),
                    {"count": (s + i["en"]) & ((1 << w) - 1)},
                ),
                v_functional=[
                    functional(
                        "counts by two",
                        f"count + {width}'d1",
                        f"count + {width}'d2",
                    ),
                    functional(
                        "enable ignored",
                        f"if (en) count <= count + {width}'d1;",
                        f"count <= count + {width}'d1;",
                    ),
                ],
                vh_functional=[
                    functional("counts by two", "cnt + 1", "cnt + 2"),
                    functional(
                        "enable polarity inverted",
                        "if en = '1' then",
                        "if en = '0' then",
                    ),
                ],
            )
        )
    problems.append(
        seq_problem(
            pid="downcounter4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit down-counter with synchronous reset "
                "(reset loads 15) and enable: count decrements on enabled "
                "rising edges and wraps from 0 back to 15."
            ),
            port_specs=ports(("en", 1, "in"), ("count", 4, "out")),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "if (en) count <= count - 4'd1;",
                reset_body="count <= 4'd15;",
            ),
            vh_decls=_vh_unsigned_counter_decls(4),
            vh_body=(
                vh_clocked_process(
                    "if en = '1' then\ncnt <= cnt - 1;\nend if;",
                    reset_body="cnt <= (others => '1');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 15,
            step=lambda s, i: (
                (s - i["en"]) & 0xF,
                {"count": (s - i["en"]) & 0xF},
            ),
            v_functional=[
                functional("counts up instead", "count - 4'd1", "count + 4'd1"),
                functional("reset loads 0", "count <= 4'd15;", "count <= 4'd0;"),
            ],
            vh_functional=[
                functional("counts up instead", "cnt - 1", "cnt + 1"),
                functional(
                    "reset loads 0",
                    "cnt <= (others => '1');",
                    "cnt <= (others => '0');",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="updown4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit up/down counter: on enabled rising "
                "edges it counts up when up is 1 and down when up is 0; "
                "rst clears it."
            ),
            port_specs=ports(
                ("en", 1, "in"), ("up", 1, "in"), ("count", 4, "out")
            ),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "if (en) begin\n"
                "if (up) count <= count + 4'd1;\n"
                "else count <= count - 4'd1;\n"
                "end",
                reset_body="count <= 4'd0;",
            ),
            vh_decls=_vh_unsigned_counter_decls(4),
            vh_body=(
                vh_clocked_process(
                    "if en = '1' then\n"
                    "if up = '1' then\n"
                    "cnt <= cnt + 1;\n"
                    "else\n"
                    "cnt <= cnt - 1;\n"
                    "end if;\n"
                    "end if;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (s + (1 if i["up"] else -1) * i["en"]) & 0xF,
                {"count": (s + (1 if i["up"] else -1) * i["en"]) & 0xF},
            ),
            v_functional=[
                functional(
                    "direction inverted",
                    "if (up) count <= count + 4'd1;",
                    "if (!up) count <= count + 4'd1;",
                ),
            ],
            vh_functional=[
                functional(
                    "direction inverted",
                    "if up = '1' then",
                    "if up = '0' then",
                ),
            ],
        )
    )
    for modulo in (6, 10):
        problems.append(
            seq_problem(
                pid=f"mod{modulo}_counter",
                family=FAMILY,
                prompt=(
                    f"Implement a modulo-{modulo} counter (0 to {modulo - 1}): "
                    "it increments on enabled rising edges and wraps from "
                    f"{modulo - 1} back to 0; rst clears it."
                ),
                port_specs=ports(("en", 1, "in"), ("count", 4, "out")),
                v_reg_outputs={"count"},
                v_body=v_clocked_always(
                    "if (en) begin\n"
                    f"if (count == 4'd{modulo - 1}) count <= 4'd0;\n"
                    "else count <= count + 4'd1;\n"
                    "end",
                    reset_body="count <= 4'd0;",
                ),
                vh_decls=_vh_unsigned_counter_decls(4),
                vh_body=(
                    vh_clocked_process(
                        "if en = '1' then\n"
                        f"if cnt = {modulo - 1} then\n"
                        "cnt <= (others => '0');\n"
                        "else\n"
                        "cnt <= cnt + 1;\n"
                        "end if;\n"
                        "end if;",
                        reset_body="cnt <= (others => '0');",
                    )
                    + "\n    count <= std_logic_vector(cnt);"
                ),
                reset=lambda: 0,
                step=lambda s, i, m=modulo: (
                    ((s + 1) % m if s < m else 0) if i["en"] else s,
                    {"count": (((s + 1) % m if s < m else 0) if i["en"] else s)},
                ),
                v_functional=[
                    functional(
                        "wraps one count late",
                        f"(count == 4'd{modulo - 1})",
                        f"(count == 4'd{modulo})",
                    ),
                ],
                vh_functional=[
                    functional(
                        "wraps one count late",
                        f"if cnt = {modulo - 1} then",
                        f"if cnt = {modulo} then",
                    ),
                ],
            )
        )
    problems.append(
        seq_problem(
            pid="counter2",
            family=FAMILY,
            prompt=(
                "Implement a free-running 2-bit counter: it increments on "
                "every rising edge (wrapping 3 -> 0); rst clears it."
            ),
            port_specs=ports(("count", 2, "out")),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "count <= count + 2'd1;",
                reset_body="count <= 2'd0;",
            ),
            vh_decls="    signal cnt : unsigned(1 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "cnt <= cnt + 1;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 0,
            step=lambda s, i: ((s + 1) & 3, {"count": (s + 1) & 3}),
            v_functional=[
                functional("counts by two", "count + 2'd1", "count + 2'd2"),
            ],
            vh_functional=[
                functional("counts by two", "cnt + 1", "cnt + 2"),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="counter_carry",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit counter with a carry flag: count "
                "increments on enabled rising edges; carry is 1 exactly "
                "when count is at its maximum (15) and en is high, i.e. "
                "the next enabled edge wraps; rst clears the counter."
            ),
            port_specs=ports(
                ("en", 1, "in"), ("count", 4, "out"), ("carry", 1, "out")
            ),
            v_reg_outputs={"count"},
            v_body=(
                v_clocked_always(
                    "if (en) count <= count + 4'd1;",
                    reset_body="count <= 4'd0;",
                )
                + "\n    assign carry = en & (count == 4'd15);"
            ),
            vh_decls="    signal cnt : unsigned(3 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if en = '1' then\ncnt <= cnt + 1;\nend if;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
                + "\n    carry <= '1' when en = '1' and cnt = 15 else '0';"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (s + i["en"]) & 0xF,
                {"count": (s + i["en"]) & 0xF,
                 "carry": 1 if (i["en"] and (s + i["en"]) & 0xF == 15) else 0},
            ),
            extra_cycles=[{"en": 1}] * 18,
            v_functional=[
                functional(
                    "carry fires one count early",
                    "(count == 4'd15)",
                    "(count == 4'd14)",
                ),
            ],
            vh_functional=[
                functional(
                    "carry fires one count early",
                    "and cnt = 15 else",
                    "and cnt = 14 else",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="counter_load",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit counter with parallel load: when load "
                "is high at a rising edge, count takes d; otherwise count "
                "increments (load has priority); rst clears it."
            ),
            port_specs=ports(
                ("d", 4, "in"), ("load", 1, "in"), ("count", 4, "out")
            ),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "if (load) count <= d;\n"
                "else count <= count + 4'd1;",
                reset_body="count <= 4'd0;",
            ),
            vh_decls=_vh_unsigned_counter_decls(4),
            vh_body=(
                vh_clocked_process(
                    "if load = '1' then\n"
                    "cnt <= unsigned(d);\n"
                    "else\n"
                    "cnt <= cnt + 1;\n"
                    "end if;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                i["d"] if i["load"] else (s + 1) & 0xF,
                {"count": i["d"] if i["load"] else (s + 1) & 0xF},
            ),
            v_functional=[
                functional(
                    "load inverts the data",
                    "if (load) count <= d;",
                    "if (load) count <= ~d;",
                ),
            ],
            vh_functional=[
                functional(
                    "load inverts the data",
                    "cnt <= unsigned(d);",
                    "cnt <= unsigned(not d);",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="ring4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit ring counter: reset loads 0001; on each "
                "enabled rising edge the single hot bit rotates left "
                "(0001 -> 0010 -> 0100 -> 1000 -> 0001)."
            ),
            port_specs=ports(("en", 1, "in"), ("q", 4, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) q <= {q[2:0], q[3]};",
                reset_body="q <= 4'b0001;",
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\nq <= q(2 downto 0) & q(3);\nend if;",
                reset_body="q <= \"0001\";",
            ),
            reset=lambda: 1,
            step=lambda s, i: (
                (((s << 1) | (s >> 3)) & 0xF) if i["en"] else s,
                {"q": (((s << 1) | (s >> 3)) & 0xF) if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "rotates right instead",
                    "{q[2:0], q[3]}",
                    "{q[0], q[3:1]}",
                ),
            ],
            vh_functional=[
                functional(
                    "rotates right instead",
                    "q(2 downto 0) & q(3)",
                    "q(0) & q(3 downto 1)",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="johnson4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit Johnson (twisted-ring) counter: reset "
                "clears it; on each enabled rising edge it shifts left and "
                "feeds the complement of the MSB into the LSB."
            ),
            port_specs=ports(("en", 1, "in"), ("q", 4, "out")),
            v_reg_outputs={"q"},
            v_body=v_clocked_always(
                "if (en) q <= {q[2:0], ~q[3]};",
                reset_body="q <= 4'b0000;",
            ),
            vh_body=vh_clocked_process(
                "if en = '1' then\nq <= q(2 downto 0) & (not q(3));\nend if;",
                reset_body="q <= \"0000\";",
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (((s << 1) & 0xE) | ((s >> 3) ^ 1)) if i["en"] else s,
                {"q": (((s << 1) & 0xE) | ((s >> 3) ^ 1)) if i["en"] else s},
            ),
            v_functional=[
                functional(
                    "plain ring (no complement)",
                    "{q[2:0], ~q[3]}",
                    "{q[2:0], q[3]}",
                ),
            ],
            vh_functional=[
                functional(
                    "plain ring (no complement)",
                    "q(2 downto 0) & (not q(3))",
                    "q(2 downto 0) & q(3)",
                ),
            ],
        )
    )
    problems.append(
        seq_problem(
            pid="satcounter3",
            family=FAMILY,
            prompt=(
                "Implement a 3-bit saturating counter: on enabled rising "
                "edges it increments when up is 1 (stopping at 7) and "
                "decrements when up is 0 (stopping at 0); rst clears it."
            ),
            port_specs=ports(
                ("en", 1, "in"), ("up", 1, "in"), ("count", 3, "out")
            ),
            v_reg_outputs={"count"},
            v_body=v_clocked_always(
                "if (en) begin\n"
                "if (up && count != 3'd7) count <= count + 3'd1;\n"
                "else if (!up && count != 3'd0) count <= count - 3'd1;\n"
                "end",
                reset_body="count <= 3'd0;",
            ),
            vh_decls="    signal cnt : unsigned(2 downto 0);",
            vh_body=(
                vh_clocked_process(
                    "if en = '1' then\n"
                    "if up = '1' and cnt /= 7 then\n"
                    "cnt <= cnt + 1;\n"
                    "elsif up = '0' and cnt /= 0 then\n"
                    "cnt <= cnt - 1;\n"
                    "end if;\n"
                    "end if;",
                    reset_body="cnt <= (others => '0');",
                )
                + "\n    count <= std_logic_vector(cnt);"
            ),
            reset=lambda: 0,
            step=lambda s, i: (
                (min(s + 1, 7) if i["up"] else max(s - 1, 0)) if i["en"] else s,
                {"count": (min(s + 1, 7) if i["up"] else max(s - 1, 0))
                 if i["en"] else s},
            ),
            # drive the counter into saturation at both ends
            extra_cycles=(
                [{"en": 1, "up": 1}] * 10 + [{"en": 1, "up": 0}] * 10
            ),
            v_functional=[
                functional(
                    "wraps at the top instead of saturating",
                    "if (up && count != 3'd7) count <= count + 3'd1;",
                    "if (up) count <= count + 3'd1;",
                ),
            ],
            vh_functional=[
                functional(
                    "wraps at the top instead of saturating",
                    "if up = '1' and cnt /= 7 then",
                    "if up = '1' then",
                ),
            ],
        )
    )
    return problems
