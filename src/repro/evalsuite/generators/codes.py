"""Family: code converters (Gray, BCD, parity framing)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "codes"


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="bin2gray4",
            family=FAMILY,
            prompt=(
                "Convert a 4-bit binary input to Gray code: "
                "g = b XOR (b >> 1)."
            ),
            port_specs=ports(("b", 4, "in"), ("g", 4, "out")),
            v_body="    assign g = b ^ (b >> 1);",
            vh_body=(
                "    g <= b xor ('0' & b(3 downto 1));"
            ),
            fn=lambda i: {"g": i["b"] ^ (i["b"] >> 1)},
            v_functional=[
                functional("shift amount wrong", "(b >> 1)", "(b >> 2)"),
            ],
            vh_functional=[
                functional(
                    "shift amount wrong",
                    "('0' & b(3 downto 1))",
                    '("00" & b(3 downto 2))',
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="gray2bin4",
            family=FAMILY,
            prompt=(
                "Convert a 4-bit Gray-code input to binary: b[3] = g[3], "
                "and b[i] = b[i+1] XOR g[i] for the remaining bits."
            ),
            port_specs=ports(("g", 4, "in"), ("b", 4, "out")),
            v_body=(
                "    assign b[3] = g[3];\n"
                "    assign b[2] = g[3] ^ g[2];\n"
                "    assign b[1] = g[3] ^ g[2] ^ g[1];\n"
                "    assign b[0] = g[3] ^ g[2] ^ g[1] ^ g[0];"
            ),
            vh_body=(
                "    b(3) <= g(3);\n"
                "    b(2) <= g(3) xor g(2);\n"
                "    b(1) <= g(3) xor g(2) xor g(1);\n"
                "    b(0) <= g(3) xor g(2) xor g(1) xor g(0);"
            ),
            fn=lambda i: {
                "b": (lambda g: (
                    (g >> 3 & 1) << 3
                    | ((g >> 3 ^ g >> 2) & 1) << 2
                    | ((g >> 3 ^ g >> 2 ^ g >> 1) & 1) << 1
                    | ((g >> 3 ^ g >> 2 ^ g >> 1 ^ g) & 1)
                ))(i["g"])
            },
            v_functional=[
                functional(
                    "bit 1 chain drops g[2]",
                    "assign b[1] = g[3] ^ g[2] ^ g[1];",
                    "assign b[1] = g[3] ^ g[1];",
                ),
            ],
            vh_functional=[
                functional(
                    "bit 1 chain drops g(2)",
                    "b(1) <= g(3) xor g(2) xor g(1);",
                    "b(1) <= g(3) xor g(1);",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="bcd_valid",
            family=FAMILY,
            prompt=(
                "Check whether a 4-bit input is a valid BCD digit: y = 1 "
                "when d <= 9, else 0."
            ),
            port_specs=ports(("d", 4, "in"), ("y", 1, "out")),
            v_body="    assign y = (d <= 4'd9);",
            vh_body="    y <= '1' when unsigned(d) <= 9 else '0';",
            fn=lambda i: {"y": 1 if i["d"] <= 9 else 0},
            v_functional=[
                functional("strict comparison excludes 9", "(d <= 4'd9)", "(d < 4'd9)"),
            ],
            vh_functional=[
                functional(
                    "strict comparison excludes 9",
                    "unsigned(d) <= 9",
                    "unsigned(d) < 9",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="bcd_incr",
            family=FAMILY,
            prompt=(
                "Increment a BCD digit: y = d + 1 for d in 0..8, and y = 0 "
                "when d = 9 (inputs above 9 also wrap to 0)."
            ),
            port_specs=ports(("d", 4, "in"), ("y", 4, "out")),
            v_body=(
                "    assign y = (d >= 4'd9) ? 4'd0 : (d + 4'd1);"
            ),
            vh_body=(
                '    y <= "0000" when unsigned(d) >= 9'
                " else std_logic_vector(unsigned(d) + 1);"
            ),
            fn=lambda i: {"y": 0 if i["d"] >= 9 else i["d"] + 1},
            v_functional=[
                functional(
                    "wraps at 10 instead of 9",
                    "(d >= 4'd9)",
                    "(d >= 4'd10)",
                ),
            ],
            vh_functional=[
                functional(
                    "wraps at 10 instead of 9",
                    "unsigned(d) >= 9",
                    "unsigned(d) >= 10",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="onehot2bin4",
            family=FAMILY,
            prompt=(
                "Convert a 4-bit one-hot input to its 2-bit binary index "
                "(inputs are guaranteed one-hot; for other inputs, OR the "
                "indices of all set bits)."
            ),
            port_specs=ports(("d", 4, "in"), ("y", 2, "out")),
            v_body=(
                "    assign y[1] = d[2] | d[3];\n"
                "    assign y[0] = d[1] | d[3];"
            ),
            vh_body=(
                "    y(1) <= d(2) or d(3);\n"
                "    y(0) <= d(1) or d(3);"
            ),
            fn=lambda i: {
                "y": (2 if (i["d"] & 0b1100) else 0)
                | (1 if (i["d"] & 0b1010) else 0)
            },
            v_functional=[
                functional(
                    "low index bit watches the wrong lane",
                    "y[0] = d[1] | d[3]",
                    "y[0] = d[2] | d[3]",
                ),
            ],
            vh_functional=[
                functional(
                    "low index bit watches the wrong lane",
                    "y(0) <= d(1) or d(3);",
                    "y(0) <= d(2) or d(3);",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="bin2gray5",
            family=FAMILY,
            prompt=(
                "Convert a 5-bit binary input to Gray code: "
                "g = b XOR (b >> 1)."
            ),
            port_specs=ports(("b", 5, "in"), ("g", 5, "out")),
            v_body="    assign g = b ^ (b >> 1);",
            vh_body="    g <= b xor ('0' & b(4 downto 1));",
            fn=lambda i: {"g": i["b"] ^ (i["b"] >> 1)},
            v_functional=[
                functional(
                    "shifts left in the mix",
                    "b ^ (b >> 1)",
                    "b ^ (b << 1)",
                ),
            ],
            vh_functional=[
                functional(
                    "shifts left in the mix",
                    "b xor ('0' & b(4 downto 1))",
                    "b xor (b(3 downto 0) & '0')",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="parity_frame",
            family=FAMILY,
            prompt=(
                "Append an even-parity bit to a 7-bit payload: y[7:1] = d "
                "and y[0] = XOR of all payload bits, so y always has even "
                "parity."
            ),
            port_specs=ports(("d", 7, "in"), ("y", 8, "out")),
            v_body="    assign y = {d, ^d};",
            vh_body=(
                "    y <= d & (d(6) xor d(5) xor d(4) xor d(3) xor d(2)"
                " xor d(1) xor d(0));"
            ),
            fn=lambda i: {
                "y": (i["d"] << 1) | (bin(i["d"]).count("1") & 1)
            },
            v_functional=[
                functional("odd parity emitted", "{d, ^d}", "{d, ~^d}"),
            ],
            vh_functional=[
                functional(
                    "payload bit 0 left out of the parity",
                    " xor d(0));",
                    ");",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="parity_check",
            family=FAMILY,
            prompt=(
                "Check an 8-bit even-parity frame: error = 1 when the XOR "
                "of all eight bits of f is 1 (odd number of set bits)."
            ),
            port_specs=ports(("f", 8, "in"), ("error", 1, "out")),
            v_body="    assign error = ^f;",
            vh_body=(
                "    error <= f(7) xor f(6) xor f(5) xor f(4) xor f(3)"
                " xor f(2) xor f(1) xor f(0);"
            ),
            fn=lambda i: {"error": bin(i["f"]).count("1") & 1},
            v_functional=[
                functional("polarity inverted", "assign error = ^f;",
                           "assign error = ~^f;"),
            ],
            vh_functional=[
                functional(
                    "frame bit 0 left out",
                    " xor f(0);",
                    ";",
                ),
            ],
        )
    )
    return problems
