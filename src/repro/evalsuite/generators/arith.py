"""Family: combinational arithmetic (adders, comparators, ALU, multiplier)."""

from __future__ import annotations

from repro.designs.mutations import functional
from repro.evalsuite.generators.common import comb_problem, ports

FAMILY = "arith"


def generate():
    problems = []
    problems.append(
        comb_problem(
            pid="half_adder",
            family=FAMILY,
            prompt=(
                "Implement a half adder: sum = a XOR b and carry = a AND b."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"),
                ("sum", 1, "out"), ("carry", 1, "out"),
            ),
            v_body=(
                "    assign sum = a ^ b;\n"
                "    assign carry = a & b;"
            ),
            vh_body=(
                "    sum <= a xor b;\n"
                "    carry <= a and b;"
            ),
            fn=lambda i: {"sum": i["a"] ^ i["b"], "carry": i["a"] & i["b"]},
            v_functional=[
                functional("sum uses OR", "sum = a ^ b", "sum = a | b"),
                functional("carry uses OR", "carry = a & b", "carry = a | b"),
            ],
            vh_functional=[
                functional("sum uses OR", "sum <= a xor b", "sum <= a or b"),
                functional("carry uses OR", "carry <= a and b", "carry <= a or b"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="full_adder",
            family=FAMILY,
            prompt=(
                "Implement a full adder: sum = a XOR b XOR cin; "
                "cout = majority(a, b, cin)."
            ),
            port_specs=ports(
                ("a", 1, "in"), ("b", 1, "in"), ("cin", 1, "in"),
                ("sum", 1, "out"), ("cout", 1, "out"),
            ),
            v_body=(
                "    assign sum = a ^ b ^ cin;\n"
                "    assign cout = (a & b) | (a & cin) | (b & cin);"
            ),
            vh_body=(
                "    sum <= a xor b xor cin;\n"
                "    cout <= (a and b) or (a and cin) or (b and cin);"
            ),
            fn=lambda i: {
                "sum": (i["a"] + i["b"] + i["cin"]) & 1,
                "cout": (i["a"] + i["b"] + i["cin"]) >> 1,
            },
            v_functional=[
                functional(
                    "carry-in ignored in sum", "a ^ b ^ cin;", "a ^ b;"
                ),
                functional(
                    "cout missing the b&cin term",
                    "(a & b) | (a & cin) | (b & cin)",
                    "(a & b) | (a & cin)",
                ),
            ],
            vh_functional=[
                functional(
                    "carry-in ignored in sum",
                    "a xor b xor cin;",
                    "a xor b;",
                ),
                functional(
                    "cout missing the b&cin term",
                    "(a and b) or (a and cin) or (b and cin)",
                    "(a and b) or (a and cin)",
                ),
            ],
        )
    )
    for width in (4, 8):
        problems.append(
            comb_problem(
                pid=f"adder{width}",
                family=FAMILY,
                prompt=(
                    f"Implement a {width}-bit unsigned adder with carry out: "
                    "{cout, sum} = a + b."
                ),
                port_specs=ports(
                    ("a", width, "in"), ("b", width, "in"),
                    ("sum", width, "out"), ("cout", 1, "out"),
                ),
                v_body="    assign {cout, sum} = a + b;",
                vh_decls=(
                    f"    signal tmp : unsigned({width} downto 0);"
                ),
                vh_body=(
                    f"    tmp <= resize(unsigned(a), {width + 1})"
                    f" + resize(unsigned(b), {width + 1});\n"
                    f"    sum <= std_logic_vector(tmp({width - 1} downto 0));\n"
                    f"    cout <= tmp({width});"
                ),
                fn=lambda i, w=width: {
                    "sum": (i["a"] + i["b"]) & ((1 << w) - 1),
                    "cout": (i["a"] + i["b"]) >> w,
                },
                v_functional=[
                    functional(
                        "subtracts instead of adding",
                        "a + b;",
                        "a - b;",
                    ),
                    functional(
                        "carry out dropped (stuck at 0)",
                        "{cout, sum} = a + b",
                        "{cout, sum} = {1'b0, a + b}",
                    ),
                ],
                vh_functional=[
                    functional(
                        "subtracts instead of adding",
                        f" + resize(unsigned(b), {width + 1});",
                        f" - resize(unsigned(b), {width + 1});",
                    ),
                ],
            )
        )
    problems.append(
        comb_problem(
            pid="adder4_cin",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit unsigned adder with carry in and carry "
                "out: {cout, sum} = a + b + cin."
            ),
            port_specs=ports(
                ("a", 4, "in"), ("b", 4, "in"), ("cin", 1, "in"),
                ("sum", 4, "out"), ("cout", 1, "out"),
            ),
            v_body="    assign {cout, sum} = a + b + cin;",
            vh_decls="    signal tmp : unsigned(4 downto 0);",
            vh_body=(
                "    tmp <= resize(unsigned(a), 5) + resize(unsigned(b), 5)"
                " + resize(unsigned(cin), 5);\n"
                "    sum <= std_logic_vector(tmp(3 downto 0));\n"
                "    cout <= tmp(4);"
            ),
            fn=lambda i: {
                "sum": (i["a"] + i["b"] + i["cin"]) & 0xF,
                "cout": (i["a"] + i["b"] + i["cin"]) >> 4,
            },
            v_functional=[
                functional("carry in ignored", " + cin;", ";"),
            ],
            vh_functional=[
                functional(
                    "carry in ignored",
                    " + resize(unsigned(cin), 5);",
                    ";",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="subtractor4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit subtractor: diff = a - b (wrap on "
                "underflow) and borrow = 1 when b > a."
            ),
            port_specs=ports(
                ("a", 4, "in"), ("b", 4, "in"),
                ("diff", 4, "out"), ("borrow", 1, "out"),
            ),
            v_body=(
                "    assign diff = a - b;\n"
                "    assign borrow = (b > a);"
            ),
            vh_decls="",
            vh_body=(
                "    diff <= std_logic_vector(unsigned(a) - unsigned(b));\n"
                "    borrow <= '1' when unsigned(b) > unsigned(a) else '0';"
            ),
            fn=lambda i: {
                "diff": (i["a"] - i["b"]) & 0xF,
                "borrow": 1 if i["b"] > i["a"] else 0,
            },
            v_functional=[
                functional("operands swapped", "diff = a - b", "diff = b - a"),
                functional("borrow comparison inverted", "(b > a)", "(b < a)"),
            ],
            vh_functional=[
                functional(
                    "operands swapped",
                    "unsigned(a) - unsigned(b)",
                    "unsigned(b) - unsigned(a)",
                ),
                functional(
                    "borrow comparison inverted",
                    "unsigned(b) > unsigned(a)",
                    "unsigned(b) < unsigned(a)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="addsub8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit adder/subtractor: when mode is 0, "
                "y = a + b; when mode is 1, y = a - b (results wrap)."
            ),
            port_specs=ports(
                ("a", 8, "in"), ("b", 8, "in"), ("mode", 1, "in"),
                ("y", 8, "out"),
            ),
            v_body="    assign y = mode ? (a - b) : (a + b);",
            vh_body=(
                "    y <= std_logic_vector(unsigned(a) - unsigned(b)) "
                "when mode = '1'\n"
                "         else std_logic_vector(unsigned(a) + unsigned(b));"
            ),
            fn=lambda i: {
                "y": ((i["a"] - i["b"]) if i["mode"] else (i["a"] + i["b"])) & 0xFF
            },
            v_functional=[
                functional(
                    "mode polarity inverted",
                    "mode ? (a - b) : (a + b)",
                    "mode ? (a + b) : (a - b)",
                ),
            ],
            vh_functional=[
                functional(
                    "mode polarity inverted",
                    "when mode = '1'",
                    "when mode = '0'",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="incrementer4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit incrementer: y = a + 1, wrapping from 15 "
                "back to 0."
            ),
            port_specs=ports(("a", 4, "in"), ("y", 4, "out")),
            v_body="    assign y = a + 4'd1;",
            vh_body="    y <= std_logic_vector(unsigned(a) + 1);",
            fn=lambda i: {"y": (i["a"] + 1) & 0xF},
            v_functional=[
                functional("adds two", "a + 4'd1", "a + 4'd2"),
            ],
            vh_functional=[
                functional("adds two", "unsigned(a) + 1", "unsigned(a) + 2"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="incrementer8",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit incrementer: y = a + 1, wrapping from "
                "255 back to 0."
            ),
            port_specs=ports(("a", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = a + 8'd1;",
            vh_body="    y <= std_logic_vector(unsigned(a) + 1);",
            fn=lambda i: {"y": (i["a"] + 1) & 0xFF},
            v_functional=[
                functional("decrements instead", "a + 8'd1", "a - 8'd1"),
            ],
            vh_functional=[
                functional(
                    "decrements instead", "unsigned(a) + 1", "unsigned(a) - 1"
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="decrementer4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit decrementer: y = a - 1, wrapping from 0 "
                "back to 15."
            ),
            port_specs=ports(("a", 4, "in"), ("y", 4, "out")),
            v_body="    assign y = a - 4'd1;",
            vh_body="    y <= std_logic_vector(unsigned(a) - 1);",
            fn=lambda i: {"y": (i["a"] - 1) & 0xF},
            v_functional=[
                functional("increments instead", "a - 4'd1", "a + 4'd1"),
            ],
            vh_functional=[
                functional(
                    "increments instead", "unsigned(a) - 1", "unsigned(a) + 1"
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="comparator8_eq",
            family=FAMILY,
            prompt=(
                "Implement an 8-bit equality comparator: eq is 1 exactly "
                "when a equals b."
            ),
            port_specs=ports(("a", 8, "in"), ("b", 8, "in"), ("eq", 1, "out")),
            v_body="    assign eq = (a == b);",
            vh_body="    eq <= '1' when a = b else '0';",
            fn=lambda i: {"eq": 1 if i["a"] == i["b"] else 0},
            v_functional=[
                functional(
                    "compares only the low nibbles",
                    "(a == b)",
                    "(a[3:0] == b[3:0])",
                ),
            ],
            vh_functional=[
                functional(
                    "compares only the low nibbles",
                    "when a = b",
                    "when a(3 downto 0) = b(3 downto 0)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="comparator4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit unsigned comparator with three outputs: "
                "eq (a = b), lt (a < b), gt (a > b)."
            ),
            port_specs=ports(
                ("a", 4, "in"), ("b", 4, "in"),
                ("eq", 1, "out"), ("lt", 1, "out"), ("gt", 1, "out"),
            ),
            v_body=(
                "    assign eq = (a == b);\n"
                "    assign lt = (a < b);\n"
                "    assign gt = (a > b);"
            ),
            vh_body=(
                "    eq <= '1' when a = b else '0';\n"
                "    lt <= '1' when unsigned(a) < unsigned(b) else '0';\n"
                "    gt <= '1' when unsigned(a) > unsigned(b) else '0';"
            ),
            fn=lambda i: {
                "eq": 1 if i["a"] == i["b"] else 0,
                "lt": 1 if i["a"] < i["b"] else 0,
                "gt": 1 if i["a"] > i["b"] else 0,
            },
            v_functional=[
                functional("lt and gt swapped",
                           "assign lt = (a < b);\n    assign gt = (a > b);",
                           "assign lt = (a > b);\n    assign gt = (a < b);"),
                functional("eq is not-equal", "(a == b)", "(a != b)"),
            ],
            vh_functional=[
                functional(
                    "lt and gt swapped",
                    "lt <= '1' when unsigned(a) < unsigned(b) else '0';\n"
                    "    gt <= '1' when unsigned(a) > unsigned(b) else '0';",
                    "lt <= '1' when unsigned(a) > unsigned(b) else '0';\n"
                    "    gt <= '1' when unsigned(a) < unsigned(b) else '0';",
                ),
                functional("eq is not-equal", "when a = b", "when a /= b"),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="min2",
            family=FAMILY,
            prompt=(
                "Output the minimum of two 8-bit unsigned inputs: "
                "y = min(a, b)."
            ),
            port_specs=ports(("a", 8, "in"), ("b", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = (a < b) ? a : b;",
            vh_body="    y <= a when unsigned(a) < unsigned(b) else b;",
            fn=lambda i: {"y": min(i["a"], i["b"])},
            v_functional=[
                functional("computes the maximum", "(a < b) ? a : b",
                           "(a < b) ? b : a"),
            ],
            vh_functional=[
                functional(
                    "computes the maximum",
                    "a when unsigned(a) < unsigned(b) else b",
                    "b when unsigned(a) < unsigned(b) else a",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="max2",
            family=FAMILY,
            prompt=(
                "Output the maximum of two 8-bit unsigned inputs: "
                "y = max(a, b)."
            ),
            port_specs=ports(("a", 8, "in"), ("b", 8, "in"), ("y", 8, "out")),
            v_body="    assign y = (a > b) ? a : b;",
            vh_body="    y <= a when unsigned(a) > unsigned(b) else b;",
            fn=lambda i: {"y": max(i["a"], i["b"])},
            v_functional=[
                functional("computes the minimum", "(a > b) ? a : b",
                           "(a > b) ? b : a"),
            ],
            vh_functional=[
                functional(
                    "computes the minimum",
                    "a when unsigned(a) > unsigned(b) else b",
                    "b when unsigned(a) > unsigned(b) else a",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="abs4",
            family=FAMILY,
            prompt=(
                "Compute the absolute value of a 4-bit two's-complement "
                "input: y = |a| (y = a when a >= 0, else y = -a; note "
                "|-8| wraps to 8 = 4'b1000)."
            ),
            port_specs=ports(("a", 4, "in"), ("y", 4, "out")),
            v_body="    assign y = a[3] ? (4'd0 - a) : a;",
            vh_body=(
                "    y <= std_logic_vector(0 - unsigned(a)) when a(3) = '1'"
                " else a;"
            ),
            fn=lambda i: {
                "y": i["a"] if i["a"] < 8 else (16 - i["a"]) & 0xF
            },
            v_functional=[
                functional(
                    "sign test on the wrong bit",
                    "a[3] ? (4'd0 - a) : a",
                    "a[0] ? (4'd0 - a) : a",
                ),
            ],
            vh_functional=[
                functional(
                    "sign test on the wrong bit",
                    "when a(3) = '1'",
                    "when a(0) = '1'",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="alu4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit ALU with a 2-bit op select: op 00 -> "
                "y = a + b, op 01 -> y = a - b, op 10 -> y = a AND b, "
                "op 11 -> y = a OR b (arithmetic wraps)."
            ),
            port_specs=ports(
                ("a", 4, "in"), ("b", 4, "in"), ("op", 2, "in"), ("y", 4, "out")
            ),
            v_body=(
                "    reg [3:0] y_r;\n"
                "    always @(*) begin\n"
                "        case (op)\n"
                "            2'b00: y_r = a + b;\n"
                "            2'b01: y_r = a - b;\n"
                "            2'b10: y_r = a & b;\n"
                "            default: y_r = a | b;\n"
                "        endcase\n"
                "    end\n"
                "    assign y = y_r;"
            ),
            vh_body=(
                "    process(a, b, op)\n"
                "    begin\n"
                "        case op is\n"
                '            when "00" =>\n'
                "                y <= std_logic_vector(unsigned(a) + unsigned(b));\n"
                '            when "01" =>\n'
                "                y <= std_logic_vector(unsigned(a) - unsigned(b));\n"
                '            when "10" =>\n'
                "                y <= a and b;\n"
                "            when others =>\n"
                "                y <= a or b;\n"
                "        end case;\n"
                "    end process;"
            ),
            fn=lambda i: {
                "y": [
                    (i["a"] + i["b"]) & 0xF,
                    (i["a"] - i["b"]) & 0xF,
                    i["a"] & i["b"],
                    i["a"] | i["b"],
                ][i["op"]]
            },
            v_functional=[
                functional(
                    "AND op computes XOR",
                    "2'b10: y_r = a & b;",
                    "2'b10: y_r = a ^ b;",
                ),
                functional(
                    "add and subtract swapped",
                    "2'b00: y_r = a + b;\n            2'b01: y_r = a - b;",
                    "2'b00: y_r = a - b;\n            2'b01: y_r = a + b;",
                ),
            ],
            vh_functional=[
                functional(
                    "AND op computes XOR",
                    "y <= a and b;",
                    "y <= a xor b;",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="mult4",
            family=FAMILY,
            prompt=(
                "Implement a 4x4 unsigned multiplier: p = a * b "
                "(p is 8 bits)."
            ),
            port_specs=ports(("a", 4, "in"), ("b", 4, "in"), ("p", 8, "out")),
            v_body="    assign p = a * b;",
            vh_body="    p <= std_logic_vector(unsigned(a) * unsigned(b));",
            fn=lambda i: {"p": i["a"] * i["b"]},
            v_functional=[
                functional("adds instead of multiplying", "a * b", "a + b"),
            ],
            vh_functional=[
                functional(
                    "adds instead of multiplying",
                    "unsigned(a) * unsigned(b)",
                    "unsigned(a) + unsigned(b)",
                ),
            ],
        )
    )
    problems.append(
        comb_problem(
            pid="satadd4",
            family=FAMILY,
            prompt=(
                "Implement a 4-bit saturating unsigned adder: y = a + b, "
                "but clamp the result at 15 instead of wrapping."
            ),
            port_specs=ports(("a", 4, "in"), ("b", 4, "in"), ("y", 4, "out")),
            v_body=(
                "    wire [4:0] raw;\n"
                "    assign raw = a + b;\n"
                "    assign y = raw[4] ? 4'b1111 : raw[3:0];"
            ),
            vh_decls="    signal raw : unsigned(4 downto 0);",
            vh_body=(
                "    raw <= resize(unsigned(a), 5) + resize(unsigned(b), 5);\n"
                '    y <= "1111" when raw(4) = \'1\''
                " else std_logic_vector(raw(3 downto 0));"
            ),
            fn=lambda i: {"y": min(i["a"] + i["b"], 15)},
            v_functional=[
                functional(
                    "wraps instead of saturating",
                    "raw[4] ? 4'b1111 : raw[3:0]",
                    "raw[3:0]",
                ),
            ],
            vh_functional=[
                functional(
                    "saturates to 0 instead of 15",
                    '"1111" when raw(4)',
                    '"0000" when raw(4)',
                ),
            ],
        )
    )
    return problems
