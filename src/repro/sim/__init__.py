"""Event-driven HDL simulation kernel shared by the Verilog and VHDL flows.

The kernel follows the classic stratified-event-queue model: within one
simulation time step, active events run first, then nonblocking-assignment
(NBA) updates, then the clock advances to the next scheduled time. Both
language elaborators lower their ASTs onto the same runtime primitives
(:class:`~repro.sim.runtime.Signal`, :class:`~repro.sim.runtime.Process`), so
one kernel simulates both languages — the mixed-language capability the paper
gets from Vivado.
"""

from repro.sim.values import Logic, X, logic
from repro.sim.kernel import Simulator, SimulationError, SimulationFinished
from repro.sim.runtime import Signal, Process, Design

__all__ = [
    "Logic",
    "X",
    "logic",
    "Simulator",
    "SimulationError",
    "SimulationFinished",
    "Signal",
    "Process",
    "Design",
]
