"""Elaboration: Verilog AST → simulation-ready :class:`~repro.sim.runtime.Design`.

The elaborator instantiates the module hierarchy (flattening instance names
with a ``dot`` separator), sizes every signal from its declared range under
the active parameter environment, and compiles procedural code into generator
based interpreter processes for the shared kernel:

* ``assign`` → a process that re-evaluates on any change of its read set;
* ``always @(...)`` → wait-then-execute loop (``@(*)`` runs once at time 0 so
  purely constant logic still settles);
* ``initial`` → run-once process;
* instantiations → child design merged in, with port-connection processes.

Elaboration-time problems (bad widths, non-constant bounds, unsupported
targets) are emitted as diagnostics, never exceptions: the toolchain reports
them in the compile log like any other error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hdl.diagnostics import DiagnosticCollector
from repro.hdl.source import SourceFile
from repro.sim.kernel import Delay, Finish, Simulator, WaitChange
from repro.sim.runtime import Design, Edge, Process, Sensitivity, Signal
from repro.sim.values import Logic
from repro.verilog import ast

_CODE_ELAB = "VRFC 10-3370"

#: hierarchy separator in flattened signal names
SEP = "."


from repro.sim.kernel import SimulationError


class _ElabAbort(SimulationError):
    """Elaboration/evaluation of the current item failed (diagnostic emitted).

    Subclasses :class:`SimulationError` so aborts raised while *executing*
    defective generated code terminate the simulation with a reportable
    error instead of crashing the kernel.
    """


@dataclass
class _Scope:
    """One elaborated module instance: its signals and parameter bindings."""

    module: ast.Module
    prefix: str
    signals: dict[str, Signal] = field(default_factory=dict)
    params: dict[str, Logic] = field(default_factory=dict)

    def resolve(self, name: str) -> Signal | Logic | None:
        if name in self.params:
            return self.params[name]
        return self.signals.get(name)


class _Lcg:
    """Deterministic 32-bit LCG backing ``$random`` (reproducible runs)."""

    def __init__(self, seed: int = 0xACE1):
        self.state = seed & 0xFFFFFFFF

    def next(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state


class VerilogElaborator:
    """Builds a :class:`Design` for one top module of an analyzed unit."""

    MAX_DEPTH = 64
    LOOP_LIMIT = 1_000_000

    def __init__(
        self,
        modules: dict[str, ast.Module],
        source: SourceFile,
        collector: DiagnosticCollector,
    ):
        self.modules = modules
        self.source = source
        self.collector = collector
        self.design = Design()
        self.rng = _Lcg()
        self._instance_stack: list[str] = []
        #: cone-eligible processes nominated for the levelized tier, plus the
        #: signals written by everything else (the sole-driver fence)
        self._cone_members: list = []
        self._external_writes: set[Signal] = set()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def elaborate(self, top: str) -> Design | None:
        module = self.modules.get(top)
        if module is None:
            self.collector.error(
                _CODE_ELAB, f"top module '{top}' not found", source=self.source
            )
            return None
        self.design.name = top
        try:
            self._elaborate_module(module, prefix="", param_overrides={})
        except _ElabAbort:
            return None
        if self.collector.has_errors:
            return None
        self._install_cones()
        return self.design

    # ------------------------------------------------------------------
    # module instantiation
    # ------------------------------------------------------------------

    def _elaborate_module(
        self,
        module: ast.Module,
        prefix: str,
        param_overrides: dict[str, Logic],
    ) -> _Scope:
        if len(self._instance_stack) >= self.MAX_DEPTH:
            self._error(module.span, "instantiation depth limit exceeded (recursion?)")
            raise _ElabAbort
        self._instance_stack.append(module.name)
        try:
            scope = _Scope(module=module, prefix=prefix)
            self._bind_parameters(scope, param_overrides)
            self._declare_signals(scope)
            for item in module.items:
                self._elaborate_item(item, scope)
            return scope
        finally:
            self._instance_stack.pop()

    def _bind_parameters(self, scope: _Scope, overrides: dict[str, Logic]) -> None:
        for item in scope.module.items:
            if isinstance(item, ast.ParamDecl):
                if not item.local and item.name in overrides:
                    scope.params[item.name] = overrides[item.name]
                else:
                    scope.params[item.name] = self._const_eval(item.value, scope)
        unknown = set(overrides) - set(scope.params)
        for name in unknown:
            self._error(
                scope.module.span,
                f"module '{scope.module.name}' has no parameter '{name}'",
            )

    def _declare_signals(self, scope: _Scope) -> None:
        declared: dict[str, ast.Node] = {}

        def add(name: str, width: int, node: ast.Node, init: Logic | None = None):
            if name in declared:
                return  # duplicate reported by the analyzer
            declared[name] = node
            signal = Signal(scope.prefix + name, width, init)
            self.design.add_signal(signal)
            scope.signals[name] = signal

        # body declarations first: non-ANSI port ranges/reg-ness live there
        body_ports = {
            item.name: item
            for item in scope.module.items
            if isinstance(item, ast.PortDecl)
        }
        for port in scope.module.ports:
            decl = body_ports.get(port.name, port)
            dims = decl.dims if decl.dims is not None else port.dims
            add(port.name, self._range_width(dims, scope), decl)
        for item in scope.module.items:
            if isinstance(item, ast.NetDecl):
                width = 32 if item.kind == "integer" else self._range_width(
                    item.dims, scope
                )
                init = None
                if item.init is not None and item.kind in ("reg", "integer"):
                    init = self._const_eval(item.init, scope)
                add(item.name, width, item, init)

    #: sanity cap on declared vector widths; beyond this it is certainly a
    #: defect (and unguarded it lets broken code exhaust host memory)
    MAX_SIGNAL_WIDTH = 1 << 16

    def _range_width(self, dims: ast.Range | None, scope: _Scope) -> int:
        if dims is None:
            return 1
        msb = self._const_eval(dims.msb, scope)
        lsb = self._const_eval(dims.lsb, scope)
        try:
            width = msb.to_int() - lsb.to_int() + 1
        except ValueError:
            self._error(dims.span, "range bounds contain unknown bits")
            raise _ElabAbort
        if width <= 0:
            self._error(
                dims.span,
                f"descending range required: [{msb.to_int()}:{lsb.to_int()}]",
            )
            raise _ElabAbort
        if width > self.MAX_SIGNAL_WIDTH:
            self._error(
                dims.span,
                f"vector width {width} exceeds the supported maximum "
                f"({self.MAX_SIGNAL_WIDTH})",
            )
            raise _ElabAbort
        return width

    def _const_eval(self, expr: ast.Expression, scope: _Scope) -> Logic:
        """Evaluate a constant expression (parameters and literals only)."""
        value = _eval(expr, scope, None, self)
        return value

    # ------------------------------------------------------------------
    # compiled tier
    # ------------------------------------------------------------------

    def _compiled(self, build):
        """Run a compile-tier builder under the fallback safety net.

        Returns the compiled process factory, or None when the interpreter
        must be used: the tier is disabled (``REPRO_SIM_INTERP``), the
        builder declined (returned None), raised, or emitted diagnostics
        (compilation must be silent — anything it would report, the
        interpreter reports at the same point it always did).
        """
        from repro.sim.compile import interpreter_forced

        if interpreter_forced():
            return None
        mark = len(self.collector.diagnostics)
        try:
            factory = build()
        except Exception:
            factory = None
        if len(self.collector.diagnostics) != mark:
            del self.collector.diagnostics[mark:]
            factory = None
        return factory

    # ------------------------------------------------------------------
    # levelized tier
    # ------------------------------------------------------------------

    def _install_cones(self) -> None:
        from repro.sim import compile as simcompile

        if not self._cone_members:
            return
        if simcompile.interpreter_forced() or simcompile.level_disabled():
            return
        from repro.sim.compile import level as _level

        try:
            _level.install_cones(
                self.design,
                self._cone_members,
                self._external_writes,
                twostate=not simcompile.twostate_disabled(),
            )
        except Exception:
            pass  # any surprise leaves the closure tier untouched

    def _note_external_lvalue(self, target: ast.LValue, scope: _Scope) -> None:
        """Record an lvalue written outside the cone tier (sole-driver fence)."""
        if isinstance(target, ast.Concat):
            for part in target.parts:
                self._note_external_lvalue(part, scope)
            return
        name = target.name if isinstance(target, ast.Identifier) else target.target
        resolved = scope.resolve(name)
        if isinstance(resolved, Signal):
            self._external_writes.add(resolved)

    # ------------------------------------------------------------------
    # items
    # ------------------------------------------------------------------

    def _elaborate_item(self, item: ast.ModuleItem, scope: _Scope) -> None:
        if isinstance(item, (ast.PortDecl, ast.ParamDecl)):
            return
        if isinstance(item, ast.NetDecl):
            if item.init is not None and item.kind == "wire":
                target = ast.Identifier(span=item.span, name=item.name)
                self._continuous_assign(target, item.init, scope)
            return
        if isinstance(item, ast.ContinuousAssign):
            self._continuous_assign(item.target, item.value, scope)
        elif isinstance(item, ast.AlwaysBlock):
            self._always_block(item, scope)
        elif isinstance(item, ast.InitialBlock):
            from repro.sim.compile import verilog as _cv

            factory = self._compiled(
                lambda: _cv.initial_factory(item.body, scope, self)
            )
            if factory is None:
                factory = lambda sim, body=item.body, sc=scope: _exec(
                    body, sc, sim, self
                )
            self.design.add_process(
                Process(f"{scope.prefix}initial@{_line(self, item)}", factory)
            )
            self._external_writes |= _written_signals(item.body, scope)
        elif isinstance(item, ast.Instantiation):
            self._instantiate(item, scope)
        else:
            self._error(item.span, f"unsupported module item {type(item).__name__}")

    def _continuous_assign(
        self, target: ast.LValue, value: ast.Expression, scope: _Scope
    ) -> None:
        read_signals = self._read_set(value, scope)
        read_signals |= self._lvalue_index_reads(target, scope)

        from repro.sim.compile import verilog as _cv

        factory = self._compiled(
            lambda: _cv.continuous_assign_factory(
                target, value, scope, self, read_signals
            )
        )
        if factory is None:

            def factory(sim, target=target, value=value, scope=scope,
                        reads=read_signals):
                def body():
                    width = _lvalue_width(target, scope, sim, self)
                    while True:
                        result = _eval(value, scope, sim, self, width)
                        _assign(target, result, scope, sim, self, blocking=True)
                        if not reads:
                            return
                        yield WaitChange.on(*reads)

                return body()

        name = f"{scope.prefix}assign@{_line(self, target)}"
        process = Process(name, factory)
        self.design.add_process(process)

        from repro.sim.compile import level as _level

        member = self._compiled(
            lambda: _level.verilog_assign_member(
                process, target, value, scope, self, read_signals
            )
        )
        if member is not None:
            self._cone_members.append(member)
        else:
            self._note_external_lvalue(target, scope)

    def _always_block(self, block: ast.AlwaysBlock, scope: _Scope) -> None:
        sens = block.sensitivity
        name = f"{scope.prefix}always@{_line(self, block)}"
        if sens is None:
            # `always #5 clk = ~clk;` style: the body itself must delay
            if not _contains_delay(block.body):
                self._error(
                    block.span,
                    "always block without sensitivity or delay would loop forever",
                )
                return

            from repro.sim.compile import verilog as _cv

            factory = self._compiled(
                lambda: _cv.free_always_factory(block.body, scope, self)
            )
            if factory is None:

                def factory(sim, body=block.body, sc=scope):
                    def run():
                        while True:
                            yield from _exec(body, sc, sim, self)

                    return run()

            self.design.add_process(Process(name, factory))
            self._external_writes |= _written_signals(block.body, scope)
            return

        if sens.star:
            reads = self._read_set_stmt(block.body, scope)
            entries = tuple(Sensitivity(s, Edge.ANY) for s in sorted(reads, key=lambda s: s.name))
        else:
            entries = []
            for item in sens.items:
                signal = self._sens_signal(item.signal, scope)
                if signal is None:
                    continue
                edge = {"pos": Edge.POS, "neg": Edge.NEG, "any": Edge.ANY}[item.edge]
                entries.append(Sensitivity(signal, edge))
            entries = tuple(entries)
        edge_triggered = any(e.edge is not Edge.ANY for e in entries)

        from repro.sim.compile import verilog as _cv

        factory = self._compiled(
            lambda: _cv.always_factory(
                block.body, scope, self, entries,
                initial_run=sens.star or not edge_triggered,
            )
        )
        if factory is None:

            def factory(sim, body=block.body, sc=scope, entries=entries,
                        star=sens.star, edge_triggered=edge_triggered):
                def run():
                    if star or not edge_triggered:
                        # settle combinational logic at time zero
                        yield from _exec(body, sc, sim, self)
                    while True:
                        if not entries:
                            return
                        yield WaitChange(entries)
                        yield from _exec(body, sc, sim, self)

                return run()

        process = Process(name, factory)
        self.design.add_process(process)

        writes = _written_signals(block.body, scope)
        raw_reads = self._read_set_stmt_raw(block.body, scope)
        member = None
        # cone-eligible only when every read is statically covered: @(*) by
        # construction, explicit lists only if all-ANY and ⊇ the read set
        covered = sens.star or (
            not edge_triggered
            and {e.signal for e in entries} >= (raw_reads - writes)
        )
        if covered and writes:
            from repro.sim.compile import level as _level

            member = self._compiled(
                lambda: _level.verilog_always_member(
                    process, block.body, scope, self, raw_reads, writes
                )
            )
        if member is not None:
            self._cone_members.append(member)
        else:
            self._external_writes |= writes
            if edge_triggered:
                from repro.sim.compile import level as _level

                update = self._compiled(
                    lambda: _level.verilog_sync_update(
                        process, entries, block.body, scope
                    )
                )
                if update is not None:
                    self.design.sync_updates.append(update)

    def _sens_signal(self, expr: ast.Expression, scope: _Scope) -> Signal | None:
        if isinstance(expr, ast.Identifier):
            resolved = scope.resolve(expr.name)
            if isinstance(resolved, Signal):
                return resolved
            self._error(expr.span, f"sensitivity item '{expr.name}' is not a signal")
            return None
        if isinstance(expr, (ast.BitSelect, ast.PartSelect)):
            resolved = scope.resolve(expr.target)
            if isinstance(resolved, Signal):
                return resolved
        self._error(expr.span, "unsupported sensitivity expression")
        return None

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------

    def _instantiate(self, inst: ast.Instantiation, scope: _Scope) -> None:
        child_module = self.modules.get(inst.module)
        if child_module is None:
            self._error(inst.span, f"unknown module '{inst.module}'")
            return
        overrides = self._parameter_overrides(inst, child_module, scope)
        child_prefix = f"{scope.prefix}{inst.instance}{SEP}"
        child_scope = self._elaborate_module(child_module, child_prefix, overrides)
        connections = self._normalize_connections(inst, child_module)
        port_decls = self._port_decls(child_module)
        for port_name, expr in connections:
            decl = port_decls.get(port_name)
            if decl is None or expr is None:
                continue
            child_signal = child_scope.signals.get(port_name)
            if child_signal is None:
                continue
            if decl.direction == "input":
                self._wire_input(expr, child_signal, scope, inst)
            elif decl.direction == "output":
                self._wire_output(expr, child_signal, scope, inst)
            else:
                self._error(inst.span, f"inout port '{port_name}' is not supported")

    def _port_decls(self, module: ast.Module) -> dict[str, ast.PortDecl]:
        decls = {p.name: p for p in module.ports}
        for item in module.items:
            if isinstance(item, ast.PortDecl):
                decls[item.name] = item
        return decls

    def _parameter_overrides(
        self, inst: ast.Instantiation, child: ast.Module, scope: _Scope
    ) -> dict[str, Logic]:
        public = [
            i.name for i in child.items if isinstance(i, ast.ParamDecl) and not i.local
        ]
        overrides: dict[str, Logic] = {}
        for name, expr in inst.parameters:
            value = self._const_eval(expr, scope)
            if name.startswith("#"):
                index = int(name[1:])
                if index < len(public):
                    overrides[public[index]] = value
                else:
                    self._error(
                        inst.span,
                        f"too many positional parameters for '{inst.module}'",
                    )
            else:
                overrides[name] = value
        return overrides

    def _normalize_connections(
        self, inst: ast.Instantiation, child: ast.Module
    ) -> list[tuple[str, ast.Expression | None]]:
        port_names = child.port_names()
        result: list[tuple[str, ast.Expression | None]] = []
        positional = [c for c in inst.connections if c.port is None]
        if positional:
            for index, conn in enumerate(inst.connections):
                if index >= len(port_names):
                    break
                result.append((port_names[index], conn.expr))
        else:
            for conn in inst.connections:
                if conn.port in port_names:
                    result.append((conn.port, conn.expr))
        return result

    def _wire_input(
        self,
        expr: ast.Expression,
        child_signal: Signal,
        scope: _Scope,
        inst: ast.Instantiation,
    ) -> None:
        reads = self._read_set(expr, scope)

        from repro.sim.compile import verilog as _cv

        factory = self._compiled(
            lambda: _cv.wire_input_factory(expr, child_signal, scope, self, reads)
        )
        if factory is None:

            def factory(sim, expr=expr, scope=scope, child=child_signal,
                        reads=reads):
                def body():
                    while True:
                        sim.write_signal(
                            child, _eval(expr, scope, sim, self, child.width)
                        )
                        if not reads:
                            return
                        yield WaitChange.on(*reads)

                return body()

        process = Process(
            f"{scope.prefix}{inst.instance}.in.{child_signal.name}", factory
        )
        self.design.add_process(process)

        from repro.sim.compile import level as _level

        member = self._compiled(
            lambda: _level.verilog_wire_input_member(
                process, expr, child_signal, scope, self, reads
            )
        )
        if member is not None:
            self._cone_members.append(member)
        else:
            self._external_writes.add(child_signal)

    def _wire_output(
        self,
        expr: ast.Expression,
        child_signal: Signal,
        scope: _Scope,
        inst: ast.Instantiation,
    ) -> None:
        if not isinstance(
            expr, (ast.Identifier, ast.BitSelect, ast.PartSelect, ast.Concat)
        ):
            self._error(
                inst.span,
                f"output port connection on instance '{inst.instance}' "
                "must be a net lvalue",
            )
            return

        from repro.sim.compile import verilog as _cv

        factory = self._compiled(
            lambda: _cv.wire_output_factory(expr, child_signal, scope, self)
        )
        if factory is None:

            def factory(sim, target=expr, scope=scope, child=child_signal):
                def body():
                    while True:
                        _assign(target, child.value, scope, sim, self, blocking=True)
                        yield WaitChange.on(child)

                return body()

        process = Process(
            f"{scope.prefix}{inst.instance}.out.{child_signal.name}", factory
        )
        self.design.add_process(process)

        from repro.sim.compile import level as _level

        member = self._compiled(
            lambda: _level.verilog_wire_output_member(
                process, expr, child_signal, scope, self
            )
        )
        if member is not None:
            self._cone_members.append(member)
        else:
            self._note_external_lvalue(expr, scope)

    # ------------------------------------------------------------------
    # read sets
    # ------------------------------------------------------------------

    def _read_set(self, expr: ast.Expression, scope: _Scope) -> set[Signal]:
        reads: set[Signal] = set()
        self._collect_reads(expr, scope, reads)
        return reads

    def _collect_reads(
        self, expr: ast.Expression, scope: _Scope, out: set[Signal]
    ) -> None:
        if isinstance(expr, ast.Identifier):
            resolved = scope.resolve(expr.name)
            if isinstance(resolved, Signal):
                out.add(resolved)
        elif isinstance(expr, ast.Unary):
            self._collect_reads(expr.operand, scope, out)
        elif isinstance(expr, ast.Binary):
            self._collect_reads(expr.lhs, scope, out)
            self._collect_reads(expr.rhs, scope, out)
        elif isinstance(expr, ast.Ternary):
            self._collect_reads(expr.cond, scope, out)
            self._collect_reads(expr.if_true, scope, out)
            self._collect_reads(expr.if_false, scope, out)
        elif isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._collect_reads(part, scope, out)
        elif isinstance(expr, ast.Replicate):
            self._collect_reads(expr.count, scope, out)
            self._collect_reads(expr.value, scope, out)
        elif isinstance(expr, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)):
            resolved = scope.resolve(expr.target)
            if isinstance(resolved, Signal):
                out.add(resolved)
            if isinstance(expr, ast.BitSelect):
                self._collect_reads(expr.index, scope, out)
            elif isinstance(expr, ast.PartSelect):
                self._collect_reads(expr.msb, scope, out)
                self._collect_reads(expr.lsb, scope, out)
            else:
                self._collect_reads(expr.base, scope, out)
                self._collect_reads(expr.width, scope, out)
        elif isinstance(expr, ast.SystemFunctionCall):
            for arg in expr.args:
                self._collect_reads(arg, scope, out)

    def _lvalue_index_reads(self, lvalue: ast.LValue, scope: _Scope) -> set[Signal]:
        reads: set[Signal] = set()
        if isinstance(lvalue, ast.BitSelect):
            self._collect_reads(lvalue.index, scope, reads)
        elif isinstance(lvalue, ast.IndexedPartSelect):
            self._collect_reads(lvalue.base, scope, reads)
        elif isinstance(lvalue, ast.Concat):
            for part in lvalue.parts:
                reads |= self._lvalue_index_reads(part, scope)
        return reads

    def _read_set_stmt(self, stmt: ast.Statement, scope: _Scope) -> set[Signal]:
        """All signals read anywhere in a statement — the @(*) sensitivity."""
        # loop induction variables written inside the block are not real
        # sensitivity sources; removing them avoids self-triggering loops.
        return self._read_set_stmt_raw(stmt, scope) - _written_signals(stmt, scope)

    def _read_set_stmt_raw(self, stmt: ast.Statement, scope: _Scope) -> set[Signal]:
        """All signals read anywhere in a statement, written ones included."""
        reads: set[Signal] = set()

        def walk(node: ast.Statement) -> None:
            if isinstance(node, ast.Block):
                for inner in node.statements:
                    walk(inner)
            elif isinstance(node, ast.If):
                self._collect_reads(node.condition, scope, reads)
                walk(node.then_branch)
                if node.else_branch is not None:
                    walk(node.else_branch)
            elif isinstance(node, ast.Case):
                self._collect_reads(node.subject, scope, reads)
                for item in node.items:
                    for label in item.labels:
                        self._collect_reads(label, scope, reads)
                    walk(item.body)
            elif isinstance(node, ast.Assign):
                self._collect_reads(node.value, scope, reads)
                reads.update(self._lvalue_index_reads(node.target, scope))
            elif isinstance(node, ast.For):
                walk(node.init)
                self._collect_reads(node.condition, scope, reads)
                walk(node.step)
                walk(node.body)
            elif isinstance(node, (ast.Repeat, ast.While)):
                cond = node.count if isinstance(node, ast.Repeat) else node.condition
                self._collect_reads(cond, scope, reads)
                walk(node.body)
            elif isinstance(node, ast.Forever):
                walk(node.body)
            elif isinstance(node, (ast.DelayControl, ast.EventControl)):
                if node.statement is not None:
                    walk(node.statement)
            elif isinstance(node, ast.SystemTaskCall):
                for arg in node.args:
                    self._collect_reads(arg, scope, reads)

        walk(stmt)
        return reads

    # ------------------------------------------------------------------

    def _error(self, span, message: str) -> None:
        self.collector.error(_CODE_ELAB, message, source=self.source, span=span)


# --------------------------------------------------------------------------
# expression evaluation
# --------------------------------------------------------------------------


#: binary operators whose operands take the assignment-context width
_CONTEXT_BINARY = frozenset({"+", "-", "*", "/", "%", "&", "|", "^"})
#: unary operators whose operand takes the assignment-context width
_CONTEXT_UNARY = frozenset({"+", "-", "~"})


def _eval(
    expr: ast.Expression,
    scope: _Scope,
    sim: Simulator | None,
    elab: VerilogElaborator,
    ctx_width: int | None = None,
) -> Logic:
    """Evaluate an expression.

    ``ctx_width`` implements IEEE 1364 context-determined sizing: in an
    assignment, arithmetic/bitwise operands are extended to the larger of
    their self-determined width and the target width *before* the operation,
    so carries out of narrow operands are preserved
    (e.g. ``{cout, sum} = a + b + cin``).
    """
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        # strings in expression position: pack ASCII (rare; used by $display only)
        data = expr.value.encode("ascii", "replace") or b"\0"
        bits = int.from_bytes(data, "big")
        return Logic.from_int(bits, max(8, 8 * len(data)))
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if isinstance(resolved, Signal):
            return resolved.value
        if isinstance(resolved, Logic):
            return resolved
        elab._error(expr.span, f"'{expr.name}' is not declared")
        raise _ElabAbort
    if isinstance(expr, ast.Unary):
        inner_ctx = ctx_width if expr.op in _CONTEXT_UNARY else None
        operand = _eval(expr.operand, scope, sim, elab, inner_ctx)
        if inner_ctx is not None and operand.width < inner_ctx:
            operand = operand.resize(inner_ctx)
        return _apply_unary(expr.op, operand)
    if isinstance(expr, ast.Binary):
        if expr.op in _CONTEXT_BINARY:
            lhs = _eval(expr.lhs, scope, sim, elab, ctx_width)
            rhs = _eval(expr.rhs, scope, sim, elab, ctx_width)
            width = max(lhs.width, rhs.width, ctx_width or 0)
            return _apply_binary(expr.op, lhs.resize(width), rhs.resize(width))
        if expr.op in ("<<", ">>", "<<<", ">>>"):
            lhs = _eval(expr.lhs, scope, sim, elab, ctx_width)
            if ctx_width is not None and lhs.width < ctx_width:
                lhs = lhs.resize(ctx_width)
            rhs = _eval(expr.rhs, scope, sim, elab)
            return _apply_binary(expr.op, lhs, rhs)
        lhs = _eval(expr.lhs, scope, sim, elab)
        rhs = _eval(expr.rhs, scope, sim, elab)
        return _apply_binary(expr.op, lhs, rhs)
    if isinstance(expr, ast.Ternary):
        cond = _eval(expr.cond, scope, sim, elab)
        if cond.truthy().has_x:
            # IEEE: merge both branches; approximate with all-X of merged width
            a = _eval(expr.if_true, scope, sim, elab, ctx_width)
            b = _eval(expr.if_false, scope, sim, elab, ctx_width)
            return Logic.unknown(max(a.width, b.width))
        if cond.is_true():
            return _eval(expr.if_true, scope, sim, elab, ctx_width)
        return _eval(expr.if_false, scope, sim, elab, ctx_width)
    if isinstance(expr, ast.Concat):
        result: Logic | None = None
        for part in expr.parts:
            value = _eval(part, scope, sim, elab)
            result = value if result is None else result.concat(value)
        assert result is not None
        return result
    if isinstance(expr, ast.Replicate):
        count = _eval(expr.count, scope, sim, elab)
        value = _eval(expr.value, scope, sim, elab)
        try:
            n = count.to_int()
        except ValueError:
            elab._error(expr.span, "replication count has unknown bits")
            raise _ElabAbort
        if n <= 0 or n > 4096:
            message = f"invalid replication count {n}"
            elab._error(expr.span, message)
            raise _ElabAbort(message)
        if n * value.width > VerilogElaborator.MAX_SIGNAL_WIDTH:
            message = (
                f"replication result width {n * value.width} exceeds the "
                "supported maximum"
            )
            elab._error(expr.span, message)
            raise _ElabAbort(message)
        return value.replicate(n)
    if isinstance(expr, ast.BitSelect):
        base = _resolve_vector(expr.target, expr.span, scope, elab)
        index = _eval(expr.index, scope, sim, elab)
        if index.has_x:
            return Logic.unknown(1)
        return base.bit(index.to_int())
    if isinstance(expr, ast.PartSelect):
        base = _resolve_vector(expr.target, expr.span, scope, elab)
        msb = _eval(expr.msb, scope, sim, elab)
        lsb = _eval(expr.lsb, scope, sim, elab)
        if msb.has_x or lsb.has_x:
            return Logic.unknown(1)
        _check_select_width(msb.to_int(), lsb.to_int(), expr.span, elab)
        return base.slice(msb.to_int(), lsb.to_int())
    if isinstance(expr, ast.IndexedPartSelect):
        base_value = _resolve_vector(expr.target, expr.span, scope, elab)
        start = _eval(expr.base, scope, sim, elab)
        width = _eval(expr.width, scope, sim, elab)
        if start.has_x or width.has_x:
            return Logic.unknown(1)
        w = width.to_int()
        lo = start.to_int() if expr.ascending else start.to_int() - w + 1
        return base_value.slice(lo + w - 1, lo)
    if isinstance(expr, ast.SystemFunctionCall):
        return _eval_system_function(expr, scope, sim, elab)
    elab._error(expr.span, f"cannot evaluate {type(expr).__name__}")
    raise _ElabAbort


def _check_select_width(msb: int, lsb: int, span, elab: VerilogElaborator) -> None:
    """Reject part selects whose width would exhaust memory."""
    width = msb - lsb + 1
    if width > VerilogElaborator.MAX_SIGNAL_WIDTH:
        message = (
            f"part-select width {width} exceeds the supported maximum"
        )
        elab._error(span, message)
        raise _ElabAbort(message)


def _resolve_vector(
    name: str, span, scope: _Scope, elab: VerilogElaborator
) -> Logic:
    resolved = scope.resolve(name)
    if isinstance(resolved, Signal):
        return resolved.value
    if isinstance(resolved, Logic):
        return resolved
    elab._error(span, f"'{name}' is not declared")
    raise _ElabAbort


def _eval_system_function(
    expr: ast.SystemFunctionCall,
    scope: _Scope,
    sim: Simulator | None,
    elab: VerilogElaborator,
) -> Logic:
    if expr.name == "$time":
        if sim is None:
            elab._error(expr.span, "$time used in a constant expression")
            raise _ElabAbort
        return Logic.from_int(sim.time, 64)
    if expr.name in ("$signed", "$unsigned"):
        if len(expr.args) != 1:
            elab._error(expr.span, f"{expr.name} takes exactly one argument")
            raise _ElabAbort
        return _eval(expr.args[0], scope, sim, elab)
    if expr.name == "$random":
        return Logic.from_int(elab.rng.next(), 32)
    if expr.name == "$clog2":
        if len(expr.args) != 1:
            elab._error(expr.span, "$clog2 takes exactly one argument")
            raise _ElabAbort
        value = _eval(expr.args[0], scope, sim, elab)
        if value.has_x:
            return Logic.unknown(32)
        n = value.to_int()
        return Logic.from_int(max(0, (n - 1).bit_length()), 32)
    elab._error(expr.span, f"unsupported system function '{expr.name}'")
    raise _ElabAbort


_UNARY_OPS: dict[str, Callable[[Logic], Logic]] = {
    "+": lambda v: v,
    "-": Logic.neg,
    "~": Logic.__invert__,
    "!": Logic.logical_not,
    "&": Logic.reduce_and,
    "|": Logic.reduce_or,
    "^": Logic.reduce_xor,
    "~&": lambda v: v.reduce_and().logical_not(),
    "~|": lambda v: v.reduce_or().logical_not(),
    "~^": lambda v: v.reduce_xor().logical_not(),
}

_BINARY_OPS: dict[str, Callable[[Logic, Logic], Logic]] = {
    "+": Logic.add,
    "-": Logic.sub,
    "*": Logic.mul,
    "/": Logic.div,
    "%": Logic.mod,
    "&": Logic.__and__,
    "|": Logic.__or__,
    "^": Logic.__xor__,
    "==": Logic.eq,
    "!=": Logic.ne,
    "===": Logic.case_eq,
    "!==": lambda a, b: a.case_eq(b).logical_not(),
    "<": Logic.lt,
    "<=": Logic.le,
    ">": Logic.gt,
    ">=": Logic.ge,
    "<<": Logic.shl,
    "<<<": Logic.shl,
    ">>": Logic.shr,
    ">>>": Logic.ashr,
    "&&": Logic.logical_and,
    "||": Logic.logical_or,
}


def _apply_unary(op: str, operand: Logic) -> Logic:
    try:
        return _UNARY_OPS[op](operand)
    except KeyError:
        raise _ElabAbort from None


def _apply_binary(op: str, lhs: Logic, rhs: Logic) -> Logic:
    if op == "**":
        if lhs.has_x or rhs.has_x:
            return Logic.unknown(max(lhs.width, 32))
        return Logic.from_int(lhs.bits ** min(rhs.bits, 64), max(lhs.width, 32))
    try:
        return _BINARY_OPS[op](lhs, rhs)
    except KeyError:
        raise _ElabAbort from None


# --------------------------------------------------------------------------
# statement execution (generator interpreter)
# --------------------------------------------------------------------------


def _exec(
    stmt: ast.Statement,
    scope: _Scope,
    sim: Simulator,
    elab: VerilogElaborator,
):
    """Execute a statement; a generator yielding kernel commands."""
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            yield from _exec(inner, scope, sim, elab)
    elif isinstance(stmt, ast.If):
        condition = _eval(stmt.condition, scope, sim, elab)
        if condition.is_true():
            yield from _exec(stmt.then_branch, scope, sim, elab)
        elif stmt.else_branch is not None:
            yield from _exec(stmt.else_branch, scope, sim, elab)
    elif isinstance(stmt, ast.Case):
        yield from _exec_case(stmt, scope, sim, elab)
    elif isinstance(stmt, ast.Assign):
        width = _lvalue_width(stmt.target, scope, sim, elab)
        value = _eval(stmt.value, scope, sim, elab, width)
        _assign(stmt.target, value, scope, sim, elab, blocking=stmt.blocking)
    elif isinstance(stmt, ast.For):
        yield from _exec(stmt.init, scope, sim, elab)
        iterations = 0
        while _eval(stmt.condition, scope, sim, elab).is_true():
            yield from _exec(stmt.body, scope, sim, elab)
            yield from _exec(stmt.step, scope, sim, elab)
            iterations += 1
            if iterations > VerilogElaborator.LOOP_LIMIT:
                from repro.sim.kernel import SimulationError

                raise SimulationError("for-loop iteration limit exceeded")
    elif isinstance(stmt, ast.Repeat):
        count = _eval(stmt.count, scope, sim, elab)
        times = 0 if count.has_x else count.to_int()
        for _ in range(times):
            yield from _exec(stmt.body, scope, sim, elab)
    elif isinstance(stmt, ast.While):
        iterations = 0
        while _eval(stmt.condition, scope, sim, elab).is_true():
            yield from _exec(stmt.body, scope, sim, elab)
            iterations += 1
            if iterations > VerilogElaborator.LOOP_LIMIT:
                from repro.sim.kernel import SimulationError

                raise SimulationError("while-loop iteration limit exceeded")
    elif isinstance(stmt, ast.Forever):
        while True:
            yield from _exec(stmt.body, scope, sim, elab)
    elif isinstance(stmt, ast.DelayControl):
        delay = _eval(stmt.delay, scope, sim, elab)
        yield Delay(0 if delay.has_x else delay.to_int())
        if stmt.statement is not None:
            yield from _exec(stmt.statement, scope, sim, elab)
    elif isinstance(stmt, ast.EventControl):
        entries = []
        for item in stmt.sensitivity.items:
            signal = elab._sens_signal(item.signal, scope)
            if signal is not None:
                edge = {"pos": Edge.POS, "neg": Edge.NEG, "any": Edge.ANY}[item.edge]
                entries.append(Sensitivity(signal, edge))
        if entries:
            yield WaitChange(tuple(entries))
        if stmt.statement is not None:
            yield from _exec(stmt.statement, scope, sim, elab)
    elif isinstance(stmt, ast.SystemTaskCall):
        yield from _exec_system_task(stmt, scope, sim, elab)
    elif isinstance(stmt, ast.NullStatement):
        pass
    else:
        elab._error(stmt.span, f"cannot execute {type(stmt).__name__}")
        raise _ElabAbort


def _exec_case(stmt: ast.Case, scope: _Scope, sim, elab):
    subject = _eval(stmt.subject, scope, sim, elab)
    default_body = None
    for item in stmt.items:
        if not item.labels:
            default_body = item.body
            continue
        for label_expr in item.labels:
            label = _eval(label_expr, scope, sim, elab)
            if _case_match(stmt.kind, subject, label):
                yield from _exec(item.body, scope, sim, elab)
                return
    if default_body is not None:
        yield from _exec(default_body, scope, sim, elab)


def _case_match(kind: str, subject: Logic, label: Logic) -> bool:
    width = max(subject.width, label.width)
    subject = subject.resize(width)
    label = label.resize(width)
    if kind == "case":
        return subject.case_eq(label).is_true()
    # casez/casex: X/Z bits of the label (and for casex, the subject) are wildcards
    wildcard = label.xmask
    if kind == "casex":
        wildcard |= subject.xmask
    considered = ((1 << width) - 1) & ~wildcard
    if subject.xmask & considered:
        return False
    return ((subject.bits ^ label.bits) & considered) == 0


def _exec_system_task(stmt: ast.SystemTaskCall, scope: _Scope, sim, elab):
    name = stmt.name
    if name in ("$display", "$write", "$monitor", "$strobe", "$error"):
        text = _format_display(stmt, scope, sim, elab)
        if name == "$error":
            text = f"ERROR: {text}"
        sim.display(text)
    elif name == "$fatal":
        sim.display("FATAL: " + _format_display(stmt, scope, sim, elab))
        yield Finish(1)
    elif name in ("$finish", "$stop"):
        yield Finish(0)
    else:
        elab._error(stmt.span, f"unsupported system task '{name}'")
        raise _ElabAbort
    return
    yield  # pragma: no cover - makes this a generator even on non-yield paths


def _format_display(stmt: ast.SystemTaskCall, scope, sim, elab) -> str:
    if not stmt.args:
        return ""
    first = stmt.args[0]
    if isinstance(first, ast.StringLiteral):
        return _format_string(first.value, list(stmt.args[1:]), scope, sim, elab)
    rendered = []
    for arg in stmt.args:
        value = _eval(arg, scope, sim, elab)
        rendered.append(value.format("d") if value.is_fully_known else value.format("b"))
    return " ".join(rendered)


def _format_string(fmt: str, args: list, scope, sim, elab) -> str:
    out: list[str] = []
    i = 0
    arg_index = 0
    fmt = fmt.replace("\\n", "\n").replace("\\t", "\t").replace('\\"', '"')
    while i < len(fmt):
        char = fmt[i]
        if char != "%":
            out.append(char)
            i += 1
            continue
        i += 1
        if i >= len(fmt):
            out.append("%")
            break
        # optional width / zero-pad digits
        width_digits = ""
        while i < len(fmt) and fmt[i].isdigit():
            width_digits += fmt[i]
            i += 1
        spec = fmt[i].lower() if i < len(fmt) else "%"
        i += 1
        if spec == "%":
            out.append("%")
            continue
        if arg_index >= len(args):
            out.append("<missing>")
            continue
        arg = args[arg_index]
        arg_index += 1
        if spec == "s" and isinstance(arg, ast.StringLiteral):
            out.append(arg.value)
            continue
        value = _eval(arg, scope, sim, elab)
        if spec == "t":
            out.append(str(value.to_int() if value.is_fully_known else "x"))
        elif spec in ("b", "d", "h", "o"):
            text = value.format(spec)
            if width_digits and spec == "d":
                text = text.rjust(int(width_digits) or len(text), "0" if width_digits.startswith("0") else " ")
            out.append(text)
        elif spec == "c":
            out.append(chr(value.bits & 0x7F) if value.is_fully_known else "x")
        elif spec == "s":
            out.append(_logic_to_text(value))
        else:
            out.append(f"%{spec}")
    return "".join(out)


def _logic_to_text(value: Logic) -> str:
    if value.has_x:
        return "x"
    data = value.bits.to_bytes(max(1, (value.width + 7) // 8), "big")
    return data.lstrip(b"\0").decode("ascii", "replace")


# --------------------------------------------------------------------------
# assignment
# --------------------------------------------------------------------------


def _assign(
    target: ast.LValue,
    value: Logic,
    scope: _Scope,
    sim: Simulator,
    elab: VerilogElaborator,
    *,
    blocking: bool,
) -> None:
    if isinstance(target, ast.Concat):
        # {a, b} = value — split from the high end
        offset = value.width
        for part in target.parts:
            signal = _target_signal(part, scope, elab)
            width = _lvalue_width(part, scope, sim, elab)
            offset -= width
            lo = max(offset, 0)
            part_value = value.slice(lo + width - 1, lo)
            _assign(part, part_value, scope, sim, elab, blocking=blocking)
        return
    signal = _target_signal(target, scope, elab)
    if isinstance(target, ast.Identifier):
        if blocking:
            sim.write_signal(signal, value.resize(signal.width))
        else:
            sim.schedule_nba(signal, value.resize(signal.width))
        return
    msb, lsb = _select_bounds(target, scope, sim, elab)
    if msb is None or lsb is None:
        return  # X index: assignment has no effect (IEEE)
    if blocking:
        sim.write_signal(signal, signal.value.set_slice(msb, lsb, value))
    else:
        sim.schedule_nba_update(
            signal, lambda old, m=msb, l=lsb, v=value: old.set_slice(m, l, v)
        )


def _target_signal(target: ast.LValue, scope: _Scope, elab: VerilogElaborator) -> Signal:
    name = target.name if isinstance(target, ast.Identifier) else target.target
    resolved = scope.resolve(name)
    if isinstance(resolved, Signal):
        return resolved
    elab._error(target.span, f"cannot assign to '{name}'")
    raise _ElabAbort


def _lvalue_width(target: ast.LValue, scope, sim, elab) -> int:
    if isinstance(target, ast.Concat):
        return sum(_lvalue_width(p, scope, sim, elab) for p in target.parts)
    if isinstance(target, ast.Identifier):
        return _target_signal(target, scope, elab).width
    msb, lsb = _select_bounds(target, scope, sim, elab)
    if msb is None or lsb is None:
        return 1
    return msb - lsb + 1


def _select_bounds(target: ast.LValue, scope, sim, elab) -> tuple[int | None, int | None]:
    if isinstance(target, ast.BitSelect):
        index = _eval(target.index, scope, sim, elab)
        if index.has_x:
            return None, None
        return index.to_int(), index.to_int()
    if isinstance(target, ast.PartSelect):
        msb = _eval(target.msb, scope, sim, elab)
        lsb = _eval(target.lsb, scope, sim, elab)
        if msb.has_x or lsb.has_x:
            return None, None
        _check_select_width(msb.to_int(), lsb.to_int(), target.span, elab)
        return msb.to_int(), lsb.to_int()
    if isinstance(target, ast.IndexedPartSelect):
        base = _eval(target.base, scope, sim, elab)
        width = _eval(target.width, scope, sim, elab)
        if base.has_x or width.has_x:
            return None, None
        w = width.to_int()
        lo = base.to_int() if target.ascending else base.to_int() - w + 1
        return lo + w - 1, lo
    raise TypeError(f"not a select lvalue: {target!r}")


# --------------------------------------------------------------------------
# misc helpers
# --------------------------------------------------------------------------


def _contains_delay(stmt: ast.Statement) -> bool:
    if isinstance(stmt, ast.DelayControl):
        return True
    if isinstance(stmt, ast.EventControl):
        return True
    if isinstance(stmt, ast.Block):
        return any(_contains_delay(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        branches = [stmt.then_branch]
        if stmt.else_branch is not None:
            branches.append(stmt.else_branch)
        return any(_contains_delay(b) for b in branches)
    if isinstance(stmt, (ast.For, ast.Repeat, ast.While, ast.Forever)):
        return _contains_delay(stmt.body)
    return False


def _written_signals(stmt: ast.Statement, scope: _Scope) -> set[Signal]:
    writes: set[Signal] = set()

    def target_signal(lvalue: ast.LValue) -> None:
        if isinstance(lvalue, ast.Concat):
            for part in lvalue.parts:
                target_signal(part)
            return
        name = lvalue.name if isinstance(lvalue, ast.Identifier) else lvalue.target
        resolved = scope.resolve(name)
        if isinstance(resolved, Signal):
            writes.add(resolved)

    def walk(node: ast.Statement) -> None:
        if isinstance(node, ast.Block):
            for inner in node.statements:
                walk(inner)
        elif isinstance(node, ast.If):
            walk(node.then_branch)
            if node.else_branch is not None:
                walk(node.else_branch)
        elif isinstance(node, ast.Case):
            for item in node.items:
                walk(item.body)
        elif isinstance(node, ast.Assign):
            target_signal(node.target)
        elif isinstance(node, ast.For):
            walk(node.init)
            walk(node.step)
            walk(node.body)
        elif isinstance(node, (ast.Repeat, ast.While, ast.Forever)):
            walk(node.body)
        elif isinstance(node, (ast.DelayControl, ast.EventControl)):
            if node.statement is not None:
                walk(node.statement)

    walk(stmt)
    return writes


def _line(elab: VerilogElaborator, node) -> int:
    return elab.source.location(node.span.start_offset).line


def elaborate_verilog(
    modules: dict[str, ast.Module],
    top: str,
    source: SourceFile,
    collector: DiagnosticCollector | None = None,
) -> tuple[Design | None, DiagnosticCollector]:
    """Elaborate *top* against a module library; returns (design, diagnostics)."""
    collector = collector if collector is not None else DiagnosticCollector()
    elaborator = VerilogElaborator(modules, source, collector)
    design = elaborator.elaborate(top)
    return design, collector
