"""Batch stimulus evaluation — the fourth simulation tier.

The event kernel replays a golden testbench one stimulus vector at a time:
drive, settle, check, repeat. For the designs the QA pipeline actually
generates — combinational cones plus recognized synchronous registers —
the per-vector work is a pure function of the vector, so the whole stimulus
set can be evaluated in one pass instead.

This module plans and runs that pass:

* :func:`plan_combinational` re-lowers the levelized cones' two-state emit
  sources (:class:`~repro.sim.compile.level.ConeMember` recipes) across the
  stimulus axis via :mod:`repro.sim.compile.vector` — numpy ``uint64``
  columns when numpy is importable, a masked-int list loop otherwise;
* :func:`plan_sequential` does the same for clocked designs whose
  edge-triggered processes were recognized as
  :class:`~repro.sim.runtime.SyncUpdate` register banks: one *transposed*
  cone sweep per clock edge over independent stimulus sequences, with the
  register columns carried between edges;
* :func:`run_bundle` evaluates a registered
  :class:`~repro.designs.tbgen.StimulusBundle` against a plan and emulates
  the testbench's checks exactly — same messages, same ordering, same
  end-of-log summary, same ``end_time`` — so the synthesized result is
  observationally identical to event-simulating the testbench text.

Per-vector X demotion: a combinational vector whose inputs carry X bits
cannot go through the two-state vector program. Such vectors (and only
such vectors) are demoted to a scalar four-state evaluation that drives the
design's own cones through the kernel's time-step machinery, so X
propagation stays bit-exact with the event tier. Bundles produced by
:func:`~repro.designs.tbgen.make_testbench` drive integer literals and
never demote; the demotion path exists for direct
:func:`simulate_vectors` callers.

Eligibility is conservative: any process that is not a workable cone (or a
recognized register bank), any emit that references a signal outside the
planned namespace (clocks, resets, undriven internals read by logic), any
width beyond the emit cap — all return ``None`` and the caller falls back
to the event kernel. ``REPRO_SIM_NO_BATCH=1`` disables the tier wholesale;
``REPRO_SIM_NO_NUMPY=1`` keeps it but forces the list fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.compile.twostate import MAX_EMIT_WIDTH
from repro.sim.compile.vector import VectorProgram, build_program
from repro.sim.kernel import Simulator
from repro.sim.runtime import Cone, Design, Signal
from repro.sim.values import Logic


def _mask(width: int) -> int:
    return (1 << width) - 1


# --------------------------------------------------------------------------
# cone lowering shared by both planners
# --------------------------------------------------------------------------


def _lower_cones(design: Design, names: dict[Signal, str]):
    """Topologically ordered vector assigns for every cone member.

    *names* maps externally-driven signals (inputs, registers) to their
    column variables; every cone target gets a fresh ``o{j}`` variable added
    to *names*. Returns ``(assigns, target_var)`` where *assigns* is the
    ordered ``(var, width, source, source_width)`` list for
    :func:`~repro.sim.compile.vector.build_program` and *target_var* maps
    each cone-driven signal to its variable — or ``None`` when any member
    falls outside the batchable subset.
    """
    members = []
    for process in design.processes:
        if not isinstance(process, Cone):
            continue
        if process.recipe is None:
            return None
        members.extend(process.recipe)
    writer: dict[Signal, object] = {}
    for member in members:
        if member.emit is None or len(member.writes) != 1:
            return None
        target = member.writes[0]
        if not 0 < target.width <= MAX_EMIT_WIDTH:
            return None
        if target in writer or target in names:
            return None
        writer[target] = member
    target_var: dict[Signal, str] = {}
    for j, member in enumerate(members):
        target = member.writes[0]
        var = f"o{j}"
        target_var[target] = var
        names[target] = var
    # Kahn levelization across cones: a member is ready once every cone-driven
    # signal it reads has been emitted. Cone recipes are already internally
    # ordered, so this converges in one or two sweeps.
    assigns: list[tuple[str, int, str, int]] = []
    emitted: set[Signal] = set()
    remaining = members
    while remaining:
        deferred = []
        for member in remaining:
            if any(s in writer and s not in emitted for s in member.reads):
                deferred.append(member)
                continue
            lowered = member.emit(names)
            if lowered is None:
                return None
            source, source_width = lowered
            target = member.writes[0]
            assigns.append((target_var[target], target.width, source, source_width))
            emitted.add(target)
        if len(deferred) == len(remaining):
            return None  # combinational cycle — not a levelizable design
        remaining = deferred
    return assigns, target_var


def _input_bindings(design: Design, in_ports):
    """``(name, spec_width, signal, var)`` rows for the driven ports."""
    inputs = []
    names: dict[Signal, str] = {}
    for k, (name, spec_width) in enumerate(in_ports):
        signal = design.signals.get(name)
        if signal is None:
            return None
        var = f"i{k}"
        names[signal] = var
        inputs.append((name, spec_width, signal, var))
    return inputs, names


# --------------------------------------------------------------------------
# combinational plans
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CombPlan:
    """One compiled batch pass over a combinational design."""

    #: (port name, spec width, design signal, column var) per driven input
    inputs: tuple[tuple[str, int, Signal, str], ...]
    #: (port name, spec width, column var | None, static Logic | None) per
    #: observed output; undriven outputs carry their elaboration-time value
    outputs: tuple[tuple[str, int, str | None, Logic | None], ...]
    program: VectorProgram

    @property
    def mode(self) -> str:
        return self.program.mode


def plan_combinational(design: Design, in_ports, out_ports) -> CombPlan | None:
    """Compile a batch plan, or ``None`` when the design is not batchable.

    *in_ports* / *out_ports* are ``(name, width)`` pairs in testbench
    declaration order — the observation widths, which may differ from the
    design's own signal widths (the testbench connection resizes).
    """
    for process in design.processes:
        if not isinstance(process, Cone):
            return None
    bound = _input_bindings(design, in_ports)
    if bound is None:
        return None
    inputs, names = bound
    lowered = _lower_cones(design, names)
    if lowered is None:
        return None
    assigns, target_var = lowered
    outputs = []
    results = []
    seen_result = set()
    for name, spec_width in out_ports:
        signal = design.signals.get(name)
        if signal is None:
            return None
        var = target_var.get(signal)
        if var is None:
            if signal in names:
                return None  # output aliases a driven input — not a QA shape
            outputs.append((name, spec_width, None, signal.value.resize(spec_width)))
        else:
            outputs.append((name, spec_width, var, None))
            if var not in seen_result:
                seen_result.add(var)
                results.append((var, signal.width))
    bindings = [(var, signal.width) for (_n, _w, signal, var) in inputs]
    program = build_program(bindings, assigns, results)
    if program is None:
        return None
    return CombPlan(tuple(inputs), tuple(outputs), program)


def _masked_column(values, spec_width: int, signal: Signal):
    """Ints as the design signal sees them, or ``None`` if any X is live."""
    spec_mask = _mask(spec_width)
    design_mask = _mask(signal.width)
    column = []
    for value in values:
        if isinstance(value, Logic):
            if value.has_x:
                return None
            value = value.bits
        column.append(value & spec_mask & design_mask)
    return column


def _scalar_session(design: Design) -> Simulator:
    """A settled four-state evaluation session over the design's processes."""
    sim = Simulator(design)
    for process in design.processes:
        process.start(sim)
    sim._active.extend(design.processes)
    sim._run_time_step()
    return sim


def run_vectors(plan: CombPlan, vectors, design: Design | None = None):
    """Evaluate *vectors* through the plan.

    Returns ``(rows, demotions)``: one ``{port: int | Logic}`` dict per
    vector (ints for two-state results, Logic where X is involved) and the
    count of vectors demoted to the scalar four-state path. *design* is only
    required when demotion is possible — bundle stimulus is pure ints and
    never demotes.
    """
    n = len(vectors)
    spec_widths = {name: w for name, w, _s, _v in plan.inputs}
    demoted = []
    for index, vector in enumerate(vectors):
        for name, _w, _s, _var in plan.inputs:
            value = vector.get(name)
            if value is None:
                raise KeyError(f"vector {index} missing input {name!r}")
            if isinstance(value, Logic) and value.has_x:
                demoted.append(index)
                break
    demoted_set = set(demoted)
    kept = [i for i in range(n) if i not in demoted_set]
    rows: list[dict | None] = [None] * n
    if kept:
        columns = {}
        for name, spec_width, signal, var in plan.inputs:
            column = _masked_column(
                [vectors[i][name] for i in kept], spec_width, signal
            )
            assert column is not None  # X-carrying vectors were demoted
            columns[var] = column
        out = plan.program.run(columns, len(kept))
        for slot, index in enumerate(kept):
            row = {}
            for name, spec_width, var, static in plan.outputs:
                if var is None:
                    row[name] = static
                else:
                    row[name] = out[var][slot] & _mask(spec_width)
            rows[index] = row
    if demoted:
        if design is None:
            raise ValueError("X-carrying vectors require the design for demotion")
        sim = _scalar_session(design)
        for index in demoted:
            vector = vectors[index]
            for name, spec_width, signal, _var in plan.inputs:
                value = vector[name]
                if not isinstance(value, Logic):
                    value = Logic._make(spec_width, value & _mask(spec_width), 0)
                sim.write_signal(signal, value.resize(signal.width))
            sim._run_time_step()
            row = {}
            for name, spec_width, var, static in plan.outputs:
                if var is None:
                    row[name] = static
                else:
                    row[name] = design.signals[name].value.resize(spec_width)
            rows[index] = row
    return rows, len(demoted)


@dataclass(frozen=True)
class BatchRun:
    """Result of :func:`simulate_vectors`."""

    values: tuple[dict, ...]
    demotions: int
    mode: str


def simulate_vectors(design: Design, vectors, *, inputs=None, outputs=None):
    """Batch-evaluate a combinational design over a stimulus set.

    *vectors* is a sequence of ``{input: int | Logic}`` dicts. *inputs* /
    *outputs* are ``(name, width)`` pairs; when omitted, inputs are derived
    from the first vector's keys (at design widths) and outputs are every
    cone-driven signal that is not an input. Returns a :class:`BatchRun`
    (``values[i][port]`` is an int, or a Logic when X was involved), or
    ``None`` when the design is not batchable.
    """
    if inputs is None:
        if not vectors:
            return None
        inputs = []
        for name in sorted(vectors[0]):
            signal = design.signals.get(name)
            if signal is None:
                return None
            inputs.append((name, signal.width))
    if outputs is None:
        input_names = {name for name, _w in inputs}
        outputs = []
        for process in design.processes:
            if not isinstance(process, Cone) or process.recipe is None:
                continue
            for member in process.recipe:
                for target in member.writes:
                    if target.name not in input_names:
                        outputs.append((target.name, target.width))
        outputs.sort()
    plan = plan_combinational(design, inputs, outputs)
    if plan is None:
        return None
    rows, demotions = run_vectors(plan, list(vectors), design)
    return BatchRun(tuple(rows), demotions, plan.mode)


# --------------------------------------------------------------------------
# sequential plans
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SeqPlan:
    """One compiled per-edge batch pass over a clocked design."""

    inputs: tuple[tuple[str, int, Signal, str], ...]
    #: (port name, spec width, kind, payload): kind is "reg" (payload = reg
    #: column var), "cone" (payload = out_program column var), or "static"
    #: (payload = elaboration-time Logic for undriven outputs)
    outputs: tuple[tuple[str, int, str, object], ...]
    #: (reg column var, next column var, width, reset bits) per register
    regs: tuple[tuple[str, str, int, int], ...]
    #: inputs + old regs -> next-state register columns
    cycle_program: VectorProgram
    #: inputs + (new) regs -> observed cone outputs; None when every output
    #: is a register or static
    out_program: VectorProgram | None

    @property
    def mode(self) -> str:
        return self.cycle_program.mode


def plan_sequential(design: Design, in_ports, out_ports) -> SeqPlan | None:
    """Compile a per-edge batch plan, or ``None`` when not batchable.

    Requires every non-cone process to have been recognized as a
    :class:`~repro.sim.runtime.SyncUpdate` sharing the design's ``clk`` /
    ``rst`` signals, and no cone to read the clock or reset (their settle
    points would then depend on testbench scheduling order, which the batch
    pass does not model).
    """
    clk = design.signals.get("clk")
    rst = design.signals.get("rst")
    if clk is None or rst is None:
        return None
    sync_by_process = {u.process: u for u in design.sync_updates}
    sync_regs = []
    for process in design.processes:
        if isinstance(process, Cone):
            continue
        update = sync_by_process.get(process)
        if update is None:
            return None
        if update.clock is not clk or update.reset is not rst:
            return None
        sync_regs.extend(update.regs)
    if not sync_regs:
        return None
    targets = [r.target for r in sync_regs]
    if len(set(targets)) != len(targets):
        return None
    if clk in targets or rst in targets:
        return None
    bound = _input_bindings(design, in_ports)
    if bound is None:
        return None
    inputs, names = bound
    if clk in names or rst in names:
        return None
    regs = []
    for m, sync_reg in enumerate(sync_regs):
        target = sync_reg.target
        if target in names:
            return None
        names[target] = f"r{m}"
        regs.append((f"r{m}", f"nr{m}", target.width, sync_reg.reset_bits))
    # cones must be pure functions of inputs and registers — reading clk/rst
    # would observe testbench scheduling, which this pass does not replay
    for process in design.processes:
        if isinstance(process, Cone):
            for member in process.recipe or ():
                if clk in member.reads or rst in member.reads:
                    return None
    lowered = _lower_cones(design, names)
    if lowered is None:
        return None
    cone_assigns, target_var = lowered
    next_assigns = []
    for (var, next_var, width, _reset), sync_reg in zip(regs, sync_regs):
        emitted = sync_reg.emit(names)
        if emitted is None:
            return None
        source, source_width = emitted
        next_assigns.append((next_var, width, source, source_width))
    reg_by_target = {r.target: row for r, row in zip(sync_regs, regs)}
    outputs = []
    cone_results = []
    seen_result = set()
    for name, spec_width in out_ports:
        signal = design.signals.get(name)
        if signal is None:
            return None
        reg_row = reg_by_target.get(signal)
        if reg_row is not None:
            outputs.append((name, spec_width, "reg", reg_row[0]))
            continue
        var = target_var.get(signal)
        if var is not None:
            outputs.append((name, spec_width, "cone", var))
            if var not in seen_result:
                seen_result.add(var)
                cone_results.append((var, signal.width))
            continue
        if signal in names:
            return None  # output aliases a driven input
        outputs.append((name, spec_width, "static", signal.value.resize(spec_width)))
    bindings = [(var, signal.width) for (_n, _w, signal, var) in inputs]
    bindings += [(var, width) for (var, _nv, width, _r) in regs]
    cycle_program = build_program(
        bindings,
        cone_assigns + next_assigns,
        [(next_var, width) for (_v, next_var, width, _r) in regs],
    )
    if cycle_program is None:
        return None
    out_program = None
    if cone_results:
        out_program = build_program(bindings, cone_assigns, cone_results)
        if out_program is None:
            return None
    return SeqPlan(
        tuple(inputs),
        tuple(outputs),
        tuple(regs),
        cycle_program,
        out_program,
    )


def _seq_observe(plan: SeqPlan, input_cols, reg_cols, lanes: int):
    """Observed output columns for the current (post-edge) state."""
    cone_cols = {}
    if plan.out_program is not None:
        cone_cols = plan.out_program.run({**input_cols, **reg_cols}, lanes)
    observed = {}
    for name, spec_width, kind, payload in plan.outputs:
        mask = _mask(spec_width)
        if kind == "reg":
            observed[name] = [v & mask for v in reg_cols[payload]]
        elif kind == "cone":
            observed[name] = [v & mask for v in cone_cols[payload]]
        else:
            observed[name] = [payload] * lanes
    return observed


def run_sequences(plan: SeqPlan, sequences, *, observe_reset: bool = False):
    """Run independent stimulus *sequences* through a sequential plan.

    Every sequence is a list of per-cycle ``{input: int}`` dicts; all
    sequences must have equal length. Returns ``(reset_row, cycles)`` where
    *cycles[t][port][lane]* is the post-edge observation for cycle ``t`` and
    *reset_row* is the same shape observed right after reset (inputs zero,
    registers at their reset values) — ``None`` unless *observe_reset*.

    X-carrying values are not accepted here: a clocked design carries state
    across cycles, so one X vector would contaminate a whole lane; callers
    keep such sequences on the event kernel.
    """
    lanes = len(sequences)
    if lanes == 0:
        return (None, [])
    length = len(sequences[0])
    if any(len(seq) != length for seq in sequences):
        raise ValueError("all sequences must have equal length")
    reg_cols = {
        var: [reset_bits] * lanes for (var, _nv, _w, reset_bits) in plan.regs
    }
    reset_row = None
    if observe_reset:
        zero_cols = {var: [0] * lanes for (_n, _w, _s, var) in plan.inputs}
        reset_row = _seq_observe(plan, zero_cols, reg_cols, lanes)
    cycles = []
    for t in range(length):
        input_cols = {}
        for name, spec_width, signal, var in plan.inputs:
            column = _masked_column(
                [seq[t][name] for seq in sequences], spec_width, signal
            )
            if column is None:
                raise ValueError("X-carrying sequential stimulus is not batchable")
            input_cols[var] = column
        next_cols = plan.cycle_program.run({**input_cols, **reg_cols}, lanes)
        reg_cols = {
            var: next_cols[next_var]
            for (var, next_var, _w, _r) in plan.regs
        }
        cycles.append(_seq_observe(plan, input_cols, reg_cols, lanes))
    return reset_row, cycles


def simulate_sequences(design: Design, sequences, *, inputs, outputs,
                       observe_reset: bool = False):
    """Plan and run independent stimulus sequences over a clocked design.

    ``None`` when the design is not batchable; otherwise the
    ``(reset_row, cycles)`` pair from :func:`run_sequences`.
    """
    plan = plan_sequential(design, inputs, outputs)
    if plan is None:
        return None
    return run_sequences(plan, sequences, observe_reset=observe_reset)


# --------------------------------------------------------------------------
# testbench emulation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchOutcome:
    """Synthesized simulation observables for one testbench bundle."""

    output_lines: tuple[str, ...]
    end_time: int
    finished_cleanly: bool
    vectors: int
    demotions: int
    mode: str


def _check_case(language, case_no: int, out_ports, expected, observed,
                suffix: str, lines: list[str]) -> int:
    """Emulate one case's checks; returns the number of failing checks."""
    from repro.eda.toolchain import Language

    failures = 0
    for name, spec_width in out_ports:
        want_raw = expected[name]
        want = want_raw & _mask(spec_width)
        got = observed[name]
        if language is Language.VERILOG:
            # `!==` case-compare against a fully-known literal
            if isinstance(got, Logic):
                fail = got.has_x or got.bits != want
                got_str = got.format("d")
            else:
                fail = got != want
                got_str = str(got)
            if fail:
                failures += 1
                lines.append(
                    f"Test Case {case_no} Failed: {name} should be "
                    f"{want_raw}{suffix}, got {got_str}"
                )
        else:
            # VHDL `/=` reports only when a *known* bit differs
            if isinstance(got, Logic):
                fail = bool((got.bits ^ want) & ~got.xmask & _mask(spec_width))
            else:
                fail = got != want
            if fail:
                failures += 1
                lines.append(
                    f"ERROR: Test Case {case_no} Failed: {name} should be "
                    f"{want_raw}{suffix}"
                )
    return failures


def run_bundle(plan, bundle) -> BatchOutcome | None:
    """Evaluate a testbench bundle against its plan.

    Emulates the generated testbench's drive/settle/check schedule over the
    batch results, producing the exact output lines, end time, and
    clean-finish flag the event kernel would report for the same text.
    """
    from repro.designs import tbgen
    from repro.eda.toolchain import Language

    language = bundle.language
    out_ports = [(p.name, p.width) for p in bundle.spec.outputs]
    lines: list[str] = []
    errors = 0
    demotions = 0
    n = len(bundle.stimulus)
    if not bundle.clocked:
        if not isinstance(plan, CombPlan):
            return None
        rows, demotions = run_vectors(plan, list(bundle.stimulus))
        for case_no, (row, expected) in enumerate(
            zip(rows, bundle.expected), start=1
        ):
            errors += _check_case(
                language, case_no, out_ports, expected, row, "", lines
            )
        end_time = n * tbgen.SETTLE_NS
    else:
        if not isinstance(plan, SeqPlan):
            return None
        observe_reset = bundle.reset_outputs is not None
        reset_row, cycles = run_sequences(
            plan, [list(bundle.stimulus)], observe_reset=observe_reset
        )
        if observe_reset:
            observed = {name: col[0] for name, col in reset_row.items()}
            errors += _check_case(
                language, 0, out_ports, bundle.reset_outputs, observed,
                " right after reset", lines,
            )
        for case_no, (cycle, expected) in enumerate(
            zip(cycles, bundle.expected), start=1
        ):
            observed = {name: col[0] for name, col in cycle.items()}
            errors += _check_case(
                language, case_no, out_ports, expected, observed,
                f" at cycle {case_no}", lines,
            )
        end_time = (
            tbgen.RESET_CYCLES * 2 * tbgen.HALF_PERIOD_NS
            + n * 2 * tbgen.HALF_PERIOD_NS
        )
    if errors == 0:
        lines.append(tbgen.PASS_MESSAGE)
    elif language is Language.VERILOG:
        lines.append(f"{errors} test case(s) failed.")
    else:
        lines.append("ERROR: Some test cases failed.")
    return BatchOutcome(
        output_lines=tuple(lines),
        end_time=end_time,
        finished_cleanly=language is Language.VERILOG,
        vectors=n,
        demotions=demotions,
        mode=plan.mode,
    )
