"""The stratified event-queue simulation kernel.

One simulation time step processes, in order:

1. the **active region** — runnable processes execute until none remain;
   blocking assignments update signals immediately and wake sensitive
   processes back into the active region (delta cycles);
2. the **NBA region** — values staged by nonblocking assignments (and VHDL
   signal assignments) are committed; any resulting wake-ups re-enter the
   active region of the same time step;
3. **time advance** — the earliest future event time becomes current.

Processes communicate with the kernel by *yielding* scheduling commands:
:class:`Delay`, :class:`WaitChange`, or :class:`Finish`. The kernel enforces a
delta-cycle limit and a wall-step limit so that defective generated code
(e.g. zero-delay oscillation introduced by a mutation) terminates with a
diagnosable :class:`SimulationError` instead of hanging — mirroring the
iteration limits of commercial simulators.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.runtime import Cone, Design, Edge, Process, Sensitivity, Signal
from repro.sim.values import Logic


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress (e.g. delta overflow)."""


#: sentinel distinguishing "no command" from a process that yielded None
_NO_COMMAND = object()


class SimulationFinished(Exception):
    """Raised internally when a process executes ``$finish``."""


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for *ticks* time units."""

    ticks: int


@dataclass(frozen=True)
class WaitChange:
    """Suspend until any of the sensitivity entries fires."""

    entries: tuple[Sensitivity, ...]

    @staticmethod
    def on(*signals: Signal) -> "WaitChange":
        return WaitChange(tuple(Sensitivity(s) for s in signals))

    @staticmethod
    def edges(entries: Iterable[tuple[Signal, Edge]]) -> "WaitChange":
        return WaitChange(tuple(Sensitivity(s, e) for s, e in entries))


@dataclass(frozen=True)
class Finish:
    """Terminate the whole simulation (``$finish`` / final ``wait``)."""

    exit_code: int = 0


@dataclass
class SimStats:
    """Bookkeeping the harness reports alongside simulation output."""

    end_time: int = 0
    process_activations: int = 0
    signal_updates: int = 0
    delta_cycles: int = 0
    cone_calls: int = 0
    batch_calls: int = 0
    batch_vectors: int = 0
    batch_demotions: int = 0
    finished_cleanly: bool = False


class Simulator:
    """Drives one elaborated :class:`~repro.sim.runtime.Design` to completion."""

    #: delta cycles allowed within one time step before declaring oscillation
    DELTA_LIMIT = 10_000
    #: process activations allowed within one time step (zero-delay loops
    #: between processes never drain the active queue, so the NBA-boundary
    #: delta counter alone cannot catch them)
    STEP_ACTIVATION_LIMIT = 100_000
    #: total process activations allowed in one run
    ACTIVATION_LIMIT = 5_000_000

    def __init__(
        self,
        design: Design,
        *,
        max_time: int = 1_000_000,
        step_activation_limit: int | None = None,
    ):
        self.design = design
        self.max_time = max_time
        if step_activation_limit is not None:
            self.STEP_ACTIVATION_LIMIT = step_activation_limit
        self.time = 0
        self.output: list[str] = []
        self.stats = SimStats()
        self._active: list[Process] = []
        #: staged NBA commits as (signal, value, compute) triples applied in
        #: order; plain value commits carry ``compute=None``
        self._nba: list[tuple[Signal, "Logic | None", "object"]] = []
        self._future: list[tuple[int, int, Process]] = []
        self._seq = 0
        self._finished = False
        self._traced: list[Signal] = []

    # -- public API ------------------------------------------------------------

    def trace(self, *signals: Signal) -> None:
        """Record (time, value) history for the given signals."""
        for signal in signals:
            if signal.trace is None:
                signal.trace = [(self.time, signal.value)]
            self._traced.append(signal)

    def run(self) -> SimStats:
        """Run until ``$finish``, event exhaustion, or ``max_time``."""
        for process in self.design.processes:
            process.start(self)
            self._active.append(process)
        while not self._finished:
            self._run_time_step()
            if self._finished:
                break
            if not self._future:
                break
            next_time = self._future[0][0]
            if next_time > self.max_time:
                break
            self.time = next_time
            while self._future and self._future[0][0] == self.time:
                __, __, process = heapq.heappop(self._future)
                self._active.append(process)
        self.stats.end_time = self.time
        return self.stats

    # -- process-facing operations (used by elaborated code) ---------------------

    def write_signal(self, signal: Signal, value: Logic) -> None:
        """Blocking assignment: immediate update plus wake-ups."""
        # Signal._set inlined: this is the hottest kernel entry point. The
        # equality check compares fields directly (widths match post-resize),
        # skipping the dataclass __eq__ tuple build.
        old = signal._value
        new = value if value.width == signal.width else value.resize(signal.width)
        if new is old or (new.bits == old.bits and new.xmask == old.xmask):
            return
        signal._value = new
        self.stats.signal_updates += 1
        if signal.trace is not None:
            signal.trace.append((self.time, new))
        if signal.cones:
            active = self._active
            for cone in signal.cones:
                if not cone.queued:
                    cone.queued = True
                    active.append(cone)
        if signal.waiters:
            self._wake_waiters(signal, old)

    def write_signal_bits(self, signal: Signal, bits: int) -> None:
        """Two-state blocking assignment from a generated cone.

        *bits* is already masked to the signal width by codegen, so the write
        skips the Logic construction entirely when the value is unchanged —
        the common case once a cone has settled.
        """
        old = signal._value
        if old.bits == bits and not old.xmask:
            return
        new = Logic._make(signal.width, bits, 0)
        signal._value = new
        self.stats.signal_updates += 1
        if signal.trace is not None:
            signal.trace.append((self.time, new))
        if signal.cones:
            active = self._active
            for cone in signal.cones:
                if not cone.queued:
                    cone.queued = True
                    active.append(cone)
        if signal.waiters:
            self._wake_waiters(signal, old)

    def schedule_nba(self, signal: Signal, value: Logic) -> None:
        """Nonblocking assignment of a whole-signal value (NBA region commit)."""
        self._nba.append((signal, value, None))

    def schedule_nba_update(self, signal: Signal, compute) -> None:
        """Nonblocking read-modify-write (bit/part-select targets).

        *compute* receives the signal's value at commit time and returns the
        new value, so several NBAs to disjoint bit ranges of one signal in the
        same time step all take effect (last writer wins per bit, in program
        order — the IEEE 1364 rule).
        """
        self._nba.append((signal, None, compute))

    def schedule_write(self, signal: Signal, value: Logic, delay: int) -> None:
        """Schedule a one-shot signal write *delay* ticks in the future.

        Implements VHDL's non-blocking ``target <= value after T`` inside a
        process: the writing process continues immediately while the update
        fires later (transport semantics; pending writes are not cancelled).
        """

        def factory(sim, signal=signal, value=value):
            def gen():
                sim.write_signal(signal, value)
                return
                yield  # pragma: no cover - generator marker

            return gen()

        writer = Process(f"after-write:{signal.name}", factory)
        writer.start(self)
        self._seq += 1
        heapq.heappush(self._future, (self.time + max(delay, 0), self._seq, writer))

    def display(self, text: str) -> None:
        self.output.append(text)

    # -- internals -----------------------------------------------------------------

    def _wake_waiters(self, signal: Signal, old: Logic) -> None:
        waiters = signal.waiters
        if not waiters:
            return
        new = signal._value
        # _unblock mutates the dict, so collect matches before waking
        woken = None
        for process, entry in waiters.items():
            if type(entry) is list:
                if not any(e.matches(old, new) for e in entry):
                    continue
            elif entry.edge is not Edge.ANY and not entry.matches(old, new):
                continue
            if woken is None:
                woken = [process]
            else:
                woken.append(process)
        if woken is not None:
            for process in woken:
                self._unblock(process)

    def _unblock(self, process: Process) -> None:
        for entry in process.waiting_on:
            entry.signal.waiters.pop(process, None)
        process.waiting_on = []
        self._active.append(process)

    def _block_on(self, process: Process, entries: tuple[Sensitivity, ...]) -> None:
        process.waiting_on = list(entries)
        for entry in entries:
            waiters = entry.signal.waiters
            existing = waiters.get(process)
            if existing is None:
                waiters[process] = entry
            elif type(existing) is list:
                existing.append(entry)
            else:
                waiters[process] = [existing, entry]

    def _run_time_step(self) -> None:
        deltas = 0
        step_activations = 0
        active = self._active  # mutated in place only — safe to alias
        stats = self.stats
        while active or self._nba:
            while active and not self._finished:
                process = active.pop()
                step_activations += 1
                if process.__class__ is Cone:
                    # one straight-line settle call replaces the member
                    # processes' generator dispatch + waiter bookkeeping
                    process.queued = False
                    stats.cone_calls += 1
                    process.fn(self)
                # -- one process activation, inlined (the hot loop) --
                elif not process.done and process.generator is not None:
                    stats.process_activations += 1
                    if stats.process_activations > self.ACTIVATION_LIMIT:
                        raise SimulationError(
                            "process activation limit exceeded; runaway simulation"
                        )
                    try:
                        command = next(process.generator)
                    except StopIteration:
                        process.done = True
                        command = _NO_COMMAND
                    except SimulationFinished:
                        self._finish()
                        command = _NO_COMMAND
                    if command is not _NO_COMMAND:
                        cls = command.__class__  # frozen types: exact-class dispatch
                        if cls is WaitChange:
                            if not command.entries:
                                # empty sensitivity: process can never resume
                                process.done = True
                            else:
                                self._block_on(process, command.entries)
                        elif cls is Delay:
                            if command.ticks < 0:
                                raise SimulationError(
                                    f"negative delay {command.ticks}"
                                )
                            self._seq += 1
                            heapq.heappush(
                                self._future,
                                (self.time + command.ticks, self._seq, process),
                            )
                        elif cls is Finish:
                            self._finish()
                        else:
                            raise SimulationError(
                                f"process {process.name} yielded {command!r}"
                            )
                if step_activations > self.STEP_ACTIVATION_LIMIT:
                    raise SimulationError(
                        f"step activation limit ({self.STEP_ACTIVATION_LIMIT}) "
                        f"exceeded at time {self.time}: combinational "
                        "oscillation (zero-delay loop) detected"
                    )
            if self._finished:
                return
            if self._nba:
                updates, self._nba = self._nba, []
                for signal, value, compute in updates:
                    if compute is not None:
                        value = compute(signal._value)
                    self.write_signal(signal, value)
            deltas += 1
            stats.delta_cycles += 1
            if deltas > self.DELTA_LIMIT:
                raise SimulationError(
                    f"delta-cycle limit exceeded at time {self.time}: "
                    "combinational oscillation (zero-delay loop) detected"
                )

    def _finish(self) -> None:
        self._finished = True
        self.stats.finished_cleanly = True
