"""Compile-at-elaboration tier: HDL ASTs → Python closures.

The interpreters in :mod:`repro.sim.elab_verilog` / :mod:`repro.sim.elab_vhdl`
re-walk expression trees with ``isinstance`` dispatch on every process
activation. This package lowers already-elaborated expressions and statement
bodies into plain Python closures *once*, at elaboration time: identifier
lookups, context widths, operator dispatch, and select bounds are all
resolved statically, so each kernel activation runs straight-line closure
calls instead of a recursive tree walk.

The contract with the interpreters is strict observational equivalence:

* a construct the compiler cannot lower statically (or whose diagnostics the
  interpreter emits at *runtime*) falls back, per expression or statement, to
  a closure that delegates to the interpreter — never changing what is
  reported or when;
* compilation itself never emits diagnostics and never raises out of the
  elaborator (integration sites snapshot the collector and revert to the
  interpreter on any compile-time surprise);
* ``REPRO_SIM_INTERP=1`` disables the tier globally, which is how the
  differential tests drive both engines over the same designs.

On top of the closure tier sits the *levelized* tier (:mod:`.level` +
:mod:`.twostate`): static combinational cones are topologically sorted at
elaboration and emitted as straight-line generated Python, with a two-state
masked-int fast path while no X/Z is live on the cone's inputs. Its escape
hatches follow the same convention:

* ``REPRO_SIM_NO_LEVEL=1`` disables cone formation (closure tier only);
* ``REPRO_SIM_NO_TWOSTATE=1`` keeps cones but forces their four-state
  closure bodies (for isolating the int fast path);
* ``REPRO_SIM_INTERP=1`` still wins over everything.

The fourth tier (:mod:`repro.sim.batch` + :mod:`.vector`) re-lowers cone
emits across the stimulus axis — numpy ``uint64`` lanes when numpy is
importable, a masked-int list loop otherwise — and has two more hatches:

* ``REPRO_SIM_NO_BATCH=1`` disables batched stimulus evaluation entirely;
* ``REPRO_SIM_NO_NUMPY=1`` keeps batching but forces the pure-Python list
  fallback (the same path taken when numpy is not installed).
"""

from __future__ import annotations

import os


def interpreter_forced() -> bool:
    """True when ``REPRO_SIM_INTERP`` requests the pure interpreter tier."""
    return os.environ.get("REPRO_SIM_INTERP", "0") not in ("", "0")


def level_disabled() -> bool:
    """True when ``REPRO_SIM_NO_LEVEL`` turns off the levelized cone tier."""
    return os.environ.get("REPRO_SIM_NO_LEVEL", "0") not in ("", "0")


def twostate_disabled() -> bool:
    """True when ``REPRO_SIM_NO_TWOSTATE`` forces four-state cone bodies."""
    return os.environ.get("REPRO_SIM_NO_TWOSTATE", "0") not in ("", "0")


def batch_disabled() -> bool:
    """True when ``REPRO_SIM_NO_BATCH`` turns off the batch stimulus tier."""
    return os.environ.get("REPRO_SIM_NO_BATCH", "0") not in ("", "0")


def numpy_disabled() -> bool:
    """True when ``REPRO_SIM_NO_NUMPY`` forces the list-mode batch fallback."""
    return os.environ.get("REPRO_SIM_NO_NUMPY", "0") not in ("", "0")
