"""Two-state (masked-int) expression emitters for generated cone bodies.

The levelized tier (:mod:`repro.sim.compile.level`) stitches cone member
expressions into one straight-line function. When no X/Z is live on the
cone's inputs, four-state :class:`~repro.sim.values.Logic` semantics
collapse to plain unsigned integer arithmetic masked to the operand width —
so these emitters lower an HDL expression to Python *source* computing the
member's value as an int, mirroring the interpreter's width/context rules
(:func:`repro.sim.elab_verilog._eval`, :func:`repro.sim.elab_vhdl._eval`)
construct for construct.

The soundness invariant is **known inputs ⇒ known outputs**: any construct
that can produce X from fully-known operands (division by a non-constant
divisor, out-of-range or dynamic selects, X literals) has no two-state
lowering — :class:`NoEmit` — and demotes its whole cone to the four-state
closure body. The emitters therefore never need to *represent* X; the cone
prologue's aggregated ``xmask`` test guarantees the inputs are known before
this code runs.

Emitters return ``(source, width)`` where ``source`` is a parenthesized
Python expression over the local names supplied in *names* (one per read
signal), and the int value is exactly ``interpreter_result.bits``.
"""

from __future__ import annotations

from repro.sim.runtime import Signal
from repro.sim.values import Logic
from repro.verilog import ast as vast
from repro.vhdl import ast as hast


class NoEmit(Exception):
    """The expression has no two-state lowering; use the four-state body."""


#: cap on operand widths in generated source — beyond this the embedded
#: mask literals dominate the code object and the int fast path stops
#: paying for itself; wider designs keep the four-state cone body
MAX_EMIT_WIDTH = 256


def _mask(width: int) -> int:
    if not 0 < width <= MAX_EMIT_WIDTH:
        raise NoEmit
    return (1 << width) - 1


def _lit(value: Logic) -> tuple[str, int]:
    """A fully-known Logic as an int literal."""
    if value.xmask or value.width > MAX_EMIT_WIDTH:
        raise NoEmit
    return repr(value.bits), value.width


# --------------------------------------------------------------------------
# Verilog (mirrors elab_verilog._eval)
# --------------------------------------------------------------------------


def verilog_expr(expr, scope, ctxw, names) -> tuple[str, int] | None:
    """Two-state source for a Verilog expression, or None.

    *names* maps every readable :class:`Signal` to the local variable
    holding its known ``bits``; *ctxw* is the assignment-context width.
    """
    try:
        return _v(expr, scope, ctxw, names)
    except NoEmit:
        return None
    except Exception:
        return None


def _v(expr, scope, ctxw, names) -> tuple[str, int]:
    if isinstance(expr, vast.Number):
        return _lit(expr.value)
    if isinstance(expr, vast.StringLiteral):
        data = expr.value.encode("ascii", "replace") or b"\0"
        return _lit(Logic.from_int(int.from_bytes(data, "big"),
                                   max(8, 8 * len(data))))
    if isinstance(expr, vast.Identifier):
        resolved = scope.resolve(expr.name)
        if isinstance(resolved, Signal):
            local = names.get(resolved)
            if local is None or resolved.width > MAX_EMIT_WIDTH:
                raise NoEmit
            return local, resolved.width
        if isinstance(resolved, Logic):
            return _lit(resolved)
        raise NoEmit
    if isinstance(expr, vast.Unary):
        return _v_unary(expr, scope, ctxw, names)
    if isinstance(expr, vast.Binary):
        return _v_binary(expr, scope, ctxw, names)
    if isinstance(expr, vast.Ternary):
        # the condition is fully known here, so only the taken branch counts
        cond, _ = _v(expr.cond, scope, None, names)
        t_src, t_w = _v(expr.if_true, scope, ctxw, names)
        f_src, f_w = _v(expr.if_false, scope, ctxw, names)
        return f"({t_src} if {cond} else {f_src})", max(t_w, f_w)
    if isinstance(expr, vast.Concat):
        parts = [_v(part, scope, None, names) for part in expr.parts]
        if not parts:
            raise NoEmit
        total = sum(w for _, w in parts)
        _mask(total)  # width cap
        pieces = []
        offset = total
        for src, width in parts:
            offset -= width
            pieces.append(f"({src} << {offset})" if offset else src)
        return "(" + " | ".join(pieces) + ")", total
    if isinstance(expr, vast.Replicate):
        from repro.sim.compile.verilog import _static_int

        count = _static_int(expr.count, scope)
        if count is None or count <= 0 or count > 4096:
            raise NoEmit
        src, width = _v(expr.value, scope, None, names)
        total = count * width
        _mask(total)
        # v * repunit concatenates `count` copies of a known w-bit value
        repunit = ((1 << total) - 1) // ((1 << width) - 1)
        return f"({src} * {repunit})", total
    if isinstance(expr, (vast.BitSelect, vast.PartSelect,
                         vast.IndexedPartSelect)):
        return _v_select(expr, scope, names)
    if isinstance(expr, vast.SystemFunctionCall):
        if expr.name in ("$signed", "$unsigned") and len(expr.args) == 1:
            # mirrors _eval_system_function: no context width on the argument
            return _v(expr.args[0], scope, None, names)
        if expr.name == "$clog2" and len(expr.args) == 1:
            src, _ = _v(expr.args[0], scope, None, names)
            return f"(max(0, ({src} - 1).bit_length()))", 32
        raise NoEmit  # $time / $random are impure; others diagnose
    raise NoEmit


def _v_unary(expr, scope, ctxw, names) -> tuple[str, int]:
    from repro.sim import elab_verilog as ev

    op = expr.op
    inner_ctx = ctxw if op in ev._CONTEXT_UNARY else None
    src, width = _v(expr.operand, scope, inner_ctx, names)
    if inner_ctx is not None:
        width = max(width, inner_ctx)
    if op == "+":
        return src, width
    if op == "-":
        return f"((-{src}) & {_mask(width)})", width
    if op == "~":
        return f"({src} ^ {_mask(width)})", width
    if op == "!":
        return f"(0 if {src} else 1)", 1
    if op == "&":
        return f"(1 if {src} == {_mask(width)} else 0)", 1
    if op == "|":
        return f"(1 if {src} else 0)", 1
    if op == "^":
        return f"(({src}).bit_count() & 1)", 1
    if op == "~&":
        return f"(0 if {src} == {_mask(width)} else 1)", 1
    if op == "~|":
        return f"(0 if {src} else 1)", 1
    if op == "~^":
        return f"((({src}).bit_count() & 1) ^ 1)", 1
    raise NoEmit


def _v_binary(expr, scope, ctxw, names) -> tuple[str, int]:
    from repro.sim import elab_verilog as ev

    op = expr.op
    if op in ev._CONTEXT_BINARY:
        l_src, lw = _v(expr.lhs, scope, ctxw, names)
        r_src, rw = _v(expr.rhs, scope, ctxw, names)
        width = max(lw, rw, ctxw or 0)
        if op == "+":
            return f"(({l_src} + {r_src}) & {_mask(width)})", width
        if op == "-":
            return f"(({l_src} - {r_src}) & {_mask(width)})", width
        if op == "*":
            return f"(({l_src} * {r_src}) & {_mask(width)})", width
        if op == "&":
            return f"({l_src} & {r_src})", width
        if op == "|":
            return f"({l_src} | {r_src})", width
        if op == "^":
            return f"({l_src} ^ {r_src})", width
        if op in ("/", "%"):
            # only a known non-zero constant divisor keeps the result known
            from repro.sim.compile.verilog import _static_int

            divisor = _static_int(expr.rhs, scope)
            if not divisor:
                raise NoEmit
            _mask(width)
            py_op = "//" if op == "/" else "%"
            return f"({l_src} {py_op} {divisor})", width
        raise NoEmit
    if op in ("<<", ">>", "<<<", ">>>"):
        l_src, lw = _v(expr.lhs, scope, ctxw, names)
        width = max(lw, ctxw) if ctxw is not None else lw
        r_src, _ = _v(expr.rhs, scope, None, names)
        if op in ("<<", "<<<"):
            return (
                f"((({l_src} << {r_src}) & {_mask(width)})"
                f" if {r_src} < {width} else 0)",
                width,
            )
        if op == ">>":
            _mask(width)
            return f"({l_src} >> {r_src})", width
        # >>> arithmetic: fill with the (known) top bit of the lhs
        m = _mask(width)
        shift = f"min({r_src}, {width})"
        fill = f"(({m} ^ ({m} >> {shift})) if ({l_src} >> {width - 1}) & 1 else 0)"
        return f"(({l_src} >> {shift}) | {fill})", width
    if op == "**":
        l_src, lw = _v(expr.lhs, scope, None, names)
        r_src, _rw = _v(expr.rhs, scope, None, names)
        width = max(lw, 32)
        return f"(({l_src} ** min({r_src}, 64)) & {_mask(width)})", width
    # self-determined operands, 1-bit results
    l_src, _lw = _v(expr.lhs, scope, None, names)
    r_src, _rw = _v(expr.rhs, scope, None, names)
    # zero-extended ints compare identically at any common width
    if op in ("==", "==="):
        return f"(1 if {l_src} == {r_src} else 0)", 1
    if op in ("!=", "!=="):
        return f"(1 if {l_src} != {r_src} else 0)", 1
    if op == "<":
        return f"(1 if {l_src} < {r_src} else 0)", 1
    if op == "<=":
        return f"(1 if {l_src} <= {r_src} else 0)", 1
    if op == ">":
        return f"(1 if {l_src} > {r_src} else 0)", 1
    if op == ">=":
        return f"(1 if {l_src} >= {r_src} else 0)", 1
    if op == "&&":
        return f"(1 if {l_src} != 0 and {r_src} != 0 else 0)", 1
    if op == "||":
        return f"(1 if {l_src} != 0 or {r_src} != 0 else 0)", 1
    raise NoEmit


def _v_select(expr, scope, names) -> tuple[str, int]:
    from repro.sim.compile.verilog import _static_int

    resolved = scope.resolve(expr.target)
    if isinstance(resolved, Logic):
        # parameter base with static bounds folds to a literal
        base_width = resolved.width
        base_src = None
    elif isinstance(resolved, Signal):
        base_width = resolved.width
        base_src = names.get(resolved)
        if base_src is None or base_width > MAX_EMIT_WIDTH:
            raise NoEmit
    else:
        raise NoEmit
    if isinstance(expr, vast.BitSelect):
        index = _static_int(expr.index, scope)
        if index is None or not 0 <= index < base_width:
            raise NoEmit  # dynamic or out-of-range reads X
        msb = lsb = index
    elif isinstance(expr, vast.PartSelect):
        msb = _static_int(expr.msb, scope)
        lsb = _static_int(expr.lsb, scope)
        if msb is None or lsb is None:
            raise NoEmit
    else:  # IndexedPartSelect
        start = _static_int(expr.base, scope)
        width = _static_int(expr.width, scope)
        if start is None or width is None or width <= 0:
            raise NoEmit
        lsb = start if expr.ascending else start - width + 1
        msb = lsb + width - 1
    if not 0 <= lsb <= msb < base_width:
        raise NoEmit  # any out-of-range bit reads X
    width = msb - lsb + 1
    if base_src is None:
        return _lit(resolved.slice(msb, lsb))
    mask = _mask(width)
    if lsb:
        return f"(({base_src} >> {lsb}) & {mask})", width
    if msb == base_width - 1:
        return base_src, width
    return f"({base_src} & {mask})", width


# --------------------------------------------------------------------------
# VHDL (mirrors elab_vhdl._eval / _eval_binary / _eval_call)
# --------------------------------------------------------------------------


def vhdl_expr(expr, scope, hint, names) -> tuple[str, int] | None:
    """Two-state source for a VHDL expression, or None.

    *hint* is the width context forwarded to aggregates, mirroring
    ``_eval_with_width``.
    """
    try:
        return _h(expr, scope, hint, names)
    except NoEmit:
        return None
    except Exception:
        return None


def _h(expr, scope, hint, names) -> tuple[str, int]:
    from repro.sim import elab_vhdl as evh

    if isinstance(expr, hast.IntLiteral):
        return repr(expr.value & 0xFFFFFFFF), 32
    if isinstance(expr, hast.CharLiteral):
        known = evh._STD_LOGIC_CHARS.get(expr.value.upper())
        if known is None:
            raise NoEmit
        return _lit(known)
    if isinstance(expr, hast.StringLiteral):
        return _lit(evh._string_to_logic(expr))
    if isinstance(expr, hast.Aggregate):
        # only the (others => '0'/'1') form with a width context
        if hint is None or expr.elements or expr.others is None:
            raise NoEmit
        if not isinstance(expr.others, hast.CharLiteral):
            raise NoEmit
        fill = evh._STD_LOGIC_CHARS.get(expr.others.value.upper())
        if fill is None:
            raise NoEmit
        return repr(_mask(hint) if fill.bits else 0), hint
    if isinstance(expr, hast.Name):
        return _h_name(expr.name, scope, names)
    if isinstance(expr, (hast.Indexed, hast.Sliced)):
        return _h_select(expr, scope, names)
    if isinstance(expr, hast.Call):
        return _h_call(expr, scope, names)
    if isinstance(expr, hast.Attribute):
        return _h_attribute(expr, scope)
    if isinstance(expr, hast.Unary):
        src, width = _h(expr.operand, scope, None, names)
        if expr.op == "not":
            return f"({src} ^ {_mask(width)})", width
        if expr.op == "-":
            return f"((-{src}) & {_mask(width)})", width
        if expr.op == "+":
            return src, width
        if expr.op == "abs":
            half = 1 << (width - 1)
            return (
                f"({src} if {src} < {half} else ((1 << {width}) - {src}))",
                width,
            )
        raise NoEmit
    if isinstance(expr, hast.Binary):
        return _h_binary(expr, scope, names)
    raise NoEmit


def _h_name(name, scope, names) -> tuple[str, int]:
    # concurrent contexts have no variables or loop vars (_resolve_name order)
    if name in scope.constants:
        return _lit(scope.constants[name])
    signal = scope.signals.get(name)
    if signal is not None:
        local = names.get(signal)
        if local is None or signal.width > MAX_EMIT_WIDTH:
            raise NoEmit
        return local, signal.width
    if name == "true":
        return "1", 1
    if name == "false":
        return "0", 1
    raise NoEmit


def _h_static_int(expr, scope) -> int | None:
    """Fold an index/length expression to a known int, or None."""
    if isinstance(expr, hast.IntLiteral):
        return expr.value
    if isinstance(expr, hast.Name):
        value = scope.constants.get(expr.name)
        if isinstance(value, Logic) and not value.xmask:
            return value.to_int()
    if isinstance(expr, hast.Unary) and expr.op == "-":
        inner = _h_static_int(expr.operand, scope)
        return None if inner is None else -inner
    return None


def _h_select(expr, scope, names) -> tuple[str, int]:
    from repro.sim import elab_vhdl as evh

    constant = scope.constants.get(expr.name)
    signal = scope.signals.get(expr.name)
    if constant is not None:
        base_width = constant.width
        base_src = None
    elif signal is not None:
        base_width = signal.width
        base_src = names.get(signal)
        if base_src is None or base_width > MAX_EMIT_WIDTH:
            raise NoEmit
    else:
        raise NoEmit
    info = scope.types.get(expr.name) or evh._TypeInfo(width=base_width)
    if isinstance(expr, hast.Indexed):
        index = _h_static_int(expr.index, scope)
        if index is None:
            raise NoEmit
        msb = lsb = info.bit_offset(index)
    else:
        left = _h_static_int(expr.left, scope)
        right = _h_static_int(expr.right, scope)
        if left is None or right is None:
            raise NoEmit
        msb, lsb = info.slice_offsets(left, right)
    if not 0 <= lsb <= msb < base_width:
        raise NoEmit  # out-of-range bits read X
    width = msb - lsb + 1
    if base_src is None:
        return _lit(constant.slice(msb, lsb))
    mask = _mask(width)
    if lsb:
        return f"(({base_src} >> {lsb}) & {mask})", width
    if msb == base_width - 1:
        return base_src, width
    return f"({base_src} & {mask})", width


def _h_call(expr, scope, names) -> tuple[str, int]:
    name = expr.name
    if name in ("to_unsigned", "to_signed", "conv_std_logic_vector", "resize"):
        if len(expr.args) != 2:
            raise NoEmit
        src, width = _h(expr.args[0], scope, None, names)
        length = _h_static_int(expr.args[1], scope)
        if length is None or not 1 <= length <= MAX_EMIT_WIDTH:
            raise NoEmit
        if length < width:
            return f"({src} & {_mask(length)})", length
        return src, length
    if name in ("to_integer", "conv_integer"):
        if len(expr.args) != 1:
            raise NoEmit
        src, width = _h(expr.args[0], scope, None, names)
        if width > 32:
            return f"({src} & {_mask(32)})", 32
        return src, 32
    if name in ("std_logic_vector", "unsigned", "signed", "to_stdlogicvector",
                "to_01"):
        if len(expr.args) != 1:
            raise NoEmit
        return _h(expr.args[0], scope, None, names)
    if name in ("shift_left", "shift_right"):
        if len(expr.args) != 2:
            raise NoEmit
        v_src, width = _h(expr.args[0], scope, None, names)
        c_src, _ = _h(expr.args[1], scope, None, names)
        if name == "shift_left":
            return (
                f"((({v_src} << {c_src}) & {_mask(width)})"
                f" if {c_src} < {width} else 0)",
                width,
            )
        _mask(width)
        return f"({v_src} >> {c_src})", width
    if name == "std_match":
        if len(expr.args) != 2:
            raise NoEmit
        a_src, _aw = _h(expr.args[0], scope, None, names)
        b_src, _bw = _h(expr.args[1], scope, None, names)
        # fully-known vectors: std_match degenerates to equality
        return f"(1 if {a_src} == {b_src} else 0)", 1
    # rising_edge/falling_edge read per-process edge memory; rotates are
    # rare — all keep the four-state body
    raise NoEmit


def _h_attribute(expr, scope) -> tuple[str, int]:
    info = scope.types.get(expr.name)
    if info is None:
        raise NoEmit
    values = {
        "length": info.width,
        "left": info.left,
        "right": info.right,
        "high": max(info.left, info.right),
        "low": min(info.left, info.right),
    }
    if expr.attr not in values:
        raise NoEmit  # 'event / 'last_value need edge memory
    return repr(values[expr.attr] & 0xFFFFFFFF), 32


def _h_operand_width(expr, scope) -> int:
    """Static mirror of elab_vhdl._operand_width (aggregate width hints)."""
    if isinstance(expr, hast.Name):
        info = scope.types.get(expr.name)
        if info is not None:
            return info.width
    if isinstance(expr, hast.StringLiteral) and expr.base in ("", "b"):
        return max(1, len(expr.value.replace("_", "")))
    return 32


def _h_binary(expr, scope, names) -> tuple[str, int]:
    op = expr.op
    l_src, lw = _h(expr.lhs, scope, _h_operand_width(expr.rhs, scope), names)
    r_src, rw = _h(expr.rhs, scope, lw, names)
    width = max(lw, rw)
    if op == "and":
        return f"({l_src} & {r_src})", width
    if op == "or":
        return f"({l_src} | {r_src})", width
    if op == "xor":
        return f"({l_src} ^ {r_src})", width
    if op == "nand":
        return f"(({l_src} & {r_src}) ^ {_mask(width)})", width
    if op == "nor":
        return f"(({l_src} | {r_src}) ^ {_mask(width)})", width
    if op == "xnor":
        return f"(({l_src} ^ {r_src}) ^ {_mask(width)})", width
    if op == "=":
        return f"(1 if {l_src} == {r_src} else 0)", 1
    if op == "/=":
        return f"(1 if {l_src} != {r_src} else 0)", 1
    if op == "<":
        return f"(1 if {l_src} < {r_src} else 0)", 1
    if op == "<=":
        return f"(1 if {l_src} <= {r_src} else 0)", 1
    if op == ">":
        return f"(1 if {l_src} > {r_src} else 0)", 1
    if op == ">=":
        return f"(1 if {l_src} >= {r_src} else 0)", 1
    if op == "+":
        return f"(({l_src} + {r_src}) & {_mask(width)})", width
    if op == "-":
        return f"(({l_src} - {r_src}) & {_mask(width)})", width
    if op == "*":
        _mask(lw + rw)
        return f"({l_src} * {r_src})", lw + rw
    if op == "&":
        _mask(lw + rw)
        if rw:
            return f"(({l_src} << {rw}) | {r_src})", lw + rw
        return l_src, lw
    if op == "**":
        return f"(({l_src} ** min({r_src}, 64)) & {_mask(32)})", 32
    # "/" and mod/rem produce X on a zero divisor even with known inputs
    raise NoEmit
