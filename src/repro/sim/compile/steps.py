"""Shared step machinery for the closure compilers.

Both language compilers lower statement bodies to lists of ``(kind, fn)``
steps. The kinds:

* ``PLAIN`` — ``fn(state) -> None``, executes without suspending;
* ``GEN`` — ``fn(state)`` returns a generator yielding kernel commands;
* ``CMD`` — ``fn`` *is* a prebuilt kernel command object, yielded directly
  (no generator frame needed for static delays/waits).

``state`` is whatever single argument the language's closures take — the
:class:`~repro.sim.kernel.Simulator` for Verilog, the VHDL evaluation
context for VHDL. The machinery only threads it through.

The legacy ``(is_gen, fn)`` tuples still merge correctly because
``False == PLAIN`` and ``True == GEN``.
"""

from __future__ import annotations

PLAIN, GEN, CMD = 0, 1, 2


def merge(steps):
    """Coalesce consecutive plain steps into single closures."""
    merged = []
    run = []
    for kind, fn in steps:
        if kind == PLAIN:
            run.append(fn)
        else:
            if run:
                merged.append((PLAIN, chain(run)))
                run = []
            merged.append((kind, fn))
    if run:
        merged.append((PLAIN, chain(run)))
    return merged


def chain(fns):
    if len(fns) == 1:
        return fns[0]
    fns = tuple(fns)

    def chained(state, fns=fns):
        for fn in fns:
            fn(state)

    return chained


def as_plain(steps):
    """A single non-yielding closure for the steps, or None if any yields."""
    merged = merge(steps)
    if not merged:
        return lambda state: None
    if len(merged) == 1 and merged[0][0] == PLAIN:
        return merged[0][1]
    return None


def as_gen(steps):
    """A generator function running the steps (yields kernel commands).

    Specializes the common one- and two-step shapes so a typical suspension
    (a delay or an event wait around one computation) costs one generator
    frame, not a nested chain of them.
    """
    merged = merge(steps)
    if len(merged) == 1:
        kind, fn = merged[0]
        if kind == GEN:
            return fn
        if kind == CMD:

            def cmd_gen(state, command=fn):
                yield command

            return cmd_gen

        def plain_gen(state, fn=fn):
            fn(state)
            return
            yield  # pragma: no cover - generator marker

        return plain_gen
    if len(merged) == 2:
        (k0, f0), (k1, f1) = merged
        if k0 == CMD and k1 == PLAIN:

            def cmd_then(state, command=f0, fn=f1):
                yield command
                fn(state)

            return cmd_then
        if k0 == PLAIN and k1 == CMD:

            def then_cmd(state, fn=f0, command=f1):
                fn(state)
                yield command

            return then_cmd

    def gen(state, merged=tuple(merged)):
        for kind, fn in merged:
            if kind == PLAIN:
                fn(state)
            elif kind == CMD:
                yield fn
            else:
                yield from fn(state)

    return gen


def flat_steps(merged):
    """The merged steps as a tuple when free of GEN steps, else None.

    A GEN-free body can be driven from a single enclosing generator frame
    (``yield`` the CMD payloads, call the PLAIN closures) — the loop
    constructs use this to avoid allocating nested generators per iteration.
    """
    if any(kind == GEN for kind, _ in merged):
        return None
    return tuple(merged)
