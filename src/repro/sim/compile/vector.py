"""Vector re-lowering of two-state cone bodies: the batch tier's codegen.

The scalar emits produced for the levelized tier (:mod:`.twostate`) are
Python expression strings over masked int locals — one evaluation per
stimulus vector. This module parses those same strings and re-lowers them a
second time across the *vector axis*:

* **numpy mode** — every local becomes a ``uint64`` array of length N (one
  element per stimulus vector) and the expression is rewritten into numpy
  bitwise/arithmetic ops, so all N vectors evaluate in one fused pass.
  Values wider than 64 bits are split into little-endian 64-bit *lanes*
  (``v_l0`` holds bits 63:0, ``v_l1`` bits 127:64, ...), each lane its own
  array; only the closed bitwise subset (names, constants, ``& | ^``,
  muxes, ``== !=``) is lowered for multi-lane values.
* **list mode** — the scalar sources are embedded verbatim in a plain
  ``for`` loop over Python ints. Guaranteed exact (it *is* the scalar
  semantics), used when numpy is unavailable (or ``REPRO_SIM_NO_NUMPY=1``)
  or when the exactness audit below rejects a numpy lowering.

The numpy rewrite is guarded by a per-node **exactness audit**. Scalar
sources compute with unbounded Python ints; uint64 arrays wrap at 2**64.
Each sub-expression is classified:

* ``exact`` — the uint64 value equals the true unbounded value (implies the
  true value fits 64 bits);
* ``congruent`` — the uint64 value equals the true value *modulo 2**64*
  (low 64 bits correct; fine for ``+ - * << & | ^`` whose low bits depend
  only on low bits, wrong anywhere the full value matters);
* ``bool`` — a boolean array from a comparison.

Operations that need full-value semantics (comparisons, right shifts,
division, popcount, truthiness tests) demand ``exact`` operands; since
every assignment is masked to its target width on store, names are always
``exact`` and congruence is laundered out at each cone member boundary.
Any node outside the audited subset rejects the numpy lowering for the
whole program and list mode takes over — never a wrong answer, only a
slower one.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.sim.compile import numpy_disabled

_M64 = (1 << 64) - 1

# -- optional numpy ------------------------------------------------------------

_NUMPY = None
_NUMPY_TRIED = False


def _numpy():
    """The numpy module, or None when it is not importable."""
    global _NUMPY, _NUMPY_TRIED
    if not _NUMPY_TRIED:
        _NUMPY_TRIED = True
        try:
            import numpy
        except Exception:  # pragma: no cover - exercised via REPRO_SIM_NO_NUMPY
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


# -- runtime helpers injected into generated numpy code ------------------------


def _helpers(np):
    c = np.uint64

    def _shl(left, right):
        # numpy shifts with counts >= 64 are C-undefined; the scalar tier
        # produces 0 there (value shifted fully out), so clamp explicitly
        return np.where(right > c(63), c(0), left << (right & c(63)))

    def _shr(left, right):
        return np.where(right > c(63), c(0), left >> (right & c(63)))

    def _pc(x):
        # SWAR popcount over uint64; the final multiply wraps harmlessly
        # because the byte-sum of a 64-bit value is < 256
        x = x - ((x >> c(1)) & c(0x5555555555555555))
        x = (x & c(0x3333333333333333)) + ((x >> c(2)) & c(0x3333333333333333))
        x = (x + (x >> c(4))) & c(0x0F0F0F0F0F0F0F0F)
        return (x * c(0x0101010101010101)) >> c(56)

    def _full(x, n):
        # broadcast a scalar result (constant member) to a full column
        return x if getattr(x, "shape", ()) else np.full(n, x, dtype=np.uint64)

    return {
        "_np": np,
        "_c": c,
        "_w": np.where,
        "_shl": _shl,
        "_shr": _shr,
        "_pc": _pc,
        "_mn": np.minimum,
        "_mx": np.maximum,
        "_full": _full,
    }


# -- the exactness-audited numpy rewriter --------------------------------------


class _Bail(Exception):
    """Internal: this program has no audited numpy lowering."""


def _lanes_for(width: int) -> int:
    return (width + 63) // 64


class _Value:
    """A rewritten sub-expression: per-lane sources plus an exactness kind."""

    __slots__ = ("exprs", "kind", "const")

    def __init__(self, exprs, kind, const=None):
        self.exprs = exprs  # tuple of per-lane source strings (None for const)
        self.kind = kind  # "exact" | "congruent" | "bool" | "const"
        self.const = const  # int for "const", bool for folded comparisons

    @property
    def lanes(self) -> int:
        return len(self.exprs)


def _const(value: int) -> _Value:
    return _Value(None, "const", value)


def _split_const(value: int, lanes: int, *, truncating_ok: bool) -> _Value:
    """Materialize a const at a lane count; bail if high bits would be lost."""
    if value < 0:
        raise _Bail
    if value >> (64 * lanes) and not truncating_ok:
        raise _Bail
    exprs = tuple(
        f"_c({(value >> (64 * i)) & _M64})" for i in range(lanes)
    )
    return _Value(exprs, "exact" if value >> (64 * lanes) == 0 else "congruent")


class _NumpyRewriter:
    """Rewrites one scalar emit source into audited numpy source."""

    def __init__(self, widths: dict[str, int]):
        #: known variable → declared width (bindings and prior assigns)
        self.widths = widths

    def lower(self, src: str, target_width: int) -> tuple[str, ...]:
        """Per-lane numpy sources for *src* masked to *target_width*."""
        tree = ast.parse(src, mode="eval")
        value = self.visit(tree.body)
        lanes = _lanes_for(target_width)
        if value.kind == "bool":
            value = _Value((f"_w({value.exprs[0]}, _c(1), _c(0))",), "exact")
        if value.kind == "const":
            value = _split_const(
                value.const & ((1 << target_width) - 1), lanes,
                truncating_ok=True,
            )
        if value.lanes > lanes:
            # dropping lanes is masking — sound because we mask anyway
            value = _Value(value.exprs[:lanes], value.kind)
        elif value.lanes < lanes:
            if value.kind != "exact":
                raise _Bail  # zero-extending a congruent value loses bits
            value = _Value(
                value.exprs + ("_c(0)",) * (lanes - value.lanes), "exact"
            )
        out = []
        for i in range(lanes):
            bits = min(64, target_width - 64 * i)
            mask = (1 << bits) - 1
            out.append(f"(({value.exprs[i]}) & _c({mask}))")
        return tuple(out)

    # -- reconciliation helpers ------------------------------------------------

    def _as_lanes(self, v: _Value, lanes: int, *, truncating_ok=False) -> _Value:
        if v.kind == "const":
            return _split_const(v.const, lanes, truncating_ok=truncating_ok)
        if v.lanes == lanes:
            return v
        if v.lanes < lanes and v.kind == "exact":
            return _Value(v.exprs + ("_c(0)",) * (lanes - v.lanes), "exact")
        raise _Bail

    def _narrow_int(self, v: _Value) -> tuple[str, str]:
        """(expr, kind) of a single-lane integer value, folding consts."""
        if v.kind == "const":
            if v.const < 0:
                raise _Bail
            if v.const <= _M64:
                return f"_c({v.const})", "exact"
            return f"_c({v.const & _M64})", "congruent"
        if v.kind == "bool" or v.lanes != 1:
            raise _Bail
        return v.exprs[0], v.kind

    # -- node visitors ---------------------------------------------------------

    def visit(self, node) -> _Value:
        method = getattr(self, f"_visit_{type(node).__name__}", None)
        if method is None:
            raise _Bail
        return method(node)

    def _visit_Name(self, node) -> _Value:
        width = self.widths.get(node.id)
        if width is None:
            raise _Bail
        lanes = _lanes_for(width)
        if lanes == 1:
            return _Value((node.id,), "exact")
        return _Value(
            tuple(f"{node.id}_l{i}" for i in range(lanes)), "exact"
        )

    def _visit_Constant(self, node) -> _Value:
        if type(node.value) is not int:
            raise _Bail
        return _const(node.value)

    def _visit_UnaryOp(self, node) -> _Value:
        if not isinstance(node.op, ast.USub):
            raise _Bail
        operand = self.visit(node.operand)
        if operand.kind == "const":
            return _const(-operand.const) if operand.const == 0 else _Value(
                (f"_c({(-operand.const) & _M64})",), "congruent"
            )
        expr, _kind = self._narrow_int(operand)
        return _Value((f"(_c(0) - {expr})",), "congruent")

    def _visit_BinOp(self, node) -> _Value:
        left = self.visit(node.left)
        right = self.visit(node.right)
        op = type(node.op)
        if left.kind == "const" and right.kind == "const":
            return self._fold_binop(op, left.const, right.const)
        if op in (ast.BitAnd, ast.BitOr, ast.BitXor):
            return self._bitwise(op, left, right)
        le, lk = self._narrow_int(left)
        re, rk = self._narrow_int(right)
        if op is ast.Add:
            return _Value((f"({le} + {re})",), "congruent")
        if op is ast.Sub:
            return _Value((f"({le} - {re})",), "congruent")
        if op is ast.Mult:
            return _Value((f"({le} * {re})",), "congruent")
        if op is ast.LShift:
            if rk != "exact":
                raise _Bail
            if right.kind == "const":
                if right.const >= 64:
                    return _Value(("_c(0)",), "congruent")
                return _Value((f"({le} << _c({right.const}))",), "congruent")
            return _Value((f"_shl({le}, {re})",), "congruent")
        if op is ast.RShift:
            if lk != "exact" or rk != "exact":
                raise _Bail
            if right.kind == "const":
                if right.const >= 64:
                    return _Value(("_c(0)",), "exact")
                return _Value((f"({le} >> _c({right.const}))",), "exact")
            return _Value((f"_shr({le}, {re})",), "exact")
        if op in (ast.FloorDiv, ast.Mod):
            if lk != "exact" or rk != "exact":
                raise _Bail
            if right.kind != "const" or right.const == 0:
                raise _Bail  # scalar tier only emits constant divisors
            sym = "//" if op is ast.FloorDiv else "%"
            return _Value((f"({le} {sym} {re})",), "exact")
        raise _Bail  # Pow and anything else: no audited lowering

    def _fold_binop(self, op, a: int, b: int) -> _Value:
        folds: dict[type, Callable[[int, int], int]] = {
            ast.Add: lambda x, y: x + y,
            ast.Sub: lambda x, y: x - y,
            ast.Mult: lambda x, y: x * y,
            ast.BitAnd: lambda x, y: x & y,
            ast.BitOr: lambda x, y: x | y,
            ast.BitXor: lambda x, y: x ^ y,
            ast.LShift: lambda x, y: x << y,
            ast.RShift: lambda x, y: x >> y,
            ast.FloorDiv: lambda x, y: x // y,
            ast.Mod: lambda x, y: x % y,
            ast.Pow: lambda x, y: x**y,
        }
        fold = folds.get(op)
        if fold is None:
            raise _Bail
        if op is ast.LShift and (b < 0 or b > 1024):
            raise _Bail  # refuse to materialize absurd constants
        if op is ast.Pow and (b < 0 or b > 64):
            raise _Bail
        try:
            return _const(fold(a, b))
        except (ZeroDivisionError, ValueError):
            raise _Bail from None

    def _bitwise(self, op, left: _Value, right: _Value) -> _Value:
        sym = {ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^"}[op]
        lanes = max(
            left.lanes if left.kind != "const" else 1,
            right.lanes if right.kind != "const" else 1,
        )
        # AND truncates constants soundly (high bits meet zeros); OR/XOR
        # must not silently drop constant bits beyond the lane count
        truncating_ok = op is ast.BitAnd
        lv = self._as_lanes(left, lanes, truncating_ok=truncating_ok)
        rv = self._as_lanes(right, lanes, truncating_ok=truncating_ok)
        if op is ast.BitAnd:
            kind = "exact" if "exact" in (lv.kind, rv.kind) else "congruent"
        else:
            kind = "exact" if lv.kind == rv.kind == "exact" else "congruent"
        exprs = tuple(
            f"({le} {sym} {re})" for le, re in zip(lv.exprs, rv.exprs)
        )
        return _Value(exprs, kind)

    def _visit_Compare(self, node) -> _Value:
        if len(node.ops) != 1:
            raise _Bail
        sym = {
            ast.Eq: "==",
            ast.NotEq: "!=",
            ast.Lt: "<",
            ast.LtE: "<=",
            ast.Gt: ">",
            ast.GtE: ">=",
        }.get(type(node.ops[0]))
        if sym is None:
            raise _Bail
        left = self.visit(node.left)
        right = self.visit(node.comparators[0])
        if left.kind == "const" and right.kind == "const":
            result = eval(f"{left.const} {sym} {right.const}")  # noqa: S307
            return _Value(("True" if result else "False",), "bool")
        lanes = max(
            left.lanes if left.kind != "const" else 1,
            right.lanes if right.kind != "const" else 1,
        )
        lv = self._as_lanes(left, lanes)
        rv = self._as_lanes(right, lanes)
        if lv.kind != "exact" or rv.kind != "exact":
            raise _Bail
        if lanes == 1:
            return _Value((f"({lv.exprs[0]} {sym} {rv.exprs[0]})",), "bool")
        if sym not in ("==", "!="):
            raise _Bail  # ordered compares on >64-bit values: list mode
        join = " & " if sym == "==" else " | "
        per_lane = join.join(
            f"({le} {sym} {re})" for le, re in zip(lv.exprs, rv.exprs)
        )
        return _Value((f"({per_lane})",), "bool")

    def _visit_BoolOp(self, node) -> _Value:
        sym = "&" if isinstance(node.op, ast.And) else "|"
        parts = []
        for operand in node.values:
            value = self.visit(operand)
            if value.kind != "bool":
                raise _Bail  # Python and/or return operands, not booleans
            parts.append(value.exprs[0])
        return _Value((f"({f' {sym} '.join(parts)})",), "bool")

    def _visit_IfExp(self, node) -> _Value:
        test = self.visit(node.test)
        if test.kind == "const":
            return self.visit(node.body if test.const else node.orelse)
        if test.kind == "bool":
            cond = test.exprs[0]
        else:
            expr, kind = self._narrow_int(test)
            if kind != "exact":
                raise _Bail  # truthiness needs the full value
            cond = f"({expr} != _c(0))"
        body = self.visit(node.body)
        orelse = self.visit(node.orelse)
        if body.kind == "bool" or orelse.kind == "bool":
            raise _Bail
        lanes = max(
            body.lanes if body.kind != "const" else 1,
            orelse.lanes if orelse.kind != "const" else 1,
        )
        bv = self._as_lanes(body, lanes)
        ov = self._as_lanes(orelse, lanes)
        kind = "exact" if bv.kind == ov.kind == "exact" else "congruent"
        exprs = tuple(
            f"_w({cond}, {be}, {oe})" for be, oe in zip(bv.exprs, ov.exprs)
        )
        return _Value(exprs, kind)

    def _visit_Call(self, node) -> _Value:
        if node.keywords:
            raise _Bail
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr != "bit_count" or node.args:
                raise _Bail
            operand = self.visit(func.value)
            expr, kind = self._narrow_int(operand)
            if kind != "exact":
                raise _Bail
            return _Value((f"_pc({expr})",), "exact")
        if isinstance(func, ast.Name) and func.id in ("min", "max"):
            if len(node.args) != 2:
                raise _Bail
            left = self.visit(node.args[0])
            right = self.visit(node.args[1])
            if left.kind == "const" and right.kind == "const":
                fold = min if func.id == "min" else max
                return _const(fold(left.const, right.const))
            le, lk = self._narrow_int(left)
            re, rk = self._narrow_int(right)
            if lk != "exact" or rk != "exact":
                raise _Bail
            helper = "_mn" if func.id == "min" else "_mx"
            return _Value((f"{helper}({le}, {re})",), "exact")
        raise _Bail  # bit_length and anything else: list mode


# -- program construction ------------------------------------------------------

#: generated source text → compiled ``_run``; programs are fully determined
#: by their source, so structurally identical designs share code objects
_SOURCE_CACHE: dict[str, Callable] = {}
_SOURCE_CACHE_LIMIT = 1024


def _compile(source: str, namespace: dict) -> Callable:
    fn = _SOURCE_CACHE.get(source)
    if fn is None:
        if len(_SOURCE_CACHE) >= _SOURCE_CACHE_LIMIT:
            _SOURCE_CACHE.clear()
        scope = dict(namespace)
        exec(compile(source, "<vector>", "exec"), scope)
        fn = scope["_run"]
        _SOURCE_CACHE[source] = fn
    return fn


class VectorProgram:
    """One compiled batch body: columns in, columns out.

    ``run(columns, n)`` takes ``{var: [int] * n}`` for every binding and
    returns ``{var: [int] * n}`` for every result, identical in either mode.
    """

    __slots__ = ("mode", "_fn", "_bindings", "_results")

    def __init__(self, mode, fn, bindings, results):
        self.mode = mode  # "numpy" | "list"
        self._fn = fn
        self._bindings = bindings  # ((var, width, lanes), ...)
        self._results = results

    def run(self, columns: dict[str, list[int]], n: int) -> dict[str, list[int]]:
        if self.mode == "list":
            return self._fn(columns, n)
        np = _NUMPY
        env: dict = {}
        for var, _width, lanes in self._bindings:
            col = columns[var]
            if lanes == 1:
                env[var] = np.array(col, dtype=np.uint64)
            else:
                for i in range(lanes):
                    env[f"{var}_l{i}"] = np.array(
                        [(v >> (64 * i)) & _M64 for v in col], dtype=np.uint64
                    )
        # wrap-around is the audited semantics ("congruent"); numpy warns on
        # scalar integer overflow by default, so silence it for the call
        with np.errstate(over="ignore"):
            raw = self._fn(env, n)
        out: dict[str, list[int]] = {}
        for var, _width, lanes in self._results:
            if lanes == 1:
                out[var] = raw[var].tolist()
            else:
                lane_cols = [raw[f"{var}_l{i}"].tolist() for i in range(lanes)]
                out[var] = [
                    sum(lane_cols[i][k] << (64 * i) for i in range(lanes))
                    for k in range(n)
                ]
        return out


def _numpy_source(bindings, assigns, results) -> str | None:
    widths = {var: width for var, width in bindings}
    rewriter = _NumpyRewriter(widths)
    lines = ["def _run(_e, _n):"]
    result_vars = {var for var, _width in results}
    for var, width in bindings:
        lanes = _lanes_for(width)
        if lanes == 1:
            lines.append(f"    {var} = _e[{var!r}]")
        else:
            for i in range(lanes):
                lines.append(f"    {var}_l{i} = _e['{var}_l{i}']")
    try:
        for var, width, src, _src_width in assigns:
            lowered = rewriter.lower(src, width)
            lanes = _lanes_for(width)
            for i, expr in enumerate(lowered):
                name = var if lanes == 1 else f"{var}_l{i}"
                if var in result_vars:
                    lines.append(f"    {name} = _full({expr}, _n)")
                else:
                    lines.append(f"    {name} = {expr}")
            widths[var] = width
    except _Bail:
        return None
    pairs = []
    for var, width in results:
        lanes = _lanes_for(width)
        if lanes == 1:
            pairs.append(f"{var!r}: {var}")
        else:
            pairs.extend(
                f"'{var}_l{i}': {var}_l{i}" for i in range(lanes)
            )
    lines.append(f"    return {{{', '.join(pairs)}}}")
    lines.append("")
    return "\n".join(lines)


def _list_source(bindings, assigns, results) -> str:
    lines = ["def _run(_e, _n):"]
    for var, _width in bindings:
        lines.append(f"    _in_{var} = _e[{var!r}]")
    for var, _width in results:
        lines.append(f"    _out_{var} = [0] * _n")
    lines.append("    for _k in range(_n):")
    for var, _width in bindings:
        lines.append(f"        {var} = _in_{var}[_k]")
    result_vars = {var for var, _width in results}
    body_emitted = False
    for var, width, src, src_width in assigns:
        if src_width > width:
            src = f"({src} & {(1 << width) - 1})"
        lines.append(f"        {var} = {src}")
        if var in result_vars:
            lines.append(f"        _out_{var}[_k] = {var}")
        body_emitted = True
    if not body_emitted:
        lines.append("        pass")
    lines.append(
        f"    return {{{', '.join(f'{var!r}: _out_{var}' for var, _w in results)}}}"
    )
    lines.append("")
    return "\n".join(lines)


def build_program(
    bindings: list[tuple[str, int]],
    assigns: list[tuple[str, int, str, int]],
    results: list[tuple[str, int]],
) -> VectorProgram | None:
    """Compile a batch body from scalar emit sources.

    *bindings* are the input columns ``(var, width)``; *assigns* are the
    ordered member lowerings ``(var, target_width, scalar_source,
    emitted_width)``; *results* name the assigned columns to return. Tries
    the audited numpy lowering first, falls back to the list loop, returns
    None only if even that fails to compile (malformed source).
    """
    np = None if numpy_disabled() else _numpy()
    if np is not None:
        source = _numpy_source(bindings, assigns, results)
        if source is not None:
            try:
                fn = _compile(source, _helpers(np))
            except Exception:
                fn = None
            if fn is not None:
                return VectorProgram(
                    "numpy",
                    fn,
                    tuple((v, w, _lanes_for(w)) for v, w in bindings),
                    tuple((v, w, _lanes_for(w)) for v, w in results),
                )
    source = _list_source(bindings, assigns, results)
    try:
        fn = _compile(source, {})
    except Exception:
        return None
    return VectorProgram(
        "list",
        fn,
        tuple((v, w, 1) for v, w in bindings),
        tuple((v, w, 1) for v, w in results),
    )
