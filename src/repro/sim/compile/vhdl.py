"""VHDL AST → closure compiler (the compiled evaluation tier).

Mirrors, construct for construct, the interpreter in
:mod:`repro.sim.elab_vhdl` (``_eval`` / ``_exec_seq``) — same evaluation
order, same X handling, same runtime diagnostics. Name-category resolution
(loop variable vs process variable vs constant vs signal), declared type
info, operator dispatch, and static index/slice offsets are burned into
closures once at elaboration.

Expressions compile to ``fn(ctx) -> Logic`` where *ctx* is the interpreter's
own :class:`~repro.sim.elab_vhdl._EvalCtx` — process-local state (variables,
loop indices, edge memory) stays in the ctx, everything statically known
lives in the closures. Statements compile to the shared ``(kind, fn)`` step
lists of :mod:`repro.sim.compile.steps`.

Anything not statically resolvable — or whose diagnostics the interpreter
emits at runtime — compiles to a *fallback* closure delegating to the
interpreter, preserving behaviour exactly. Compilation itself never emits
diagnostics; the elaborator's ``_compiled`` wrapper snapshots the collector
as a safety net.
"""

from __future__ import annotations

from repro.sim import elab_vhdl as evh
from repro.sim.compile.steps import (
    CMD,
    GEN,
    PLAIN,
    as_gen,
    as_plain,
    flat_steps,
    merge,
)
from repro.sim.kernel import Delay, Finish, SimulationError, WaitChange
from repro.sim.runtime import Signal
from repro.sim.values import Logic
from repro.vhdl import ast

_TRUE = Logic(1, 1)
_FALSE = Logic(1, 0)
_X1 = Logic(1, 0, 1)


class _Env:
    """Static compile-time environment: what a name means at this point.

    ``var_types`` holds the declared types of process variables visible here
    (including, during a declaration's own init, that declaration — the
    interpreter registers the type before evaluating the init). ``var_names``
    holds only the variables that already have *values* (earlier
    declarations), which is what value-resolution order uses. ``loop_vars``
    is the lexically enclosing for-loop indices.
    """

    __slots__ = ("scope", "elab", "var_types", "var_names", "loop_vars")

    def __init__(self, scope, elab, var_types=None, var_names=None,
                 loop_vars=frozenset()):
        self.scope = scope
        self.elab = elab
        self.var_types = var_types if var_types is not None else {}
        self.var_names = (
            var_names if var_names is not None else frozenset(self.var_types)
        )
        self.loop_vars = loop_vars

    def with_loop_var(self, name):
        return _Env(self.scope, self.elab, self.var_types, self.var_names,
                    self.loop_vars | {name})

    def name_type(self, name):
        info = self.var_types.get(name)
        if info is not None:
            return info
        return self.scope.types.get(name)


def _resolve_static(name, env):
    """Mirror ``_resolve_name``'s precedence with compile-time knowledge.

    Returns ``"loop"`` / ``"var"`` for ctx-resident values, the
    :class:`Logic` for constants, the :class:`Signal` for signals, or None.
    """
    if name in env.loop_vars:
        return "loop"
    if name in env.var_names:
        return "var"
    if name in env.scope.constants:
        return env.scope.constants[name]
    if name in env.scope.signals:
        return env.scope.signals[name]
    if name == "true":
        return _TRUE
    if name == "false":
        return _FALSE
    return None


def _reader(kind, name):
    """A closure reading the resolved object's current value."""
    if kind == "loop":
        return lambda ctx, n=name: ctx.loop_vars[n]
    if kind == "var":
        return lambda ctx, n=name: ctx.variables[n]
    if isinstance(kind, Signal):
        return lambda ctx, s=kind: s._value
    return lambda ctx, v=kind: v


# --------------------------------------------------------------------------
# constant folding (no diagnostics, no side effects)
# --------------------------------------------------------------------------


def _is_static(expr, env) -> bool:
    """True when every leaf is a literal or an elaboration-time constant."""
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral, ast.StringLiteral)):
        return True
    if isinstance(expr, ast.Name):
        return isinstance(_resolve_static(expr.name, env), Logic)
    if isinstance(expr, ast.Unary):
        return _is_static(expr.operand, env)
    if isinstance(expr, ast.Binary):
        return _is_static(expr.lhs, env) and _is_static(expr.rhs, env)
    if isinstance(expr, ast.Indexed):
        return isinstance(
            _resolve_static(expr.name, env), Logic
        ) and _is_static(expr.index, env)
    if isinstance(expr, ast.Sliced):
        return (
            isinstance(_resolve_static(expr.name, env), Logic)
            and _is_static(expr.left, env)
            and _is_static(expr.right, env)
        )
    return False


def _quiet_eval(run, elab):
    """Evaluate at compile time, swallowing failures and their diagnostics."""
    mark = len(elab.collector.diagnostics)
    try:
        value = run()
    except Exception:
        value = None
    if len(elab.collector.diagnostics) != mark:
        del elab.collector.diagnostics[mark:]
        value = None
    return value


def _fold(expr, env):
    """Fold a constant expression to its Logic value, or None."""
    if not _is_static(expr, env):
        return None
    ctx = evh._EvalCtx(scope=env.scope, sim=None)
    return _quiet_eval(lambda: evh._eval(expr, ctx, env.elab), env.elab)


def _fold_with_width(expr, env, width):
    """Like ``_fold`` but honours a width context for aggregates."""
    if isinstance(expr, ast.Aggregate):
        if width is None:
            return None
        if expr.others is not None and not _is_static(expr.others, env):
            return None
        if not all(_is_static(e, env) for _, e in expr.elements):
            return None
        ctx = evh._EvalCtx(scope=env.scope, sim=None)
        return _quiet_eval(
            lambda: evh._eval_aggregate(expr, ctx, env.elab, width), env.elab
        )
    return _fold(expr, env)


def _static_int(expr, env) -> int | None:
    value = _fold(expr, env)
    if value is None or value.has_x:
        return None
    return value.to_int()


def _static_width(expr, env) -> int | None:
    """Exact static width of the expression's value, or None (conservative)."""
    if isinstance(expr, ast.IntLiteral):
        return 32
    if isinstance(expr, ast.CharLiteral):
        return 1
    if isinstance(expr, ast.Name):
        resolved = _resolve_static(expr.name, env)
        if isinstance(resolved, (Signal, Logic)):
            return resolved.width
        if resolved == "var":
            return env.var_types[expr.name].width
        if resolved == "loop":
            return 32
        return None
    value = _fold(expr, env)
    if value is not None:
        return value.width
    return None


def _operand_width_static(expr, env) -> int:
    """Mirror of ``_operand_width`` using the static environment."""
    if isinstance(expr, ast.Name):
        info = env.name_type(expr.name)
        if info is not None:
            return info.width
    if isinstance(expr, ast.StringLiteral) and expr.base in ("", "b"):
        return max(1, len(expr.value.replace("_", "")))
    return 32


# --------------------------------------------------------------------------
# expression compilation
# --------------------------------------------------------------------------


def _fallback_expr(expr, env):
    """Delegate one expression to the interpreter (diagnostics at runtime)."""
    elab = env.elab
    return lambda ctx, expr=expr, elab=elab: evh._eval(expr, ctx, elab)


def compile_expr(expr, env):
    """Compile an expression to ``fn(ctx) -> Logic`` (mirror of ``_eval``)."""
    const = _fold(expr, env)
    if const is not None:
        return lambda ctx, v=const: v
    if isinstance(expr, ast.Name):
        kind = _resolve_static(expr.name, env)
        if kind is None:
            return _fallback_expr(expr, env)
        return _reader(kind, expr.name)
    if isinstance(expr, ast.Indexed):
        return _compile_indexed(expr, env)
    if isinstance(expr, ast.Sliced):
        return _compile_sliced(expr, env)
    if isinstance(expr, ast.Call):
        return _compile_call(expr, env)
    if isinstance(expr, ast.Attribute):
        return _compile_attribute(expr, env)
    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, env)
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, env)
    # aggregates without a width context (and anything unknown) error at
    # runtime in the interpreter — delegate
    return _fallback_expr(expr, env)


def _compile_with_width(expr, env, width):
    """Mirror of ``_eval_with_width``: width context applies to aggregates."""
    if isinstance(expr, ast.Aggregate):
        return _compile_aggregate(expr, env, width)
    return compile_expr(expr, env)


def _compile_aggregate(expr, env, width):
    const = _fold_with_width(expr, env, width)
    if const is not None:
        return lambda ctx, v=const: v
    elab = env.elab

    def dyn(ctx, expr=expr, elab=elab, width=width):
        return evh._eval_aggregate(expr, ctx, elab, width)

    return dyn


def _compile_indexed(expr, env):
    kind = _resolve_static(expr.name, env)
    if kind is None:
        return _fallback_expr(expr, env)
    reader = _reader(kind, expr.name)
    info = env.name_type(expr.name)
    index = _static_int(expr.index, env)
    if index is not None:
        # unnamed types default to descending-from-0 (offset == index),
        # matching the interpreter's _TypeInfo(width=...) fallback
        offset = info.bit_offset(index) if info is not None else index
        return lambda ctx, r=reader, o=offset: r(ctx).bit(o)
    index_fn = compile_expr(expr.index, env)
    if info is not None:

        def dyn(ctx, r=reader, f=index_fn, info=info):
            index_value = f(ctx)
            if index_value.has_x:
                return _X1
            return r(ctx).bit(info.bit_offset(index_value.to_int()))

        return dyn

    def dyn_default(ctx, r=reader, f=index_fn):
        index_value = f(ctx)
        if index_value.has_x:
            return _X1
        return r(ctx).bit(index_value.to_int())

    return dyn_default


def _compile_sliced(expr, env):
    kind = _resolve_static(expr.name, env)
    if kind is None:
        return _fallback_expr(expr, env)
    left = _static_int(expr.left, env)
    right = _static_int(expr.right, env)
    if left is None or right is None:
        # dynamic/X bounds: interpreter handles (and may diagnose) at runtime
        return _fallback_expr(expr, env)
    info = env.name_type(expr.name)
    if info is not None:
        msb, lsb = info.slice_offsets(left, right)
    else:
        msb, lsb = max(left, right), min(left, right)
    if msb - lsb + 1 > evh.VhdlElaborator.MAX_SIGNAL_WIDTH:
        return _fallback_expr(expr, env)
    reader = _reader(kind, expr.name)
    return lambda ctx, r=reader, m=msb, l=lsb: r(ctx).slice(m, l)


def _compile_call(expr, env):
    name = expr.name
    if name in ("rising_edge", "falling_edge"):
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Name):
            return _fallback_expr(expr, env)
        signal = env.scope.signals.get(expr.args[0].name)
        if signal is None:
            return _fallback_expr(expr, env)
        if name == "rising_edge":

            def rising(ctx, s=signal):
                prev = ctx.edge_mem.get(s, s._value)
                if prev.bit_char(0) != "1" and s._value.bit_char(0) == "1":
                    return _TRUE
                return _FALSE

            return rising

        def falling(ctx, s=signal):
            prev = ctx.edge_mem.get(s, s._value)
            if prev.bit_char(0) != "0" and s._value.bit_char(0) == "0":
                return _TRUE
            return _FALSE

        return falling
    if name in ("to_unsigned", "to_signed", "conv_std_logic_vector", "resize"):
        if len(expr.args) != 2:
            return _fallback_expr(expr, env)
        length = _static_int(expr.args[1], env)
        if length is None or not 1 <= length <= evh.VhdlElaborator.MAX_SIGNAL_WIDTH:
            return _fallback_expr(expr, env)
        value_fn = compile_expr(expr.args[0], env)
        return lambda ctx, f=value_fn, w=length: f(ctx).resize(w)
    if name in ("to_integer", "conv_integer"):
        if len(expr.args) != 1:
            return _fallback_expr(expr, env)
        value_fn = compile_expr(expr.args[0], env)
        return lambda ctx, f=value_fn: f(ctx).resize(32)
    if name in ("std_logic_vector", "unsigned", "signed", "to_stdlogicvector",
                "to_01"):
        if len(expr.args) != 1:
            return _fallback_expr(expr, env)
        return compile_expr(expr.args[0], env)
    # shift/rotate/std_match and unknown functions: interpreter path
    return _fallback_expr(expr, env)


def _compile_attribute(expr, env):
    if expr.attr in ("event", "last_value"):
        signal = env.scope.signals.get(expr.name)
        if signal is None:
            return _fallback_expr(expr, env)
        if expr.attr == "event":

            def event(ctx, s=signal):
                prev = ctx.edge_mem.get(s, s._value)
                return _FALSE if prev == s._value else _TRUE

            return event
        return lambda ctx, s=signal: ctx.edge_mem.get(s, s._value)
    info = env.name_type(expr.name)
    if info is None:
        return _fallback_expr(expr, env)
    values = {
        "length": info.width,
        "left": info.left,
        "right": info.right,
        "high": max(info.left, info.right),
        "low": min(info.left, info.right),
    }
    if expr.attr not in values:
        return _fallback_expr(expr, env)
    const = Logic.from_int(values[expr.attr], 32)
    return lambda ctx, v=const: v


def _compile_unary(expr, env):
    operand = compile_expr(expr.operand, env)
    op = expr.op
    if op == "not":
        return lambda ctx, f=operand: ~f(ctx)
    if op == "-":
        return lambda ctx, f=operand: f(ctx).neg()
    if op == "+":
        return operand
    if op == "abs":

        def do_abs(ctx, f=operand):
            value = f(ctx)
            if value.has_x:
                return Logic.unknown(value.width)
            return Logic.from_int(abs(value.to_signed()), value.width)

        return do_abs
    return _fallback_expr(expr, env)


_SIMPLE_BINOPS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nand": lambda a, b: ~(a & b),
    "nor": lambda a, b: ~(a | b),
    "xnor": lambda a, b: ~(a ^ b),
    "=": Logic.eq,
    "/=": Logic.ne,
    "<": Logic.lt,
    "<=": Logic.le,
    ">": Logic.gt,
    ">=": Logic.ge,
    "+": Logic.add,
    "-": Logic.sub,
    "/": Logic.div,
    "mod": Logic.mod,
    "rem": Logic.mod,
    "&": Logic.concat,
}


def _compile_binary(expr, env):
    op = expr.op
    lhs_fn = _compile_with_width(expr.lhs, env, _operand_width_static(expr.rhs, env))
    if isinstance(expr.rhs, ast.Aggregate):
        # the rhs width context is lhs.width at runtime — only usable when
        # the lhs width is statically exact
        wl = _static_width(expr.lhs, env)
        if wl is None:
            return _fallback_expr(expr, env)
        rhs_fn = _compile_aggregate(expr.rhs, env, wl)
    else:
        rhs_fn = compile_expr(expr.rhs, env)
    fn = _SIMPLE_BINOPS.get(op)
    if fn is not None:
        return lambda ctx, a=lhs_fn, b=rhs_fn, fn=fn: fn(a(ctx), b(ctx))
    if op == "*":

        def mul(ctx, a=lhs_fn, b=rhs_fn):
            lhs = a(ctx)
            rhs = b(ctx)
            if lhs.has_x or rhs.has_x:
                return Logic.unknown(lhs.width + rhs.width)
            return Logic.from_int(lhs.to_int() * rhs.to_int(),
                                  lhs.width + rhs.width)

        return mul
    if op == "**":

        def power(ctx, a=lhs_fn, b=rhs_fn):
            lhs = a(ctx)
            rhs = b(ctx)
            if lhs.has_x or rhs.has_x:
                return Logic.unknown(32)
            return Logic.from_int(lhs.to_int() ** min(rhs.to_int(), 64), 32)

        return power
    return _fallback_expr(expr, env)


# --------------------------------------------------------------------------
# statement compilation
# --------------------------------------------------------------------------


def _fallback_stmt(stmt, env):
    """Delegate one statement to the interpreter as a generator step."""
    elab = env.elab

    def gen(ctx, stmt=stmt, elab=elab):
        return elab._exec_seq(stmt, ctx)

    return [(GEN, gen)]


def compile_body(body, env):
    steps = []
    for stmt in body:
        steps.extend(compile_stmt(stmt, env))
    return steps


def compile_stmt(stmt, env):
    """Compile one statement into steps (mirror of ``_exec_seq``)."""
    try:
        steps = _compile_stmt(stmt, env)
    except Exception:
        steps = None
    return steps if steps is not None else _fallback_stmt(stmt, env)


def _compile_stmt(stmt, env):
    if isinstance(stmt, ast.SignalAssign):
        return _compile_signal_assign(stmt, env)
    if isinstance(stmt, ast.VariableAssign):
        return _compile_variable_assign(stmt, env)
    if isinstance(stmt, ast.IfStatement):
        return _compile_if(stmt, env)
    if isinstance(stmt, ast.CaseStatement):
        return _compile_case(stmt, env)
    if isinstance(stmt, ast.ForLoop):
        return _compile_for(stmt, env)
    if isinstance(stmt, ast.WhileLoop):
        return _compile_while(stmt, env)
    if isinstance(stmt, ast.WaitStatement):
        return _compile_wait(stmt, env)
    if isinstance(stmt, ast.AssertStatement):
        return _compile_assert(stmt, env)
    if isinstance(stmt, ast.ReportStatement):
        return _compile_report(stmt, env)
    if isinstance(stmt, ast.NullStatement):
        return []
    return None  # unsupported: interpreter diagnoses at runtime


def _target_width_static(target, env) -> int | None:
    """Mirror of ``_target_width`` with static knowledge (None = dynamic)."""
    name = evh._target_name(target)
    if name in env.var_types:
        info = env.var_types[name]
    else:
        info = env.scope.types.get(name)
    if info is None:
        return 1
    if isinstance(target, ast.Name):
        return info.width
    if isinstance(target, ast.Indexed):
        return 1
    if isinstance(target, ast.Sliced):
        left = _static_int(target.left, env)
        right = _static_int(target.right, env)
        if left is None or right is None:
            return None
        return abs(left - right) + 1
    return info.width


def _compile_store(target, env, blocking):
    """A closure ``store(ctx, value)`` performing the write, or None.

    Mirrors ``_write_target`` (and ``_write_variable``) with the name
    category, type info, and any index/slice offsets resolved statically.
    """
    name = evh._target_name(target)
    if name in env.var_names:
        info = env.var_types[name]
        if isinstance(target, ast.Name):

            def store_var(ctx, value, n=name, w=info.width):
                ctx.variables[n] = value.resize(w)

            return store_var
        if isinstance(target, ast.Indexed):
            index = _static_int(target.index, env)
            if index is None:
                return None
            offset = info.bit_offset(index)

            def store_var_bit(ctx, value, n=name, o=offset):
                ctx.variables[n] = ctx.variables[n].set_slice(o, o, value)

            return store_var_bit
        if isinstance(target, ast.Sliced):
            left = _static_int(target.left, env)
            right = _static_int(target.right, env)
            if left is None or right is None:
                return None
            msb, lsb = info.slice_offsets(left, right)

            def store_var_slice(ctx, value, n=name, m=msb, l=lsb):
                ctx.variables[n] = ctx.variables[n].set_slice(m, l, value)

            return store_var_slice
        return None
    signal = env.scope.signals.get(name)
    if signal is None:
        return None  # interpreter diagnoses "cannot assign" at runtime
    info = env.scope.types.get(name) or evh._TypeInfo(width=signal.width)
    if isinstance(target, ast.Name):
        # the kernel resizes on write/commit, so the interpreter's explicit
        # pre-resize is elided — committed values are identical
        if blocking:
            return lambda ctx, value, s=signal: ctx.sim.write_signal(s, value)
        return lambda ctx, value, s=signal: ctx.sim.schedule_nba(s, value)
    if isinstance(target, ast.Indexed):
        index = _static_int(target.index, env)
        if index is None:
            return None
        offset = info.bit_offset(index)
        if blocking:

            def store_bit(ctx, value, s=signal, o=offset):
                ctx.sim.write_signal(s, s._value.set_slice(o, o, value))

            return store_bit

        def store_bit_nba(ctx, value, s=signal, o=offset):
            ctx.sim.schedule_nba_update(
                s, lambda old, o=o, v=value: old.set_slice(o, o, v)
            )

        return store_bit_nba
    if isinstance(target, ast.Sliced):
        left = _static_int(target.left, env)
        right = _static_int(target.right, env)
        if left is None or right is None:
            return None
        msb, lsb = info.slice_offsets(left, right)
        if blocking:

            def store_slice(ctx, value, s=signal, m=msb, l=lsb):
                ctx.sim.write_signal(s, s._value.set_slice(m, l, value))

            return store_slice

        def store_slice_nba(ctx, value, s=signal, m=msb, l=lsb):
            ctx.sim.schedule_nba_update(
                s, lambda old, m=m, l=l, v=value: old.set_slice(m, l, v)
            )

        return store_slice_nba
    return None


def _compile_signal_assign(stmt, env):
    width = _target_width_static(stmt.target, env)
    if width is None:
        return None
    value_fn = _compile_with_width(stmt.value, env, width)
    if stmt.after is not None:
        name = evh._target_name(stmt.target)
        delay = _static_int(stmt.after, env)
        signal = env.scope.signals.get(name)
        if delay is None or signal is None or name in env.var_names:
            return None

        def step_after(ctx, f=value_fn, s=signal, d=delay):
            ctx.sim.schedule_write(s, f(ctx).resize(s.width), d)

        return [(PLAIN, step_after)]
    store = _compile_store(stmt.target, env, blocking=False)
    if store is None:
        return None
    return [(PLAIN, lambda ctx, f=value_fn, store=store: store(ctx, f(ctx)))]


def _compile_variable_assign(stmt, env):
    name = evh._target_name(stmt.target)
    if name not in env.var_names:
        return None  # interpreter diagnoses "is not a variable" at runtime
    width = _target_width_static(stmt.target, env)
    if width is None:
        return None
    value_fn = _compile_with_width(stmt.value, env, width)
    store = _compile_store(stmt.target, env, blocking=True)
    if store is None:
        return None
    return [(PLAIN, lambda ctx, f=value_fn, store=store: store(ctx, f(ctx)))]


def _compile_if(stmt, env):
    arm_plans = [
        (compile_expr(condition, env), compile_body(body, env))
        for condition, body in stmt.arms
    ]
    else_steps = compile_body(stmt.else_body, env)
    plains = [as_plain(steps) for _, steps in arm_plans]
    else_plain = as_plain(else_steps)
    if else_plain is not None and all(p is not None for p in plains):
        arms = tuple(
            (cond, plain) for (cond, _), plain in zip(arm_plans, plains)
        )

        def step(ctx, arms=arms, otherwise=else_plain):
            for cond, body in arms:
                if cond(ctx).is_true():
                    body(ctx)
                    return
            otherwise(ctx)

        return [(PLAIN, step)]
    arms = tuple((cond, as_gen(steps)) for cond, steps in arm_plans)
    else_gen = as_gen(else_steps)

    def gen(ctx, arms=arms, otherwise=else_gen):
        for cond, body in arms:
            if cond(ctx).is_true():
                yield from body(ctx)
                return
        yield from otherwise(ctx)

    return [(GEN, gen)]


def _compile_case(stmt, env):
    subject_width = _static_width(stmt.subject, env)
    subject_fn = compile_expr(stmt.subject, env)
    arms = []
    others_steps = None
    for alternative in stmt.alternatives:
        steps = compile_body(alternative.body, env)
        if not alternative.choices:
            others_steps = steps
            continue
        choices = []
        for choice in alternative.choices:
            if isinstance(choice, ast.Aggregate) and subject_width is None:
                return None
            const = _fold_with_width(choice, env, subject_width)
            if const is not None:
                choices.append((const, None))
            else:
                choices.append(
                    (None, _compile_with_width(choice, env, subject_width))
                )
        arms.append((tuple(choices), steps))

    def choose(ctx, subject):
        for choices, body in arms_rt:
            for label, label_fn in choices:
                if label is None:
                    label = label_fn(ctx)
                width = max(subject.width, label.width)
                if subject.resize(width).case_eq(
                    label.resize(width)
                ).is_true():
                    return body
        return others_rt

    plains = [as_plain(steps) for _, steps in arms]
    others_plain = as_plain(others_steps) if others_steps is not None else True
    if others_plain is not None and all(p is not None for p in plains):
        arms_rt = tuple(
            (choices, plain) for (choices, _), plain in zip(arms, plains)
        )
        others_rt = others_plain if others_steps is not None else None

        def step(ctx, subject_fn=subject_fn):
            body = choose(ctx, subject_fn(ctx))
            if body is not None:
                body(ctx)

        return [(PLAIN, step)]
    arms_rt = tuple((choices, as_gen(steps)) for choices, steps in arms)
    others_rt = as_gen(others_steps) if others_steps is not None else None

    def gen(ctx, subject_fn=subject_fn):
        body = choose(ctx, subject_fn(ctx))
        if body is not None:
            yield from body(ctx)

    return [(GEN, gen)]


def _compile_for(stmt, env):
    low = _static_int(stmt.low, env)
    high = _static_int(stmt.high, env)
    if low is None or high is None:
        return None
    indices = range(low, high + 1)
    if stmt.descending:
        indices = reversed(indices)
    values = tuple(Logic.from_int(index, 32) for index in indices)
    steps = compile_body(stmt.body, env.with_loop_var(stmt.var))
    var = stmt.var
    plain = as_plain(steps)
    if plain is not None:

        def step(ctx, body=plain, var=var, values=values):
            outer = ctx.loop_vars.get(var)
            for value in values:
                ctx.loop_vars[var] = value
                body(ctx)
            if outer is None:
                ctx.loop_vars.pop(var, None)
            else:
                ctx.loop_vars[var] = outer

        return [(PLAIN, step)]
    flat = flat_steps(merge(steps))
    if flat is not None:

        def gen_flat(ctx, flat=flat, var=var, values=values):
            outer = ctx.loop_vars.get(var)
            for value in values:
                ctx.loop_vars[var] = value
                for kind, fn in flat:
                    if kind:
                        yield fn
                    else:
                        fn(ctx)
            if outer is None:
                ctx.loop_vars.pop(var, None)
            else:
                ctx.loop_vars[var] = outer

        return [(GEN, gen_flat)]
    body_gen = as_gen(steps)

    def gen(ctx, body=body_gen, var=var, values=values):
        outer = ctx.loop_vars.get(var)
        for value in values:
            ctx.loop_vars[var] = value
            yield from body(ctx)
        if outer is None:
            ctx.loop_vars.pop(var, None)
        else:
            ctx.loop_vars[var] = outer

    return [(GEN, gen)]


def _compile_while(stmt, env):
    cond_fn = compile_expr(stmt.condition, env)
    steps = compile_body(stmt.body, env)
    limit = evh.VhdlElaborator.LOOP_LIMIT
    plain = as_plain(steps)
    if plain is not None:

        def step(ctx, cond=cond_fn, body=plain, limit=limit):
            iterations = 0
            while cond(ctx).is_true():
                body(ctx)
                iterations += 1
                if iterations > limit:
                    raise SimulationError("while-loop iteration limit exceeded")

        return [(PLAIN, step)]
    body_gen = as_gen(steps)

    def gen(ctx, cond=cond_fn, body=body_gen, limit=limit):
        iterations = 0
        while cond(ctx).is_true():
            yield from body(ctx)
            iterations += 1
            if iterations > limit:
                raise SimulationError("while-loop iteration limit exceeded")

    return [(GEN, gen)]


def _compile_wait(stmt, env):
    if stmt.for_time is not None:
        delay = _static_int(stmt.for_time, env)
        if delay is None:
            return None
        return [(CMD, Delay(delay))]
    if stmt.until is not None:
        reads: set = set()
        evh._collect_reads(stmt.until, env.scope, reads)
        if not reads:
            return None  # interpreter diagnoses the dead wait at runtime
        cond_fn = compile_expr(stmt.until, env)
        command = WaitChange.on(*reads)

        def gen(ctx, cond=cond_fn, command=command):
            while True:
                yield command
                if cond(ctx).is_true():
                    return

        return [(GEN, gen)]
    if stmt.on_signals:
        signals = [
            s
            for s in (env.scope.signals.get(n) for n in stmt.on_signals)
            if s is not None
        ]
        return [(CMD, WaitChange.on(*signals))]
    return [(CMD, WaitChange(()))]  # bare `wait;` — suspend forever


def _message_text(message, ctx, elab):
    if message is None:
        return "Assertion violation."
    return evh._eval_text(message, ctx, elab)


def _compile_assert(stmt, env):
    cond_fn = compile_expr(stmt.condition, env)
    elab = env.elab
    prefix = stmt.severity.upper()
    if stmt.severity != "failure":

        def step(ctx, cond=cond_fn, msg=stmt.message, prefix=prefix, elab=elab):
            if not cond(ctx).is_true():
                ctx.sim.display(f"{prefix}: {_message_text(msg, ctx, elab)}")

        return [(PLAIN, step)]

    def gen(ctx, cond=cond_fn, msg=stmt.message, elab=elab):
        if not cond(ctx).is_true():
            ctx.sim.display(f"FAILURE: {_message_text(msg, ctx, elab)}")
            yield Finish(1)

    return [(GEN, gen)]


def _compile_report(stmt, env):
    elab = env.elab
    if stmt.severity == "note":

        def step(ctx, msg=stmt.message, elab=elab):
            ctx.sim.display(evh._eval_text(msg, ctx, elab))

        return [(PLAIN, step)]
    prefix = stmt.severity.upper()
    if stmt.severity != "failure":

        def step(ctx, msg=stmt.message, prefix=prefix, elab=elab):
            ctx.sim.display(f"{prefix}: {evh._eval_text(msg, ctx, elab)}")

        return [(PLAIN, step)]

    def gen(ctx, msg=stmt.message, elab=elab):
        ctx.sim.display(f"FAILURE: {evh._eval_text(msg, ctx, elab)}")
        yield Finish(1)

    return [(GEN, gen)]


# --------------------------------------------------------------------------
# process / concurrent-statement factories
# --------------------------------------------------------------------------


def process_factory(process, scope, elab, sens, watched):
    """Compiled factory for a process statement, or None to decline."""
    var_types: dict = {}
    decl_plan = []
    for decl in process.declarations:
        info = elab._type_info(decl.type_mark, scope)
        var_names = frozenset(var_types)  # earlier declarations only
        var_types[decl.name] = info  # the type itself is visible immediately
        init_fn = None
        if decl.init is not None:
            init_fn = _compile_with_width(
                decl.init, _Env(scope, elab, dict(var_types), var_names),
                info.width,
            )
        decl_plan.append((decl.name, info, init_fn))
    env = _Env(scope, elab, var_types)
    steps = compile_body(process.body, env)
    body_plain = as_plain(steps)
    body_gen = as_gen(steps) if body_plain is None else None
    has_wait = evh._body_has_wait(process.body)
    wait_cmd = WaitChange.on(*sens) if sens else None
    decl_plan = tuple(decl_plan)

    def make_ctx(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)
        for name, info, init_fn in decl_plan:
            ctx.var_types[name] = info
            if init_fn is not None:
                ctx.variables[name] = init_fn(ctx).resize(info.width)
            else:
                ctx.variables[name] = Logic.unknown(info.width)
        for signal in watched:
            ctx.edge_mem[signal] = signal._value
        return ctx

    if body_plain is not None:
        # a plain body contains no waits, so the only suspension point is
        # the sensitivity wait — fuse the edge-memory snapshot into it
        def factory(sim):
            ctx = make_ctx(sim)
            if wait_cmd is None:

                def run_once():
                    body_plain(ctx)
                    return
                    yield  # pragma: no cover - generator marker

                return run_once()
            if watched:

                def run_watched():
                    while True:
                        body_plain(ctx)
                        for signal in watched:
                            ctx.edge_mem[signal] = signal._value
                        yield wait_cmd

                return run_watched()

            def run():
                while True:
                    body_plain(ctx)
                    yield wait_cmd

            return run()

        return factory

    def factory(sim):
        ctx = make_ctx(sim)

        def run():
            while True:
                yield from body_gen(ctx)
                if wait_cmd is not None:
                    yield wait_cmd
                elif not has_wait:
                    return

        gen = run()
        if not watched:
            return gen

        def snapshotting(gen):
            for command in gen:
                for signal in watched:
                    ctx.edge_mem[signal] = signal._value
                yield command

        return snapshotting(gen)

    return factory


def concurrent_assign_factory(statement, scope, elab, reads, width):
    """Compiled factory for a simple concurrent assignment, or None."""
    env = _Env(scope, elab)
    value_fn = _compile_with_width(statement.value, env, width)
    store = _compile_store(statement.target, env, blocking=True)
    if store is None:
        return None
    wait_cmd = WaitChange.on(*reads) if reads else None

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)
        if wait_cmd is None:

            def run_once():
                store(ctx, value_fn(ctx))
                return
                yield  # pragma: no cover - generator marker

            return run_once()

        def body():
            while True:
                store(ctx, value_fn(ctx))
                yield wait_cmd

        return body()

    return factory


def delayed_assign_factory(statement, scope, elab, signal, delay, reads, width):
    """Compiled factory for ``target <= value after T``, or None."""
    env = _Env(scope, elab)
    value_fn = _compile_with_width(statement.value, env, width)
    wait_cmd = WaitChange.on(*reads) if reads else None
    delay_cmd = Delay(delay)

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def body():
            while True:
                new = value_fn(ctx)
                if new == signal._value:
                    if wait_cmd is None:
                        return
                    yield wait_cmd
                    continue
                yield delay_cmd
                sim.write_signal(signal, new)

        return body()

    return factory


def conditional_assign_factory(statement, scope, elab, reads, width):
    """Compiled factory for a conditional concurrent assignment, or None."""
    env = _Env(scope, elab)
    arms = tuple(
        (_compile_with_width(value, env, width), compile_expr(condition, env))
        for value, condition in statement.arms
    )
    otherwise_fn = _compile_with_width(statement.otherwise, env, width)
    store = _compile_store(statement.target, env, blocking=True)
    if store is None:
        return None
    wait_cmd = WaitChange.on(*reads) if reads else None

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def body():
            while True:
                chosen = otherwise_fn
                for value_fn, cond_fn in arms:
                    if cond_fn(ctx).is_true():
                        chosen = value_fn
                        break
                store(ctx, chosen(ctx))
                if wait_cmd is None:
                    return
                yield wait_cmd

        return body()

    return factory


def selected_assign_factory(statement, scope, elab, reads, width):
    """Compiled factory for a selected concurrent assignment, or None."""
    env = _Env(scope, elab)
    selector_width = _static_width(statement.selector, env)
    selector_fn = compile_expr(statement.selector, env)
    arms = []
    for value, choices in statement.arms:
        compiled_choices = []
        for choice in choices:
            if isinstance(choice, ast.Aggregate) and selector_width is None:
                return None
            const = _fold_with_width(choice, env, selector_width)
            if const is not None:
                compiled_choices.append((const, None))
            else:
                compiled_choices.append(
                    (None, _compile_with_width(choice, env, selector_width))
                )
        arms.append((_compile_with_width(value, env, width),
                     tuple(compiled_choices)))
    arms = tuple(arms)
    otherwise_fn = (
        _compile_with_width(statement.otherwise, env, width)
        if statement.otherwise is not None
        else None
    )
    store = _compile_store(statement.target, env, blocking=True)
    if store is None:
        return None
    wait_cmd = WaitChange.on(*reads) if reads else None

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def body():
            while True:
                selector = selector_fn(ctx)
                chosen = otherwise_fn
                for value_fn, choices in arms:
                    matched = False
                    for label, label_fn in choices:
                        if label is None:
                            label = label_fn(ctx)
                        if selector.case_eq(label).is_true():
                            matched = True
                            break
                    if matched:
                        chosen = value_fn
                        break
                if chosen is not None:
                    store(ctx, chosen(ctx))
                if wait_cmd is None:
                    return
                yield wait_cmd

        return body()

    return factory


def wire_input_factory(expr, child, scope, elab, reads):
    """Compiled factory for an instantiation input-port wire, or None."""
    env = _Env(scope, elab)
    value_fn = _compile_with_width(expr, env, child.width)
    wait_cmd = WaitChange.on(*reads) if reads else None

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)
        if wait_cmd is None:

            def run_once():
                sim.write_signal(child, value_fn(ctx))
                return
                yield  # pragma: no cover - generator marker

            return run_once()

        def body():
            while True:
                sim.write_signal(child, value_fn(ctx))
                yield wait_cmd

        return body()

    return factory


def wire_output_factory(target, child, scope, elab):
    """Compiled factory for an instantiation output-port wire, or None."""
    env = _Env(scope, elab)
    store = _compile_store(target, env, blocking=True)
    if store is None:
        return None
    wait_cmd = WaitChange.on(child)

    def factory(sim):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def body():
            while True:
                store(ctx, child._value)
                yield wait_cmd

        return body()

    return factory


# -- once-evaluators for the levelized tier -----------------------------------
#
# Each mirrors the corresponding *_factory body minus the wait loop: one call
# performs one settle evaluation + write. ``bind(sim)`` builds the per-run
# eval context (fresh per simulation, like the factories) and returns the
# callable the generated cone body invokes.


def concurrent_assign_once(statement, scope, elab, width):
    """(bind, writes) for a whole-signal concurrent assignment, or None."""
    if not isinstance(statement.target, ast.Name):
        return None
    signal = scope.signals.get(statement.target.name)
    if signal is None:
        return None
    env = _Env(scope, elab)
    value_fn = _compile_with_width(statement.value, env, width)

    def bind(sim, value_fn=value_fn, s=signal, scope=scope):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def once(sim, ctx=ctx, value_fn=value_fn, s=s):
            sim.write_signal(s, value_fn(ctx))

        return once

    return bind, (signal,)


def conditional_assign_once(statement, scope, elab, width):
    """(bind, writes) for a whole-signal conditional assignment, or None."""
    if not isinstance(statement.target, ast.Name):
        return None
    if statement.otherwise is None:
        return None  # without a final else the write is conditional
    signal = scope.signals.get(statement.target.name)
    if signal is None:
        return None
    env = _Env(scope, elab)
    arms = tuple(
        (_compile_with_width(value, env, width), compile_expr(condition, env))
        for value, condition in statement.arms
    )
    otherwise_fn = _compile_with_width(statement.otherwise, env, width)

    def bind(sim, arms=arms, otherwise_fn=otherwise_fn, s=signal, scope=scope):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def once(sim, ctx=ctx, arms=arms, otherwise_fn=otherwise_fn, s=s):
            chosen = otherwise_fn
            for value_fn, cond_fn in arms:
                if cond_fn(ctx).is_true():
                    chosen = value_fn
                    break
            sim.write_signal(s, chosen(ctx))

        return once

    return bind, (signal,)


def wire_input_once(expr, child, scope, elab):
    """(bind, writes) for an instantiation input-port wire."""
    env = _Env(scope, elab)
    value_fn = _compile_with_width(expr, env, child.width)

    def bind(sim, value_fn=value_fn, child=child, scope=scope):
        ctx = evh._EvalCtx(scope=scope, sim=sim)

        def once(sim, ctx=ctx, value_fn=value_fn, child=child):
            sim.write_signal(child, value_fn(ctx))

        return once

    return bind, (child,)


def wire_output_once(target, child, scope, elab):
    """(bind, writes) for a whole-signal output-port wire, or None."""
    if not isinstance(target, ast.Name):
        return None
    signal = scope.signals.get(target.name)
    if signal is None:
        return None

    def bind(sim, s=signal, child=child):
        def once(sim, s=s, child=child):
            sim.write_signal(s, child._value)

        return once

    return bind, (signal,)
